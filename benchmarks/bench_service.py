"""E18 — service throughput and tail latency under a concurrent fleet.

The hardened transaction service is only worth its robustness budget if
the admission gate, per-session deadlines, and WAL-backed undo keep the
hot path cheap.  This benchmark boots a real :class:`RsrServer` on
loopback and drives a fleet of concurrent NDJSON clients through
begin/read/write/commit sessions, in two regimes:

* **disjoint** — every client owns its object, so the numbers isolate
  pure service overhead (framing, admission, scheduler certification,
  WAL) with no protocol-induced waits or aborts;
* **contended** — the fleet shares 64 objects, so RSGT certification,
  WAIT backoff, and abort-retry all fire on the measured path.

Reported per regime: committed tx/s and commit-latency p50/p99 (begin
request to commit ack, milliseconds).  The run ends with a full drain —
certification of every tenant's committed projection is part of the
timed lifecycle, and the benchmark asserts it passes.

Full mode drives >=1000 concurrent clients and records
``BENCH_service.json``.  Quick mode (``BENCH_QUICK=1``) shrinks the
fleet and skips the tracked JSON.
"""

import asyncio
import os
import time
from pathlib import Path

from benchmarks._report import emit, record_json
from repro.analysis.tables import format_table
from repro.service import RsrServer, ServiceConfig, ServiceClient, wire
from repro.service.client import ServiceError
from repro.sim.metrics import nearest_rank

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable service-fleet results, tracked across PRs.
BENCH_SERVICE = Path(__file__).resolve().parent.parent / "BENCH_service.json"

CLIENTS = 200 if QUICK else 1000
MAX_SESSIONS = 128 if QUICK else 256
CONTENDED_OBJECTS = 64
CONNECT_WAVE = 128  # connects are staggered to respect the accept backlog
ABORT_RETRIES = 6


async def _one_session(client, tenant, obj, value, latencies):
    """One begin/read/write/commit lifecycle; retries protocol aborts."""
    for _attempt in range(ABORT_RETRIES):
        start = time.perf_counter()
        begun = await client.begin_with_retry(
            f"r[{obj}] w[{obj}]", tenant=tenant, max_sheds=200
        )
        txn = begun["txn"]
        try:
            await client.read(txn, obj)
            await client.write(txn, obj, value)
            await client.commit(txn)
        except ServiceError as exc:
            if exc.code != wire.ERR_ABORTED:
                raise
            continue  # fresh incarnation, new admission ticket
        latencies.append((time.perf_counter() - start) * 1000.0)
        return True
    return False


async def _run_fleet(n_clients, objects_for):
    server = RsrServer(
        ServiceConfig(host="127.0.0.1", port=0, max_sessions=MAX_SESSIONS)
    )
    await server.start()
    latencies = []
    try:
        admin = await ServiceClient.connect(server.host, server.port)
        seen = sorted({objects_for(idx) for idx in range(n_clients)})
        await admin.tenant(
            "bench", protocol="rsgt", objects={obj: 0 for obj in seen}
        )
        await admin.close()

        gate = asyncio.Semaphore(CONNECT_WAVE)

        async def connect(idx):
            async with gate:
                return await ServiceClient.connect(server.host, server.port)

        clients = await asyncio.gather(
            *(connect(idx) for idx in range(n_clients))
        )
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                _one_session(
                    client, "bench", objects_for(idx), idx, latencies
                )
                for idx, client in enumerate(clients)
            )
        )
        wall = time.perf_counter() - start
        await asyncio.gather(*(client.close() for client in clients))
        committed = sum(outcomes)
        shed = server.admission.shed
        # How hard shed clients were pushed back: the server records
        # every retry_after_ms hint it hands out as a distribution.
        hints = server.metrics.histogram("service.retry_after_ms")
        retry_hints = {"count": 0, "min": 0, "max": 0, "p50": 0, "p99": 0}
        if hints is not None and hints.count:
            retry_hints = {
                "count": hints.count,
                "min": hints.min,
                "max": hints.max,
                "p50": hints.percentile(50),
                "p99": hints.percentile(99),
            }
    finally:
        await server.drain("bench-complete")
    assert server.exit_code == 0, "drain certification failed"
    return {
        "clients": n_clients,
        "committed": committed,
        "gave_up": n_clients - committed,
        "shed_begins": shed,
        "retry_after_ms": retry_hints,
        "tx_per_s": round(committed / wall, 1) if wall else 0.0,
        "p50_ms": round(nearest_rank(latencies, 50), 2),
        "p99_ms": round(nearest_rank(latencies, 99), 2),
        "wall_s": round(wall, 3),
    }


def test_report_service_fleet(benchmark):
    def compute():
        results = {}
        results["disjoint"] = asyncio.run(
            _run_fleet(CLIENTS, lambda idx: f"x{idx}")
        )
        results["contended"] = asyncio.run(
            _run_fleet(CLIENTS, lambda idx: f"x{idx % CONTENDED_OBJECTS}")
        )
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for regime, stats in results.items():
        # Every client either commits or exhausts its abort retries;
        # lost sessions would mean the service dropped acknowledged
        # work, which is a correctness failure, not a slow run.
        assert stats["committed"] > 0
        assert stats["committed"] + stats["gave_up"] == stats["clients"]
        rows.append(
            [
                regime,
                stats["clients"],
                stats["committed"],
                stats["shed_begins"],
                stats["tx_per_s"],
                stats["p50_ms"],
                stats["p99_ms"],
            ]
        )
    emit(
        f"E18 — live service fleet ({CLIENTS} concurrent clients, "
        f"admission limit {MAX_SESSIONS}, drain-certified)",
        format_table(
            [
                "regime",
                "clients",
                "committed",
                "shed",
                "tx/s",
                "p50 (ms)",
                "p99 (ms)",
            ],
            rows,
        )
        + "".join(
            f"\n{regime}: shed retry_after_ms hints "
            f"count={stats['retry_after_ms']['count']} "
            f"p50={stats['retry_after_ms']['p50']} "
            f"p99={stats['retry_after_ms']['p99']}"
            for regime, stats in results.items()
        ),
    )
    # Disjoint traffic must not give up: there is nothing to abort for.
    assert results["disjoint"]["gave_up"] == 0
    record_json(
        "service_fleet",
        {"max_sessions": MAX_SESSIONS, "by_regime": results},
        path=BENCH_SERVICE,
        quick=QUICK,
    )
