"""E13 — incremental RSG certification vs the seed's copy-and-rescan.

The seed certifier paid O(V+E) per granted operation: copy the whole
graph, add the new arcs, rerun a full DFS.  The incremental engine
(`IncrementalRsg` on a Pearce–Kelly ordered graph) certifies each
operation against the live graph in amortized sub-linear time.  This
module measures the three shapes the claim rests on and records them in
``BENCH_rsg.json`` (machine-readable, tracked across PRs) against the
baselines recorded from the seed revision:

* RSGT protocol simulation scaling as the short-transaction count grows
  (the certifier dominates the sim's cost at the larger sizes);
* offline RSG build + acyclicity test at growing schedule sizes
  (id-space arc masks + lazy graph materialization);
* per-operation certification latency as the history grows (flat-ish
  curve instead of the seed's linear-in-history growth).

Quick mode (``BENCH_QUICK=1``, used by the CI smoke job) drops the
largest configurations and the speedup assertions; the full run asserts
the >=5x improvement at the largest size of each suite.
"""

import gc
import os
import statistics
import time

from benchmarks._report import (
    emit,
    emit_json,
    load_baselines,
    load_preflat,
    record_json,
)
from repro.analysis.tables import format_table
from repro.core.rsg import IncrementalRsg, RelativeSerializationGraph
from repro.protocols import RSGTScheduler
from repro.sim.runner import simulate_bundle
from repro.specs.builders import uniform_spec
from repro.workloads.longlived import LongLivedWorkload
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Required improvement over the seed at the largest configuration.
SPEEDUP_FLOOR = 5.0

RSGT_SIZES = (5, 10) if QUICK else (5, 10, 20, 40)
RSG_SIZES = ((4, 5), (8, 8)) if QUICK else (
    (4, 5), (8, 8), (12, 10), (16, 12), (20, 15)
)


def _longlived(n_short, seed=0):
    return LongLivedWorkload(
        n_objects=6, n_long=1, n_short=n_short, short_ops=2, seed=seed
    ).build()


def _time(fn, repetitions):
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return (time.perf_counter() - start) / repetitions * 1000.0


def test_report_rsgt_scaling(benchmark):
    """RSGT sim wall-clock by short count, vs the seed baselines."""
    baselines = load_baselines()["rsgt_longlived_ms"]

    def compute():
        results = {}
        for n_short in RSGT_SIZES:
            bundle = _longlived(n_short)
            repetitions = 3 if n_short <= 20 else 1

            def run(bundle=bundle):
                result = simulate_bundle(bundle, RSGTScheduler(bundle.spec))
                assert result.committed == len(bundle.transactions)

            results[str(n_short)] = _time(run, repetitions)
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for key, elapsed in results.items():
        seed_ms = baselines.get(key)
        speedup = seed_ms / elapsed if seed_ms else None
        rows.append(
            [key, f"{elapsed:.1f}",
             "-" if seed_ms is None else f"{seed_ms:.1f}",
             "-" if speedup is None else f"{speedup:.1f}x"]
        )
    emit(
        "E13a — RSGT long-lived sim (1 long + N shorts), incremental "
        "certifier vs seed",
        format_table(["shorts", "now (ms)", "seed (ms)", "speedup"], rows),
    )
    largest = str(RSGT_SIZES[-1])
    payload = {
        "config": "LongLivedWorkload(n_objects=6, n_long=1, short_ops=2)",
        "now_ms": {k: round(v, 2) for k, v in results.items()},
        "seed_ms": {k: baselines[k] for k in results if k in baselines},
        "speedup_at_largest": round(
            baselines[largest] / results[largest], 2
        ) if largest in baselines else None,
    }
    if not QUICK:  # quick smoke runs don't overwrite the tracked results
        emit_json("rsgt_longlived", payload)
        assert payload["speedup_at_largest"] >= SPEEDUP_FLOOR


def _instance(n_transactions, ops, seed=0):
    txs = random_transactions(
        n_transactions, ops, n_objects=max(2, n_transactions),
        write_probability=0.3, seed=seed,
    )
    spec = uniform_spec(txs, max(1, ops // 3))
    schedule = random_interleaving(txs, seed=seed + 1)
    return txs, spec, schedule


def test_report_rsg_build_scaling(benchmark):
    """Offline RSG build + acyclicity test, vs the seed baselines."""
    baselines = load_baselines()["rsg_build_ms"]

    def compute():
        results = {}
        for n_tx, ops in RSG_SIZES:
            _txs, spec, schedule = _instance(n_tx, ops)

            def run(spec=spec, schedule=schedule):
                RelativeSerializationGraph(schedule, spec).is_acyclic

            results[f"{n_tx}x{ops}"] = _time(run, repetitions=5)
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for key, elapsed in results.items():
        seed_ms = baselines.get(key)
        speedup = seed_ms / elapsed if seed_ms else None
        rows.append(
            [key, f"{elapsed:.2f}",
             "-" if seed_ms is None else f"{seed_ms:.2f}",
             "-" if speedup is None else f"{speedup:.1f}x"]
        )
    emit(
        "E13b — RSG build + acyclicity (id-space arcs, lazy graph) vs seed",
        format_table(
            ["txs x ops", "now (ms)", "seed (ms)", "speedup"], rows
        ),
    )
    largest = "{}x{}".format(*RSG_SIZES[-1])
    payload = {
        "config": "random_transactions(write_probability=0.3), "
                  "uniform_spec(ops//3), random_interleaving",
        "now_ms": {k: round(v, 3) for k, v in results.items()},
        "seed_ms": {k: baselines[k] for k in results if k in baselines},
        "speedup_at_largest": round(
            baselines[largest] / results[largest], 2
        ) if largest in baselines else None,
    }
    if not QUICK:
        emit_json("rsg_build", payload)
        assert payload["speedup_at_largest"] >= SPEEDUP_FLOOR


#: Latency-feed repetitions for the per-window medians.
LATENCY_REPS = 5 if QUICK else 9

#: Required improvement over the dict-of-sets engine at history >= 200.
FLAT_SPEEDUP_FLOOR = 2.0


def test_report_per_op_latency(benchmark):
    """Per-operation certification latency as the history grows.

    The seed paid for a full copy + DFS per grant, so per-op cost grew
    linearly with history length.  The flat array engine's per-op cost
    should stay near-flat (Pearce-Kelly touches only the affected
    order region).  Measured in windows over one long serial feed.

    Methodology: GC is pinned around the timed sections and each window
    reports the **median over LATENCY_REPS independent feeds** — a
    single pass let one collector pause or scheduler blip land in one
    window and print a spurious latency cliff (the recorded 2.94 us
    outlier at history 200 against 1.5-1.9 everywhere around it).  Two
    untimed warmup feeds run first (lazy imports, allocator growth,
    bytecode specialization).

    The first window is reported separately as engine setup rather than
    folded into the latency curve: it absorbs the one-time per-engine
    costs (every transaction's structures are built on its first
    operation, and all of them first appear within the opening window).

    The same configuration runs in quick mode — the feed is milliseconds
    of work — so the >=2x gate against the recorded dict-of-sets
    baselines (history >= 200) holds in CI smoke runs too.
    """
    n_tx, ops = 20, 15
    txs, spec, schedule = _instance(n_tx, ops)
    operations = schedule.operations
    window = max(1, len(operations) // 6)

    def feed(engine):
        for tx in txs:
            engine.add_transaction(tx)

    def one_pass():
        engine = IncrementalRsg(spec)
        feed(engine)
        windows = []
        position = 0
        while position < len(operations):
            chunk = operations[position:position + window]
            start = time.perf_counter()
            for op in chunk:
                if not (engine.acyclic and engine.try_push(op)):
                    engine.push_uncertified(op)
            elapsed = time.perf_counter() - start
            windows.append(
                (position + len(chunk), elapsed / len(chunk) * 1e6)
            )
            position += len(chunk)
        return windows

    def compute():
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(2):
                one_pass()
            passes = [one_pass() for _ in range(LATENCY_REPS)]
        finally:
            if gc_was_enabled:
                gc.enable()
        return [
            (
                per_window[0][0],
                statistics.median(us for _, us in per_window),
            )
            for per_window in zip(*passes)
        ]

    windows = benchmark.pedantic(compute, rounds=1, iterations=1)
    setup_window, steady = windows[0], windows[1:]
    preflat = load_preflat()["per_op_us_by_history"]
    rows = [
        [setup_window[0], f"{setup_window[1]:.2f} (engine setup)", "-"]
    ]
    for length, per_op in steady:
        base = preflat.get(str(length))
        rows.append(
            [
                length,
                f"{per_op:.2f}",
                "-" if base is None else f"{base / per_op:.1f}x",
            ]
        )
    emit(
        "E13c — per-operation certification latency by history length "
        f"(median of {LATENCY_REPS} feeds, GC pinned)",
        format_table(
            ["history length", "us/op (window median)", "vs dict engine"],
            rows,
        )
        + f"\ngate: >= {FLAT_SPEEDUP_FLOOR:.0f}x at history >= 200",
    )
    record_json(
        "per_op_latency",
        {
            "config": f"{n_tx} txs x {ops} ops, window={window}, "
                      f"median of {LATENCY_REPS}",
            "setup_window_us_per_op": round(setup_window[1], 2),
            "us_per_op_by_history": {
                str(length): round(per_op, 2) for length, per_op in steady
            },
        },
        quick=QUICK,
    )
    for length, per_op in steady:
        base = preflat.get(str(length))
        if base is None or length < 200:
            continue
        assert per_op * FLAT_SPEEDUP_FLOOR <= base, (
            f"per-op latency at history {length} is {per_op:.2f} us; "
            f"the flat engine must be >= {FLAT_SPEEDUP_FLOOR:.0f}x "
            f"faster than the dict engine's recorded {base:.2f} us"
        )
