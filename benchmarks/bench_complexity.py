"""E8 — polynomial RSG test vs the NP-complete RC baseline.

Reproduces the paper's complexity claim as a runtime table: on a family
of adversarial instances the RSG recognizer grows polynomially while the
Farrag-Özsu relative-consistency search grows explosively (its column
switches to budget-exhausted as size increases).
"""

from benchmarks._report import emit
from repro.analysis.complexity import adversarial_instance, complexity_sweep
from repro.analysis.tables import format_table
from repro.core.consistent import (
    SearchBudgetExceeded,
    find_equivalent_relatively_atomic,
)
from repro.core.rsg import RelativeSerializationGraph
from repro.specs.builders import uniform_spec


def test_bench_rsg_on_adversarial_instance(benchmark):
    transactions, schedule = adversarial_instance(5, seed=0)
    spec = uniform_spec(transactions, 2)

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_bench_rc_search_on_small_instance(benchmark):
    transactions, schedule = adversarial_instance(3, seed=0)
    spec = uniform_spec(transactions, 2)

    def kernel():
        try:
            return find_equivalent_relatively_atomic(
                schedule, spec, max_steps=500_000
            )
        except SearchBudgetExceeded:
            return None

    benchmark(kernel)


def test_report_complexity_scaling(benchmark):
    def compute():
        return complexity_sweep(
            sizes=(2, 3, 4, 5, 6), trials=3, rc_budget=400_000
        )

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = [
        [
            row.n_transactions,
            row.n_operations,
            f"{row.rsg_seconds * 1000:.2f}",
            ("exhausted" if row.rc_seconds is None
             else f"{row.rc_seconds * 1000:.2f}"),
            f"{row.rc_budget_exhausted}/{row.trials}",
        ]
        for row in rows
    ]
    # Shape checks: the RSG test stays fast at every size.
    assert all(row.rsg_seconds < 0.5 for row in rows)
    emit(
        "E8 — runtime scaling: polynomial RSG test vs NP-complete RC search",
        format_table(
            ["transactions", "operations", "RSG test (ms)",
             "RC search (ms)", "budget exhausted"],
            table,
        )
        + "\n(RC search budget: 400k node expansions per trial)",
    )
