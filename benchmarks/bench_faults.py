"""E16 — fault campaigns: WAL overhead and retry throughput.

Two costs of the robustness subsystem are worth tracking:

* **undo-log overhead on the write path** (E16a) — every
  :meth:`~repro.engine.kvstore.KVStore.write` appends a before-image
  record to the write-ahead undo log; this benchmark times raw
  transactional writes against plain dict stores, plus the commit
  (WAL truncation with supersession scan) and abort (reverse splice)
  epilogues;
* **retry throughput under rising fault rates** (E16b) — seeded
  campaigns at increasing abort rates, recording committed/makespan
  throughput, restart counts, and wait percentiles.  Every campaign
  must still hold the certified-survivor invariants — degradation is
  allowed, incorrectness is not.

Quick mode (``BENCH_QUICK=1``) shrinks the write volume and campaign
sizes and skips writing the tracked JSON.
"""

import gc
import os
import statistics
import time
from pathlib import Path

from benchmarks._report import emit, emit_json
from repro.analysis.tables import format_table
from repro.engine.kvstore import KVStore
from repro.faults import CampaignConfig, run_campaign

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable fault-campaign results, tracked across PRs.
BENCH_FAULTS = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

WRITES = 2_000 if QUICK else 20_000
RUNS = 10 if QUICK else 40
WRITE_REPS = 5 if QUICK else 9
ABORT_RATES = (0.0, 0.3, 0.6, 0.9)


def _time_plain_writes(n):
    data = {}
    start = time.perf_counter()
    for i in range(n):
        data[f"x{i % 64}"] = i
    return time.perf_counter() - start


def _time_wal_commit(n):
    return _time_wal_writes(n, "commit")


def _time_wal_abort(n):
    return _time_wal_writes(n, "abort")


def _time_wal_writes(n, epilogue):
    store = KVStore({f"x{i}": 0 for i in range(64)})
    store.begin(1)
    start = time.perf_counter()
    for i in range(n):
        store.write(1, f"x{i % 64}", i)
    if epilogue == "commit":
        store.commit(1)
    else:
        store.abort(1)
    return time.perf_counter() - start


def _median_of_reps(fn, n):
    """Median wall time of ``fn(n)`` over WRITE_REPS runs, GC pinned.

    Same methodology as ``bench_kvstore.py``: a single cold pass of a
    micro-loop is dominated by allocator growth and collector pauses,
    not the code under test (one cold quick run of this bench once
    reported a 36x WAL ratio that the median puts at ~2x).
    """
    fn(n)  # untimed warmup: allocator growth, bytecode specialization
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return statistics.median(fn(n) for _ in range(WRITE_REPS))
    finally:
        if gc_was_enabled:
            gc.enable()


def test_report_wal_write_overhead(benchmark):
    """E16a: before-image logging cost per write, commit/abort included."""

    def compute():
        return {
            "plain": _median_of_reps(_time_plain_writes, WRITES),
            "wal_commit": _median_of_reps(_time_wal_commit, WRITES),
            "wal_abort": _median_of_reps(_time_wal_abort, WRITES),
        }

    timings = benchmark.pedantic(compute, rounds=1, iterations=1)
    per_write = {
        key: value / WRITES * 1e6 for key, value in timings.items()
    }
    overhead = timings["wal_commit"] / max(timings["plain"], 1e-9)
    rows = [
        [key, f"{value * 1000.0:.2f}", f"{per_write[key]:.3f}"]
        for key, value in timings.items()
    ]
    emit(
        f"E16a — undo-log write-path overhead ({WRITES} writes, "
        f"64 objects, median of {WRITE_REPS})",
        format_table(["path", "wall (ms)", "us/write"], rows)
        + f"\nWAL+commit vs plain dict: {overhead:.1f}x",
    )
    # The batched undo-log write path promises <3x a plain dict write
    # (one flat tuple append per write; the commit epilogue amortizes
    # over the whole transaction).  This run is one transaction of
    # WRITES writes, so it must comfortably meet the same bound the
    # per-transaction micro-bench (bench_kvstore.py) gates.
    assert overhead < 3.0
    if not QUICK:
        emit_json(
            "wal_write_overhead",
            {
                "writes": WRITES,
                "wall_ms": {
                    k: round(v * 1000.0, 2) for k, v in timings.items()
                },
                "us_per_write": {
                    k: round(v, 3) for k, v in per_write.items()
                },
                "overhead_vs_plain": round(overhead, 2),
            },
            path=BENCH_FAULTS,
        )


def test_report_retry_throughput_under_faults(benchmark):
    """E16b: campaign throughput and degradation as abort rates rise."""

    def compute():
        results = {}
        for rate in ABORT_RATES:
            config = CampaignConfig(
                protocol="rsgt",
                runs=RUNS,
                seed=7,
                abort_rate=rate,
                stall_rate=rate / 2,
                kill_rate=rate / 4,
                crash_rate=rate / 2,
            )
            start = time.perf_counter()
            report = run_campaign(config)
            elapsed = time.perf_counter() - start
            results[f"{rate:.1f}"] = (report, elapsed)
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows, payload = [], {}
    for rate, (report, elapsed) in results.items():
        assert report.ok, f"abort_rate={rate}: invariants violated"
        totals = report.totals()
        ticks = sum(r.makespan for r in report.records)
        throughput = totals["committed"] / ticks if ticks else 0.0
        rows.append(
            [
                rate,
                totals["committed"],
                totals["aborted"],
                totals["restarts"],
                f"{throughput:.3f}",
                f"{elapsed * 1000.0:.0f}",
            ]
        )
        payload[rate] = {
            "committed": totals["committed"],
            "aborted": totals["aborted"],
            "restarts": totals["restarts"],
            "injected_crashes": totals["injected_crashes"],
            "throughput_tx_per_tick": round(throughput, 3),
            "wall_ms": round(elapsed * 1000.0, 1),
        }
    emit(
        f"E16b — rsgt campaigns ({RUNS} runs each) under rising fault "
        "rates; every run certified",
        format_table(
            [
                "abort rate",
                "committed",
                "aborted",
                "restarts",
                "tx/tick",
                "wall (ms)",
            ],
            rows,
        ),
    )
    baseline = results["0.0"][0].totals()["committed"]
    stressed = results["0.9"][0].totals()["committed"]
    # Kills permanently remove transactions, so commits must drop — if
    # they do not, the injector is not actually firing.
    assert stressed < baseline
    if not QUICK:
        emit_json(
            "retry_throughput",
            {"runs_per_campaign": RUNS, "by_abort_rate": payload},
            path=BENCH_FAULTS,
        )
