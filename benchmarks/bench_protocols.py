"""E10 — online protocols on the paper's application scenarios.

Reproduces the Section 5 discussion as measurements: strict 2PL,
classical SGT, simplified altruistic locking, and the paper's RSGT
protocol drive the banking, CAD, and long-lived workloads.  The shape to
reproduce: protocols that exploit relative atomicity admit more
interleavings, shortening short-transaction response times and makespan
on long-lived mixes, with every committed history verified correct
offline.
"""

import pytest

from benchmarks._report import emit
from repro.analysis.protocol_comparison import compare_protocols
from repro.analysis.tables import format_table
from repro.protocols import RSGTScheduler, TwoPhaseLockingScheduler
from repro.sim.runner import simulate_bundle
from repro.workloads.banking import BankingWorkload
from repro.workloads.cad import CadWorkload
from repro.workloads.longlived import LongLivedWorkload


def _longlived(seed):
    # Shorts touching two objects create the cross-object conflicts where
    # relative atomicity pays off: a short caught spanning the long
    # transaction's scan is fatal under CSR but fine between the long
    # transaction's units.
    return LongLivedWorkload(
        n_objects=6, n_long=1, n_short=5, short_ops=2, seed=seed
    ).build()


def _banking(seed):
    return BankingWorkload(
        n_families=2,
        accounts_per_family=2,
        customers_per_family=2,
        seed=seed,
    ).build()


def _cad(seed):
    return CadWorkload(
        n_teams=2, designers_per_team=2, parts_per_team=2,
        edits_per_designer=2, seed=seed,
    ).build()


def test_bench_2pl_longlived_run(benchmark):
    bundle = _longlived(0)
    result = benchmark.pedantic(
        lambda: simulate_bundle(bundle, TwoPhaseLockingScheduler()),
        rounds=3,
        iterations=1,
    )
    assert result.committed == len(bundle.transactions)


def test_bench_rsgt_longlived_run(benchmark):
    bundle = _longlived(0)
    result = benchmark.pedantic(
        lambda: simulate_bundle(bundle, RSGTScheduler(bundle.spec)),
        rounds=3,
        iterations=1,
    )
    assert result.committed == len(bundle.transactions)


def _rows_table(rows, short_role):
    ordering = {
        "strict-2pl": 0,
        "altruistic": 1,
        "sgt": 2,
        "rel-locking": 3,
        "rsgt": 4,
    }
    rows = sorted(rows, key=lambda row: ordering[row.protocol])
    return format_table(
        ["protocol", "runs", "makespan", "throughput", "resp (all)",
         f"resp ({short_role})", "restarts", "waits", "verified"],
        [
            [
                row.protocol,
                row.runs,
                f"{row.mean_makespan:.1f}",
                f"{row.mean_throughput:.3f}",
                f"{row.mean_response:.1f}",
                ("-" if row.mean_short_response is None
                 else f"{row.mean_short_response:.1f}"),
                row.total_restarts,
                row.total_waits,
                row.all_correct,
            ]
            for row in rows
        ],
    )


def test_report_longlived_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: compare_protocols(_longlived, seeds=tuple(range(6))),
        rounds=1,
        iterations=1,
    )
    by_name = {row.protocol: row for row in rows}
    assert all(row.all_correct for row in rows)
    # The paper's headline shape: RSGT lets shorts through faster than
    # strict 2PL on a long-lived mix.
    assert (
        by_name["rsgt"].mean_short_response
        < by_name["strict-2pl"].mean_short_response
    )
    emit(
        "E10a — long-lived transaction mix (1 long scanner + 5 shorts, "
        "6 seeds)",
        _rows_table(rows, "short"),
    )


def test_report_banking_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: compare_protocols(
            _banking, seeds=tuple(range(4)), short_role="customer"
        ),
        rounds=1,
        iterations=1,
    )
    assert all(row.all_correct for row in rows)
    emit(
        "E10b — banking scenario (2 families, customers + credit audits "
        "+ bank audit, 4 seeds)",
        _rows_table(rows, "customer"),
    )


def test_report_cad_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: compare_protocols(
            _cad, seeds=tuple(range(4)), short_role="designer"
        ),
        rounds=1,
        iterations=1,
    )
    assert all(row.all_correct for row in rows)
    emit(
        "E10c — CAD collaboration (2 teams x 2 designers, 4 seeds)",
        _rows_table(rows, "designer"),
    )


def test_report_longlived_open_system(benchmark):
    """E10d — shorts arriving mid-scan (open-system variant).

    The paper's motivating regime: the long transaction is already
    running when short ones show up.  Under strict 2PL they queue behind
    whatever the scanner holds; with relative atomicity they run in its
    wake immediately.
    """
    import statistics

    from repro.analysis.protocol_comparison import default_protocols
    from repro.sim.arrivals import role_delayed_arrivals
    from repro.sim.runner import simulate_bundle as _simulate_bundle
    from repro.core.rsg import is_relatively_serializable
    from repro.core.serializability import is_conflict_serializable

    def compute():
        per_protocol = {}
        correct = {}
        for seed in range(6):
            bundle = _longlived(seed)
            arrivals = role_delayed_arrivals(
                bundle.transactions, bundle.roles, {"short": 3}
            )
            for name, factory in default_protocols(bundle):
                result = _simulate_bundle(
                    bundle, factory(), arrivals=arrivals
                )
                if name in ("rsgt", "rel-locking"):
                    ok = is_relatively_serializable(
                        result.schedule, bundle.spec
                    )
                else:
                    ok = is_conflict_serializable(result.schedule)
                correct[name] = correct.get(name, True) and ok
                per_protocol.setdefault(name, []).append(result)
        rows = []
        for name, results in per_protocol.items():
            rows.append(
                [
                    name,
                    statistics.mean(r.makespan for r in results),
                    statistics.mean(
                        r.mean_response_time_of("short") for r in results
                    ),
                    sum(r.total_restarts for r in results),
                    correct[name],
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert all(row[4] for row in rows)
    by_name = {row[0]: row for row in rows}
    # The headline: shorts arriving mid-scan wait far less under the
    # spec-aware protocols than under strict 2PL.
    assert by_name["rsgt"][2] < by_name["strict-2pl"][2]
    ordering = {"strict-2pl": 0, "altruistic": 1, "sgt": 2,
                "rel-locking": 3, "rsgt": 4}
    rows.sort(key=lambda row: ordering[row[0]])
    emit(
        "E10d — open system: shorts arrive at tick 3, mid-scan (6 seeds)",
        format_table(
            ["protocol", "makespan", "resp (short)", "restarts",
             "verified"],
            [
                [name, f"{makespan:.1f}", f"{short:.1f}", restarts, ok]
                for name, makespan, short, restarts, ok in rows
            ],
        ),
    )


def test_report_orders_comparison(benchmark):
    """E10e — the order-processing mix (TPC-C-flavoured delivery sweep).

    The textbook deployment of the paper's idea: the delivery sweep is
    the long transaction every OLTP system dreads; per-district donate
    points let new-orders and payments through mid-sweep.
    """
    from repro.workloads.orders import OrderProcessingWorkload

    def make(seed):
        return OrderProcessingWorkload(
            n_districts=3,
            n_items=3,
            n_new_orders=4,
            n_payments=2,
            seed=seed,
        ).build()

    rows = benchmark.pedantic(
        lambda: compare_protocols(
            make, seeds=tuple(range(5)), short_role="new-order"
        ),
        rounds=1,
        iterations=1,
    )
    assert all(row.all_correct for row in rows)
    by_name = {row.protocol: row for row in rows}
    assert (
        by_name["rsgt"].mean_short_response
        <= by_name["strict-2pl"].mean_short_response
    )
    emit(
        "E10e — order processing (3 districts, delivery sweep + 4 "
        "new-orders + 2 payments + stock scan, 5 seeds)",
        _rows_table(rows, "new-order"),
    )
