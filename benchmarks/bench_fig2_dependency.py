"""E2 — Figure 2: direct conflicts are not sufficient for correctness.

Reproduces the paper's ablation argument: with a direct-conflict-only
dependency relation, schedule ``S1`` would be accepted as relatively
serial; the transitive ``depends-on`` closure correctly rejects it.  The
report prints both verdicts plus the witnessing dependency chain.
"""

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.checkers import is_relatively_serial
from repro.core.dependency import DependencyRelation
from repro.paper import figure2

FIG = figure2()
S1 = FIG.schedule("S1")


def test_bench_transitive_dependency_build(benchmark):
    dep = benchmark(DependencyRelation, S1)
    assert dep.transitive


def test_bench_direct_dependency_build(benchmark):
    def kernel():
        return DependencyRelation(S1, transitive=False)

    dep = benchmark(kernel)
    assert not dep.transitive


def test_report_figure2_ablation(benchmark):
    def compute():
        transitive = DependencyRelation(S1)
        direct = DependencyRelation(S1, transitive=False)
        return (
            is_relatively_serial(S1, FIG.spec, transitive),
            is_relatively_serial(S1, FIG.spec, direct),
            transitive.depends_on(S1[4], S1[1]),  # r1[z] on w2[y]
            direct.depends_on(S1[4], S1[1]),
        )

    with_closure, direct_only, chain_full, chain_direct = benchmark(compute)
    assert not with_closure  # paper: S1 is not a correct schedule
    assert direct_only  # paper: direct conflicts would accept it
    assert chain_full and not chain_direct
    emit(
        "E2 / Figure 2 — transitive depends-on is load-bearing",
        format_table(
            ["dependency relation", "S1 relatively serial?",
             "r1[z] depends on w2[y]?"],
            [
                ["transitive closure (paper)", with_closure, chain_full],
                ["direct conflicts only", direct_only, chain_direct],
            ],
        )
        + "\nchain: w2[y] -> r3[y] -> w3[z] -> r1[z]",
    )
