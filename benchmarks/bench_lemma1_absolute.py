"""E6 — Lemma 1: absolute atomicity collapses RSR to classical CSR.

Reproduces "the set of relatively serializable schedules is exactly the
same as the set of conflict serializable schedules under absolute
atomicity": exhaustively on a small instance and over random larger
instances, the two recognizers agree on every schedule.
"""

import random

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.rsg import RelativeSerializationGraph
from repro.core.serializability import is_conflict_serializable
from repro.core.transactions import Transaction
from repro.specs.builders import absolute_spec
from repro.workloads.enumerate import all_interleavings, count_interleavings
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)

SMALL = [
    Transaction.from_notation(1, "r[x] w[x]"),
    Transaction.from_notation(2, "w[x] r[y]"),
    Transaction.from_notation(3, "w[y]"),
]


def test_bench_rsg_under_absolute_spec(benchmark):
    spec = absolute_spec(SMALL)
    schedule = random_interleaving(SMALL, seed=0)

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_bench_classical_sg_test(benchmark):
    schedule = random_interleaving(SMALL, seed=0)
    benchmark(is_conflict_serializable, schedule)


def test_report_lemma1_agreement(benchmark):
    def compute():
        rows = []
        # Exhaustive: every interleaving of the small instance.
        spec = absolute_spec(SMALL)
        agree = total = accepted = 0
        for schedule in all_interleavings(SMALL):
            total += 1
            rsr = RelativeSerializationGraph(schedule, spec).is_acyclic
            csr = is_conflict_serializable(schedule)
            agree += rsr == csr
            accepted += csr
        rows.append(
            ["exhaustive 3x(2,2,1)", total, accepted, agree, agree == total]
        )
        # Randomized: bigger instances.
        rng = random.Random(17)
        for label, n, ops in (("random 4x4", 4, 4), ("random 5x4", 5, 4)):
            agree = total = accepted = 0
            for _ in range(150):
                txs = random_transactions(
                    n, ops, 3, write_probability=0.5,
                    seed=rng.randint(0, 10**6),
                )
                schedule = random_interleaving(
                    txs, seed=rng.randint(0, 10**6)
                )
                rsr = RelativeSerializationGraph(
                    schedule, absolute_spec(txs)
                ).is_acyclic
                csr = is_conflict_serializable(schedule)
                total += 1
                agree += rsr == csr
                accepted += csr
            rows.append([label, total, accepted, agree, agree == total])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert all(row[4] for row in rows)
    assert rows[0][1] == count_interleavings(SMALL)
    emit(
        "E6 / Lemma 1 — RSG test vs classical CSR test under absolute "
        "atomicity",
        format_table(
            ["population", "schedules", "CSR-accepted", "agreements",
             "full agreement"],
            rows,
        ),
    )
