"""Shared helpers for the benchmark/reproduction harness.

Every module in this directory regenerates one experiment from
DESIGN.md's index (E1-E12).  Conventions:

* functions named ``test_bench_*`` time a kernel with pytest-benchmark;
* functions named ``test_report_*`` *also* run under ``--benchmark-only``
  (they use the fixture once) and print the experiment's reproduced
  rows — run with ``-s`` to see the tables that EXPERIMENTS.md records.
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a clearly delimited experiment report block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
