"""E5 — Figure 5: the class hierarchy, measured exhaustively.

Enumerates all 4200 interleavings of the paper's Figure 1 transaction
set and counts membership in every class.  The report is the
quantitative version of Figure 5: the counts are nested exactly as the
paper draws the sets, every containment is machine-checked, and a
witness exists for each proper inclusion.
"""

from benchmarks._report import emit
from repro.analysis.classes import census_exhaustive
from repro.analysis.containment import check_containments
from repro.analysis.tables import format_table
from repro.paper import figure1
from repro.workloads.enumerate import all_interleavings

FIG = figure1()


def test_bench_census_kernel(benchmark):
    # Polynomial checks only (the RC search is timed in E8): one pass
    # over the full 4200-schedule population.
    def kernel():
        return census_exhaustive(
            FIG.transactions, FIG.spec, consistency_budget=None
        )

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.total == 4200


def test_report_figure5_census(benchmark):
    def compute():
        result = census_exhaustive(
            FIG.transactions, FIG.spec, consistency_budget=50_000
        )
        report = check_containments(
            all_interleavings(FIG.transactions),
            FIG.spec,
            consistency_budget=None,  # RC containments covered by census
        )
        return result, report

    result, containment = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert result.total == 4200
    assert result.undecided_consistent == 0
    assert containment.ok
    # The paper's nesting, as counts.
    assert (
        result.serial
        <= result.relatively_atomic
        <= result.relatively_consistent
        <= result.relatively_serializable
    )
    assert (
        result.relatively_atomic
        <= result.relatively_serial
        <= result.relatively_serializable
    )
    assert result.conflict_serializable < result.relatively_serializable

    rows = [
        [name, count, f"{rate:.3%}"]
        for name, count, rate in result.as_rows()
    ]
    witnesses = "\n".join(
        f"  {name}: {schedule}" for name, schedule in result.witnesses.items()
    )
    emit(
        "E5 / Figure 5 — exhaustive class census over Figure 1's 4200 "
        "interleavings",
        format_table(["class", "schedules", "fraction"], rows)
        + "\n\nproper-inclusion witnesses:\n"
        + witnesses
        + "\n\nrelative serializability admits "
        f"{result.relatively_serializable / result.conflict_serializable:.1f}x"
        " more schedules than conflict serializability on this instance",
    )


def test_report_figure4_census(benchmark):
    """E5b — the same census on Figure 4's instance.

    Figure 4's spec is where relatively serial escapes relatively
    consistent; counting over all 2520 interleavings quantifies the
    separation the paper proves with a single witness.
    """
    from repro.paper import figure4

    fig = figure4()

    def compute():
        return census_exhaustive(
            fig.transactions, fig.spec, consistency_budget=100_000
        )

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert result.undecided_consistent == 0
    # The separation, in counts: some relatively serial schedules are
    # not relatively consistent on this instance...
    assert (
        "relatively serial, not relatively consistent" in result.witnesses
    )
    # ...and the published witness is among them (the census must agree
    # with the paper's classification of S).
    assert result.relatively_serial > result.relatively_atomic
    rows = [
        [name, count, f"{rate:.3%}"]
        for name, count, rate in result.as_rows()
    ]
    emit(
        f"E5b / Figure 4 census — all {result.total} interleavings of the "
        "separation instance",
        format_table(["class", "schedules", "fraction"], rows)
        + "\n\nwitnesses:\n"
        + "\n".join(
            f"  {name}: {schedule}"
            for name, schedule in result.witnesses.items()
        ),
    )
