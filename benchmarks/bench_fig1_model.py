"""E1 — Figure 1 and the Section 2 example schedules.

Reproduces: ``Sra`` is relatively atomic (and not conflict
serializable!), ``Srs`` is relatively serial but not relatively atomic,
``S2`` is relatively serializable but not relatively serial, and ``S2``
is conflict equivalent to ``Srs``.  The report prints the full
class-membership matrix for the three schedules.
"""

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.checkers import is_relatively_atomic, is_relatively_serial
from repro.core.classify import classify
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import conflict_equivalent
from repro.paper import figure1

FIG = figure1()


def test_bench_relatively_atomic_check(benchmark):
    schedule = FIG.schedule("Sra")
    assert benchmark(is_relatively_atomic, schedule, FIG.spec)


def test_bench_relatively_serial_check(benchmark):
    schedule = FIG.schedule("Srs")
    assert benchmark(is_relatively_serial, schedule, FIG.spec)


def test_bench_rsg_acyclicity(benchmark):
    schedule = FIG.schedule("S2")

    def kernel():
        return RelativeSerializationGraph(schedule, FIG.spec).is_acyclic

    assert benchmark(kernel)


def test_report_figure1_class_matrix(benchmark):
    def compute():
        rows = []
        for name in ("Sra", "Srs", "S2"):
            report = classify(FIG.schedule(name), FIG.spec)
            rows.append(
                [
                    name,
                    report.serial,
                    report.conflict_serializable,
                    report.relatively_atomic,
                    report.relatively_serial,
                    report.relatively_consistent,
                    report.relatively_serializable,
                ]
            )
        return rows

    rows = benchmark(compute)
    # Paper claims, asserted:
    sra, srs, s2 = rows
    assert sra[3] and not sra[2]  # Sra: RA, not CSR
    assert srs[4] and not srs[3]  # Srs: RS-serial, not RA
    assert s2[6] and not s2[4]  # S2: RSR, not RS-serial
    assert conflict_equivalent(FIG.schedule("S2"), FIG.schedule("Srs"))
    emit(
        "E1 / Figure 1 — class membership of the paper's example schedules",
        format_table(
            [
                "schedule",
                "serial",
                "CSR",
                "rel. atomic",
                "rel. serial",
                "rel. consistent",
                "rel. serializable",
            ],
            rows,
        ),
    )
