"""E15 — shared-nothing parallel sweeps: scaling, payloads, reduction.

The parallel engine's claims, in the order this module checks them:

* **determinism first** — any job count produces bit-identical
  censuses and batch summaries, because the schedule space is split
  into contiguous lexicographic-rank blocks (each worker re-seeding
  its warm shared-prefix RSG engine at its block-start rank) and
  results merge in block order — a reassociation of the serial fold.
  Asserted here with ``pickle``-level byte equality on every run;
* **flat payloads** — sweep inputs register once with
  :mod:`repro.parallel.registry` and ship once per warm-pool build;
  what crosses the boundary per chunk is a ``(ctx_id, lo, hi)``
  integer tuple.  The payload table below measures pickled bytes per
  chunk against the old object-graph task shape and asserts the
  >= 10x reduction (this is deterministic, so it gates on every host);
* **in-worker reduction** — ``summarize_batch`` folds each chunk
  inside the worker and ships one mergeable summary, so result
  traffic is O(chunks) + 32 bytes/run instead of O(runs) full
  results; the table reports both sizes;
* **scaling** — wall clock by job count, recorded to
  ``BENCH_parallel.json``.  The >= 1.5x floor at 4 workers is asserted
  only when the machine actually has >= 4 cores; on smaller hosts the
  gate prints an explicit SKIPPED notice (never a silent pass) and the
  honest measured numbers — where parallel overhead without parallel
  hardware shows up as speedup < 1 — are still recorded.

Provenance guard: each recorded section carries the host's core
count, and a run on *fewer* cores than the committed baseline refuses
to overwrite it (a laptop smoke run must not clobber a 4-core
measurement).  ``BENCH_OUT_DIR`` (the CI perf-smoke job) routes
results to a scratch directory and bypasses the guard — the tracked
file is never touched in that mode.

Quick mode (``BENCH_QUICK=1``) shrinks the workloads, drops the
4-worker point, and skips writing the tracked JSON.
"""

import json
import os
import pickle
import time
from pathlib import Path

from benchmarks._report import emit, record_json
from repro.analysis.classes import census_exhaustive
from repro.analysis.tables import format_table
from repro.core.transactions import Transaction
from repro.parallel import registry
from repro.parallel.executor import plan_block_count
from repro.sim.batch import SimulationTask, run_batch, summarize_batch
from repro.specs.builders import uniform_spec
from repro.workloads.enumerate import count_interleavings, interleaving_blocks
from repro.workloads.longlived import LongLivedWorkload

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable scaling results, tracked across PRs (repo root).
BENCH_PARALLEL = (
    Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
)

#: Required speedup at 4 workers — asserted only on >=4-core hosts.
SPEEDUP_FLOOR = 1.5
#: Required per-chunk payload shrink vs the old object-graph tasks —
#: deterministic, so asserted on every host.
PAYLOAD_REDUCTION_FLOOR = 10.0
CORES = os.cpu_count() or 1

JOB_COUNTS = (1, 2) if QUICK else (1, 2, 4)

#: Consistency budget used by the census sweeps below.
BUDGET = 200_000


def _census_instance():
    if QUICK:
        txs = [
            Transaction.from_notation(1, "r[x] w[x] r[y]"),
            Transaction.from_notation(2, "w[x] r[y] w[y]"),
            Transaction.from_notation(3, "r[y] w[z]"),
        ]
    else:
        txs = [
            Transaction.from_notation(1, "r[x] w[x] r[y] w[z]"),
            Transaction.from_notation(2, "w[x] r[y] w[y]"),
            Transaction.from_notation(3, "r[y] w[z] r[x]"),
        ]
    return txs, uniform_spec(txs, 1)


def _sim_tasks():
    seeds = range(2) if QUICK else range(6)
    protocols = ("2pl", "sgt", "altruistic", "rel-locking", "rsgt")
    tasks = []
    for seed in seeds:
        bundle = LongLivedWorkload(
            n_objects=6, n_long=1, n_short=8, short_ops=2, seed=seed
        ).build()
        for name in protocols:
            tasks.append(
                SimulationTask(
                    transactions=tuple(bundle.transactions),
                    protocol=name,
                    spec=bundle.spec,
                    roles=dict(bundle.roles),
                    tag=(seed, name),
                )
            )
    return tasks


def _record(section: str, payload: dict) -> None:
    """Record ``payload``, refusing to downgrade a multi-core baseline.

    A run on fewer cores than the committed section's ``cores`` field
    must not overwrite it — the scaling numbers would silently degrade
    from measurements to noise.  ``BENCH_OUT_DIR`` runs write to the
    scratch directory and never touch the tracked file, so the guard
    only applies to direct full-mode runs.
    """
    if not os.environ.get("BENCH_OUT_DIR") and BENCH_PARALLEL.exists():
        try:
            committed = json.loads(BENCH_PARALLEL.read_text()).get(
                section, {}
            )
        except json.JSONDecodeError:
            committed = {}
        baseline_cores = committed.get("cores", 0)
        if baseline_cores > CORES:
            emit(
                f"E15 {section} — NOT RECORDED",
                f"this host has {CORES} core(s) but the committed "
                f"baseline was measured on {baseline_cores}; refusing "
                "to overwrite a multi-core measurement with a "
                "fewer-core run.  Re-measure on a machine with >= "
                f"{baseline_cores} cores to update it.",
            )
            return
    record_json(section, payload, path=BENCH_PARALLEL, quick=QUICK)


def _gate_speedup(label: str, speedups: dict) -> None:
    """Assert the 4-worker floor, or skip LOUDLY on small hosts."""
    if QUICK:
        return
    if CORES >= 4:
        assert speedups["4"] >= SPEEDUP_FLOOR, (
            f"{label}: 4-worker speedup {speedups['4']:.2f}x is below "
            f"the {SPEEDUP_FLOOR}x floor on a {CORES}-core host"
        )
    else:
        emit(
            f"E15 speedup gate ({label}) — SKIPPED",
            f"host has {CORES} core(s), the >= {SPEEDUP_FLOOR}x floor "
            "at 4 workers is asserted only on >= 4-core machines.  "
            "Measured numbers (parallel overhead without parallel "
            "hardware) are still recorded honestly above.",
        )


def _scaling_rows(timings):
    serial = timings["1"]
    rows, speedups = [], {}
    for jobs, elapsed in timings.items():
        speedups[jobs] = serial / elapsed
        rows.append([jobs, f"{elapsed * 1000.0:.0f}", f"{speedups[jobs]:.2f}x"])
    return rows, speedups


def test_report_parallel_census(benchmark):
    """Exhaustive census wall-clock by job count; bytes must match."""
    txs, spec = _census_instance()

    def compute():
        timings, blobs = {}, {}
        for jobs in JOB_COUNTS:
            start = time.perf_counter()
            result = census_exhaustive(txs, spec, jobs=jobs)
            timings[str(jobs)] = time.perf_counter() - start
            blobs[str(jobs)] = pickle.dumps(result)
        return timings, blobs

    timings, blobs = benchmark.pedantic(compute, rounds=1, iterations=1)
    for jobs, blob in blobs.items():
        assert blob == blobs["1"], (
            f"jobs={jobs} census is not byte-identical to serial"
        )

    rows, speedups = _scaling_rows(timings)
    population = count_interleavings(txs)
    emit(
        f"E15a — exhaustive census over {population} interleavings, "
        f"warm pool + flat rank blocks ({CORES} cores)",
        format_table(["jobs", "wall (ms)", "speedup"], rows),
    )
    _record(
        "census_scaling",
        {
            "config": "3 txs (4+3+3 ops), uniform_spec(1), "
                      f"population={population}",
            "cores": CORES,
            "wall_ms": {
                k: round(v * 1000.0, 1) for k, v in timings.items()
            },
            "speedup": {k: round(v, 2) for k, v in speedups.items()},
        },
    )
    _gate_speedup("census", speedups)


def test_report_parallel_simulation_batch(benchmark):
    """In-worker-reduced simulation batch; summaries must match."""
    tasks = _sim_tasks()

    def compute():
        timings, summaries = {}, {}
        for jobs in JOB_COUNTS:
            start = time.perf_counter()
            summary = summarize_batch(tasks, jobs=jobs)
            timings[str(jobs)] = time.perf_counter() - start
            summaries[str(jobs)] = summary
        return timings, summaries

    timings, summaries = benchmark.pedantic(compute, rounds=1, iterations=1)
    serial_bytes = json.dumps(summaries["1"].to_dict(), sort_keys=True)
    for jobs, summary in summaries.items():
        assert json.dumps(summary.to_dict(), sort_keys=True) == (
            serial_bytes
        ), f"jobs={jobs} batch summary differs from serial"
    assert summaries["1"].errors == 0

    rows, speedups = _scaling_rows(timings)
    emit(
        f"E15b — simulation batch, {len(tasks)} runs, in-worker "
        f"reduction (seed x protocol, {CORES} cores)",
        format_table(["jobs", "wall (ms)", "speedup"], rows),
    )
    _record(
        "simulation_batch_scaling",
        {
            "config": "LongLivedWorkload(1 long + 8 shorts), "
                      f"{len(tasks)} tasks, summarize_batch",
            "cores": CORES,
            "wall_ms": {
                k: round(v * 1000.0, 1) for k, v in timings.items()
            },
            "speedup": {k: round(v, 2) for k, v in speedups.items()},
        },
    )
    _gate_speedup("simulation batch", speedups)


def test_report_payload_bytes():
    """Pickled bytes per chunk: flat tuples vs the old object graphs.

    The old engine shipped ``(transactions, spec, lo, hi, budget)`` —
    or a slice of SimulationTask objects — inside *every* chunk task.
    The flat engine registers that context once (``context bytes``
    ship once per pool build) and each chunk is a
    ``(ctx_id, lo, hi)`` tuple.  Deterministic, so the >= 10x floor
    gates on every host.  Also reported: the in-worker-reduction win,
    one pickled BatchSummary vs the full pickled result list.
    """

    def chunk_bytes(payload):
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    # -- census rank sweep ------------------------------------------------
    txs, spec = _census_instance()
    total = count_interleavings(txs)
    blocks = max(2, plan_block_count(total, 4, min_block=1))
    windows = interleaving_blocks(txs, blocks)
    ctx = registry.register((txs, spec, BUDGET))
    census_flat = max(
        chunk_bytes((ctx, lo, hi)) for lo, hi in windows
    )
    census_legacy = max(
        chunk_bytes((txs, spec, lo, hi, BUDGET)) for lo, hi in windows
    )
    census_context = registry.payload_size(ctx)

    # -- simulation batch -------------------------------------------------
    tasks = _sim_tasks()
    sim_ctx = registry.register(tuple(tasks))
    half = len(tasks) // 2
    sim_flat = max(
        chunk_bytes((sim_ctx, 0, half)),
        chunk_bytes((sim_ctx, half, len(tasks))),
    )
    sim_legacy = max(
        chunk_bytes(tuple(tasks[:half])),
        chunk_bytes(tuple(tasks[half:])),
    )
    sim_context = registry.payload_size(sim_ctx)

    # -- in-worker reduction: result traffic ------------------------------
    results = run_batch(tasks, jobs=1)
    summary = summarize_batch(tasks, jobs=1)
    results_bytes = chunk_bytes(results)
    summary_bytes = chunk_bytes(summary)

    census_reduction = census_legacy / census_flat
    sim_reduction = sim_legacy / sim_flat
    emit(
        f"E15c — pickled bytes per chunk task, flat vs object graph "
        f"({CORES} cores)",
        format_table(
            ["sweep", "legacy B/chunk", "flat B/chunk", "reduction",
             "context B (once/pool)"],
            [
                ["census rank block", census_legacy, census_flat,
                 f"{census_reduction:.0f}x", census_context],
                ["simulation window", sim_legacy, sim_flat,
                 f"{sim_reduction:.0f}x", sim_context],
            ],
        )
        + f"\nresult traffic, {len(tasks)}-run batch: "
        f"{results_bytes} B as full results vs {summary_bytes} B as "
        "one in-worker-reduced summary",
    )
    assert census_reduction >= PAYLOAD_REDUCTION_FLOOR, (
        f"census chunk payload only shrank {census_reduction:.1f}x"
    )
    assert sim_reduction >= PAYLOAD_REDUCTION_FLOOR, (
        f"simulation chunk payload only shrank {sim_reduction:.1f}x"
    )
    assert summary_bytes < results_bytes

    _record(
        "payload_bytes",
        {
            "cores": CORES,
            "census": {
                "legacy_chunk_bytes": census_legacy,
                "flat_chunk_bytes": census_flat,
                "reduction": round(census_reduction, 1),
                "context_bytes": census_context,
            },
            "simulation": {
                "legacy_chunk_bytes": sim_legacy,
                "flat_chunk_bytes": sim_flat,
                "reduction": round(sim_reduction, 1),
                "context_bytes": sim_context,
            },
            "result_traffic": {
                "full_results_bytes": results_bytes,
                "summary_bytes": summary_bytes,
            },
        },
    )
