"""E15 — parallel sweep engine: serial vs multi-process scaling.

The tentpole claim of the parallel subsystem is *determinism first*:
any job count produces bit-identical censuses, reports, and simulation
batches, because the schedule space is split into contiguous
lexicographic-rank blocks (each worker re-seeds its shared-prefix
incremental RSG engine at its block-start rank) and results are merged
in block order — a reassociation of the serial fold.  This module
asserts that equality on every run, measures the wall-clock scaling,
and records both into ``BENCH_parallel.json``:

* exhaustive Figure-5 census over the full interleaving space, ranked
  block partitioning (``census_exhaustive(jobs=N)``);
* batched protocol simulations, one task per seed x protocol
  (``run_batch(jobs=N)``).

Speedup on a multi-core box should be near-linear (the sweeps are
embarrassingly parallel; only the merge is serial).  The >=2.5x floor
at 4 workers is asserted only when the machine actually has >= 4 cores
— on smaller hosts (CI smoke runs on 1-2 cores) the honest measured
numbers are still recorded, where parallel overhead without parallel
hardware shows up as speedup < 1.

Quick mode (``BENCH_QUICK=1``) shrinks the workloads, drops the
4-worker point, and skips writing the tracked JSON.
"""

import os
import time
from pathlib import Path

from benchmarks._report import emit, emit_json
from repro.analysis.classes import census_exhaustive
from repro.analysis.tables import format_table
from repro.core.transactions import Transaction
from repro.sim.batch import SimulationTask, run_batch
from repro.specs.builders import uniform_spec
from repro.workloads.longlived import LongLivedWorkload

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable scaling results, tracked across PRs (repo root).
BENCH_PARALLEL = (
    Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
)

#: Required speedup at 4 workers — asserted only on >=4-core hosts.
SPEEDUP_FLOOR = 2.5
CORES = os.cpu_count() or 1

JOB_COUNTS = (1, 2) if QUICK else (1, 2, 4)


def _census_instance():
    if QUICK:
        txs = [
            Transaction.from_notation(1, "r[x] w[x] r[y]"),
            Transaction.from_notation(2, "w[x] r[y] w[y]"),
            Transaction.from_notation(3, "r[y] w[z]"),
        ]
    else:
        txs = [
            Transaction.from_notation(1, "r[x] w[x] r[y] w[z]"),
            Transaction.from_notation(2, "w[x] r[y] w[y]"),
            Transaction.from_notation(3, "r[y] w[z] r[x]"),
        ]
    return txs, uniform_spec(txs, 1)


def _census_key(result):
    """Everything a census reports, witnesses included."""
    return (
        result.total,
        result.serial,
        result.conflict_serializable,
        result.relatively_atomic,
        result.relatively_serial,
        result.relatively_consistent,
        result.relatively_serializable,
        result.undecided_consistent,
        sorted(
            (name, tuple(schedule.operations))
            for name, schedule in result.witnesses.items()
        ),
    )


def _scaling_rows(timings):
    serial = timings["1"]
    rows, speedups = [], {}
    for jobs, elapsed in timings.items():
        speedups[jobs] = serial / elapsed
        rows.append([jobs, f"{elapsed * 1000.0:.0f}", f"{speedups[jobs]:.2f}x"])
    return rows, speedups


def test_report_parallel_census(benchmark):
    """Exhaustive census wall-clock by job count; results must match."""
    txs, spec = _census_instance()

    def compute():
        timings, keys = {}, {}
        for jobs in JOB_COUNTS:
            start = time.perf_counter()
            result = census_exhaustive(txs, spec, jobs=jobs)
            timings[str(jobs)] = time.perf_counter() - start
            keys[str(jobs)] = _census_key(result)
        return timings, keys

    timings, keys = benchmark.pedantic(compute, rounds=1, iterations=1)
    for jobs, key in keys.items():
        assert key == keys["1"], f"jobs={jobs} census differs from serial"

    rows, speedups = _scaling_rows(timings)
    population = keys["1"][0]
    emit(
        f"E15a — exhaustive census over {population} interleavings, "
        f"ranked block partitioning ({CORES} cores)",
        format_table(["jobs", "wall (ms)", "speedup"], rows),
    )
    if not QUICK:
        emit_json(
            "census_scaling",
            {
                "config": "3 txs (4+3+3 ops), uniform_spec(1), "
                          f"population={population}",
                "cores": CORES,
                "wall_ms": {
                    k: round(v * 1000.0, 1) for k, v in timings.items()
                },
                "speedup": {k: round(v, 2) for k, v in speedups.items()},
            },
            path=BENCH_PARALLEL,
        )
        if CORES >= 4:
            assert speedups["4"] >= SPEEDUP_FLOOR


def test_report_parallel_simulation_batch(benchmark):
    """Batched seed x protocol simulations; results must match serial."""
    seeds = range(2) if QUICK else range(6)
    protocols = ("2pl", "sgt", "altruistic", "rel-locking", "rsgt")
    tasks = []
    for seed in seeds:
        bundle = LongLivedWorkload(
            n_objects=6, n_long=1, n_short=8, short_ops=2, seed=seed
        ).build()
        for name in protocols:
            tasks.append(
                SimulationTask(
                    transactions=tuple(bundle.transactions),
                    protocol=name,
                    spec=bundle.spec,
                    roles=dict(bundle.roles),
                    tag=(seed, name),
                )
            )

    def compute():
        timings, histories = {}, {}
        for jobs in JOB_COUNTS:
            start = time.perf_counter()
            results = run_batch(tasks, jobs=jobs)
            timings[str(jobs)] = time.perf_counter() - start
            histories[str(jobs)] = [
                tuple(result.schedule.operations) for result in results
            ]
        return timings, histories

    timings, histories = benchmark.pedantic(compute, rounds=1, iterations=1)
    for jobs, history in histories.items():
        assert history == histories["1"], (
            f"jobs={jobs} batch differs from serial"
        )

    rows, speedups = _scaling_rows(timings)
    emit(
        f"E15b — simulation batch, {len(tasks)} runs "
        f"(seed x protocol, {CORES} cores)",
        format_table(["jobs", "wall (ms)", "speedup"], rows),
    )
    if not QUICK:
        emit_json(
            "simulation_batch_scaling",
            {
                "config": "LongLivedWorkload(1 long + 8 shorts), "
                          f"{len(tasks)} tasks",
                "cores": CORES,
                "wall_ms": {
                    k: round(v * 1000.0, 1) for k, v in timings.items()
                },
                "speedup": {k: round(v, 2) for k, v in speedups.items()},
            },
            path=BENCH_PARALLEL,
        )
        if CORES >= 4:
            assert speedups["4"] >= SPEEDUP_FLOOR
