"""E9 — concurrency gained by relaxing atomicity.

Reproduces the paper's motivation quantitatively: the fraction of random
schedules each correctness notion accepts, as atomic-unit granularity is
swept from absolute (unit = whole transaction, where RSR == CSR by
Lemma 1) down to the finest units (everything accepted).  The same
schedule population is used at every granularity, so the columns are
directly comparable and monotone.
"""

from benchmarks._report import emit
from repro.analysis.acceptance import acceptance_sweep
from repro.analysis.tables import format_table
from repro.core.rsg import is_relatively_serializable
from repro.specs.builders import nested_spec_chain
from repro.workloads.random_schedules import (
    random_schedules,
    random_transactions,
)

SWEEP_KWARGS = dict(
    n_transactions=3,
    ops_per_transaction=4,
    n_objects=3,
    unit_sizes=(4, 3, 2, 1),
    samples=150,
    seed=7,
    consistency_budget=100_000,
)


def test_bench_acceptance_single_granularity(benchmark):
    def kernel():
        return acceptance_sweep(
            n_transactions=3,
            ops_per_transaction=4,
            n_objects=3,
            unit_sizes=(2,),
            samples=40,
            seed=7,
            consistency_budget=None,
        )

    rows = benchmark.pedantic(kernel, rounds=2, iterations=1)
    assert rows[0].samples == 40


def test_report_acceptance_rates(benchmark):
    def compute():
        return acceptance_sweep(**SWEEP_KWARGS)

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Shape checks matching the paper's claims:
    absolute_row, *_middle, finest_row = rows
    # Lemma 1 at absolute granularity.
    assert (
        abs(absolute_row.relatively_serializable
            - absolute_row.conflict_serializable) < 1e-9
    )
    # Concurrency gain: the absolute row is the floor, the finest row
    # the ceiling.  (Intermediate unit sizes are not nested cut sets,
    # so only the endpoints are provably ordered.)
    rates = [row.relatively_serializable for row in rows]
    assert all(rates[0] <= rate <= rates[-1] for rate in rates)
    # Finest accepts everything.
    assert finest_row.relatively_serializable == 1.0
    table = [
        [
            row.unit_size,
            row.samples,
            f"{row.conflict_serializable:.3f}",
            f"{row.relatively_atomic:.3f}",
            f"{row.relatively_consistent:.3f}",
            f"{row.relatively_serial:.3f}",
            f"{row.relatively_serializable:.3f}",
        ]
        for row in rows
    ]
    emit(
        "E9 — acceptance rates by atomic-unit granularity "
        "(same 150 random schedules per row)",
        format_table(
            ["unit size", "samples", "CSR", "rel.atomic", "rel.consistent",
             "rel.serial", "rel.serializable"],
            table,
        )
        + "\nunit size 4 = absolute atomicity (traditional model); "
        "unit size 1 = finest",
    )


def test_report_nested_chain_acceptance(benchmark):
    """E9b — acceptance along a provably nested specification chain.

    Unit-size sweeps interpolate between absolute and finest but their
    intermediate cut sets are not subsets of one another; a nested chain
    (each level reveals more breakpoints) makes the monotone growth of
    the accepted class a theorem, measured here per level.
    """

    def compute():
        transactions = random_transactions(
            3, 4, 3, write_probability=0.5, seed=21
        )
        population = random_schedules(transactions, 150, seed=21)
        chain = nested_spec_chain(transactions, levels=5, seed=21)
        rows = []
        for level, spec in enumerate(chain):
            accepted = sum(
                is_relatively_serializable(schedule, spec)
                for schedule in population
            )
            cuts = sum(
                len(spec.atomicity(*pair).breakpoints)
                for pair in spec.pairs()
            )
            rows.append([level, cuts, accepted, accepted / len(population)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    rates = [row[3] for row in rows]
    # The theorem: along nested cuts, acceptance is monotone.
    assert rates == sorted(rates)
    assert rates[-1] == 1.0
    emit(
        "E9b — acceptance along a nested breakpoint chain "
        "(monotone by construction; 150 random schedules)",
        format_table(
            ["level", "total breakpoints", "accepted", "rate"],
            rows,
        ),
    )
