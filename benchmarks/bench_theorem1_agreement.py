"""E7 — Theorem 1: the RSG test against the definition, head to head.

Reproduces the paper's central result empirically: across exhaustive
small populations and random larger ones, RSG acyclicity agrees with
"some conflict-equivalent schedule is relatively serial" on every single
schedule — while being orders of magnitude cheaper than the enumeration.
"""

import random
import time

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.brute import brute_force_relatively_serializable
from repro.core.rsg import RelativeSerializationGraph
from repro.core.transactions import Transaction
from repro.specs.builders import random_spec, uniform_spec
from repro.workloads.enumerate import all_interleavings
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)

PAIR = [
    Transaction.from_notation(1, "r[x] w[x] r[y]"),
    Transaction.from_notation(2, "w[x] w[y]"),
]


def test_bench_rsg_recognizer(benchmark):
    spec = uniform_spec(PAIR, 2)
    schedule = random_interleaving(PAIR, seed=3)

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_bench_brute_force_recognizer(benchmark):
    spec = uniform_spec(PAIR, 2)
    schedule = random_interleaving(PAIR, seed=3)
    benchmark(brute_force_relatively_serializable, schedule, spec)


def test_report_theorem1_agreement(benchmark):
    def compute():
        rows = []
        # Exhaustive on the pair instance, across unit granularities.
        for unit_size in (3, 2, 1):
            spec = uniform_spec(PAIR, unit_size)
            total = agree = accepted = 0
            rsg_time = brute_time = 0.0
            for schedule in all_interleavings(PAIR):
                total += 1
                start = time.perf_counter()
                rsg_says = RelativeSerializationGraph(
                    schedule, spec
                ).is_acyclic
                rsg_time += time.perf_counter() - start
                start = time.perf_counter()
                brute_says = brute_force_relatively_serializable(
                    schedule, spec
                )
                brute_time += time.perf_counter() - start
                agree += rsg_says == brute_says
                accepted += rsg_says
            rows.append(
                [
                    f"exhaustive, units of {unit_size}",
                    total,
                    accepted,
                    agree == total,
                    rsg_time,
                    brute_time,
                ]
            )
        # Randomized, random specs.
        rng = random.Random(23)
        total = agree = accepted = 0
        rsg_time = brute_time = 0.0
        for _ in range(120):
            txs = random_transactions(
                3, (1, 3), 2, write_probability=0.6,
                seed=rng.randint(0, 10**6),
            )
            spec = random_spec(txs, 0.5, seed=rng.randint(0, 10**6))
            schedule = random_interleaving(txs, seed=rng.randint(0, 10**6))
            total += 1
            start = time.perf_counter()
            rsg_says = RelativeSerializationGraph(schedule, spec).is_acyclic
            rsg_time += time.perf_counter() - start
            start = time.perf_counter()
            brute_says = brute_force_relatively_serializable(schedule, spec)
            brute_time += time.perf_counter() - start
            agree += rsg_says == brute_says
            accepted += rsg_says
        rows.append(
            ["random 3-tx instances", total, accepted, agree == total,
             rsg_time, brute_time]
        )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert all(row[3] for row in rows)
    emit(
        "E7 / Theorem 1 — RSG acyclicity vs brute-force definition",
        format_table(
            ["population", "schedules", "RSR-accepted", "full agreement",
             "RSG time (s)", "brute time (s)"],
            rows,
        ),
    )
