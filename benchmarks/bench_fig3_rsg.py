"""E3 — Figure 3: the worked relative serialization graph.

Reproduces the drawn graph arc for arc (all twelve edges with their
I/D/F/B labels) and times RSG construction on the paper's instance.  The
report prints the full arc table exactly as the figure labels it.
"""

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.rsg import RelativeSerializationGraph
from repro.paper import figure3
from repro.paper.figures import FIGURE3_EXPECTED_ARCS

FIG = figure3()
S2 = FIG.schedule("S2")


def test_bench_rsg_construction(benchmark):
    rsg = benchmark(RelativeSerializationGraph, S2, FIG.spec)
    assert rsg.graph.node_count == 6


def test_bench_rsg_construction_plus_test(benchmark):
    def kernel():
        return RelativeSerializationGraph(S2, FIG.spec).is_acyclic

    assert benchmark(kernel)


def test_report_figure3_arcs(benchmark):
    def compute():
        rsg = RelativeSerializationGraph(S2, FIG.spec)
        return {
            (a.label, b.label): "".join(
                sorted((kind.value for kind in labels), key="IDFB".index)
            )
            for a, b, labels in rsg.graph.labelled_edges()
        }

    got = benchmark(compute)
    expected = {
        pair: "".join(sorted(kinds, key="IDFB".index))
        for pair, kinds in FIGURE3_EXPECTED_ARCS.items()
    }
    assert got == expected
    rows = [
        [source, target, kinds]
        for (source, target), kinds in sorted(got.items())
    ]
    emit(
        "E3 / Figure 3 — RSG(S2) arc set (paper's drawing, reproduced)",
        format_table(["from", "to", "kinds"], rows)
        + f"\narcs: {len(rows)} (matches the figure), graph acyclic: yes",
    )
