"""E14 — transaction chopping [SSV92] vs relative serializability.

The paper's Section 4 cites chopping as the other semantics-based
relaxation, one that "remains within the confines of traditional
serializability".  This experiment makes the comparison concrete: for
random transaction sets we compute a finest correct chopping, embed it
as a relative atomicity spec (pieces = units, same view for every
observer), and measure what each theory accepts on the same schedule
population:

* CSR — the classical baseline;
* RSR under the chopping-induced spec — the paper's test applied to
  chopping-shaped units;
* RSR under the finest spec — the ceiling.

Shape to reproduce — and it is exactly the paper's Section 4 claim,
quantified: ``CSR ≤ chopping-RSR ≤ finest-RSR`` always holds, and the
chopping column hugs the CSR floor.  Correct choppings exist only where
splitting cannot create new behaviours (the SC-cycle test forbids
anything else), so embedding them as relative atomicity specs buys
almost nothing beyond conflict serializability — chopping "remains
within the confines of traditional serializability" while per-observer
relative atomicity (the finest column) does not.
"""

import random

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.rsg import is_relatively_serializable
from repro.core.serializability import is_conflict_serializable
from repro.specs.builders import finest_spec
from repro.specs.chopping import (
    Chopping,
    chopping_to_spec,
    finest_correct_chopping,
    is_correct_chopping,
    sc_cycle,
)
from repro.workloads.random_schedules import (
    random_schedules,
    random_transactions,
)


def _instances(count, seed=5):
    rng = random.Random(seed)
    result = []
    for _ in range(count):
        txs = random_transactions(
            3, (2, 4), 3, write_probability=0.5, seed=rng.randint(0, 10**6)
        )
        result.append((txs, rng.randint(0, 10**6)))
    return result


def test_bench_sc_cycle_test(benchmark):
    txs = random_transactions(4, 4, 3, write_probability=0.5, seed=1)
    chopping = Chopping(
        tuple(txs), {tx.tx_id: frozenset({2}) for tx in txs}
    )
    benchmark(sc_cycle, chopping)


def test_bench_finest_correct_chopping(benchmark):
    txs = random_transactions(4, 4, 3, write_probability=0.5, seed=1)
    chopping = benchmark(finest_correct_chopping, txs)
    assert is_correct_chopping(chopping)


def test_report_chopping_vs_relative(benchmark):
    def compute():
        rows = []
        totals = {"csr": 0, "chop": 0, "finest": 0, "samples": 0}
        for index, (txs, schedule_seed) in enumerate(_instances(8)):
            chopping = finest_correct_chopping(txs)
            chop_spec = chopping_to_spec(chopping)
            fine_spec = finest_spec(txs)
            population = random_schedules(txs, 60, seed=schedule_seed)
            csr = sum(is_conflict_serializable(s) for s in population)
            chop = sum(
                is_relatively_serializable(s, chop_spec)
                for s in population
            )
            fine = sum(
                is_relatively_serializable(s, fine_spec)
                for s in population
            )
            rows.append(
                [
                    index,
                    chopping.piece_count(),
                    csr / len(population),
                    chop / len(population),
                    fine / len(population),
                ]
            )
            totals["csr"] += csr
            totals["chop"] += chop
            totals["finest"] += fine
            totals["samples"] += len(population)
        return rows, totals

    rows, totals = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Shape: chopping-induced RSR sits between CSR and the finest spec
    # on every instance (aggregate strictly so on conflict-rich mixes).
    for _index, _pieces, csr, chop, fine in rows:
        assert csr <= chop + 1e-9
        assert chop <= fine + 1e-9
    assert totals["chop"] >= totals["csr"]
    assert totals["finest"] >= totals["chop"]
    table = [
        [index, pieces, f"{csr:.3f}", f"{chop:.3f}", f"{fine:.3f}"]
        for index, pieces, csr, chop, fine in rows
    ]
    emit(
        "E14 — chopping [SSV92] embedded as relative atomicity "
        "(8 instances x 60 random schedules)",
        format_table(
            ["instance", "pieces", "CSR", "chopping-RSR", "finest-RSR"],
            table,
        )
        + "\naggregate acceptance: "
        f"CSR {totals['csr']}/{totals['samples']}, "
        f"chopping-RSR {totals['chop']}/{totals['samples']}, "
        f"finest-RSR {totals['finest']}/{totals['samples']}",
    )
