"""E12 — RSG construction/test throughput at realistic sizes.

The practicality micro-benchmark behind the paper's "efficient
(polynomial) method" claim: wall-clock cost of building the relative
serialization graph and testing acyclicity as the schedule grows, plus
the cost of extracting the equivalent relatively serial schedule.
"""

import time

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.rsg import RelativeSerializationGraph
from repro.specs.builders import uniform_spec
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)


def _instance(n_transactions, ops, seed=0):
    txs = random_transactions(
        n_transactions, ops, n_objects=max(2, n_transactions),
        write_probability=0.3, seed=seed,
    )
    spec = uniform_spec(txs, max(1, ops // 3))
    schedule = random_interleaving(txs, seed=seed + 1)
    return txs, spec, schedule


def test_bench_rsg_small(benchmark):
    _txs, spec, schedule = _instance(4, 5)

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_bench_rsg_medium(benchmark):
    _txs, spec, schedule = _instance(10, 10)

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_bench_rsg_large(benchmark):
    _txs, spec, schedule = _instance(20, 15)

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_bench_witness_extraction(benchmark):
    # Random interleavings at this size are almost never relatively
    # serializable, so time the constructive direction on a schedule
    # that is guaranteed acceptable: the serial one.
    from repro.core.schedules import Schedule

    txs, spec, _schedule = _instance(10, 10)
    serial = Schedule.serial(txs)
    rsg = RelativeSerializationGraph(serial, spec)
    assert rsg.is_acyclic
    benchmark(rsg.equivalent_relatively_serial_schedule)


def test_report_rsg_scaling(benchmark):
    def compute():
        rows = []
        for n_tx, ops in ((4, 5), (8, 8), (12, 10), (16, 12), (20, 15)):
            _txs, spec, schedule = _instance(n_tx, ops)
            start = time.perf_counter()
            repetitions = 5
            for _ in range(repetitions):
                rsg = RelativeSerializationGraph(schedule, spec)
                rsg.is_acyclic
            elapsed = (time.perf_counter() - start) / repetitions
            rows.append(
                [
                    n_tx,
                    len(schedule),
                    rsg.graph.node_count,
                    rsg.graph.edge_count,
                    f"{elapsed * 1000:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "E12 — RSG build + acyclicity test scaling",
        format_table(
            ["transactions", "schedule ops", "vertices", "arcs",
             "build+test (ms)"],
            rows,
        ),
    )
