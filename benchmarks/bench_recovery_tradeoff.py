"""E13 — the recovery price of relaxed atomicity.

The paper's model lets transactions observe each other mid-flight;
classical recovery theory (recoverable / avoids-cascading-aborts /
strict) prices that visibility.  This experiment quantifies the
trade-off the Section 5 discussion of altruistic locking [SGMA87]
gestures at: as atomic units shrink and the accepted class grows, the
share of accepted schedules retaining each recovery guarantee falls.
"""

from benchmarks._report import emit
from repro.analysis.recovery_tradeoff import recovery_tradeoff_sweep
from repro.analysis.tables import format_table
from repro.core.recovery import recovery_profile
from repro.paper import figure1


def test_bench_recovery_profile(benchmark):
    sra = figure1().schedule("Sra")
    profile = benchmark(recovery_profile, sra)
    # Sra trades every recovery guarantee for its concurrency.
    assert profile == {"rc": False, "aca": False, "st": False}


def test_report_recovery_tradeoff(benchmark):
    def compute():
        return recovery_tradeoff_sweep(
            n_transactions=3,
            ops_per_transaction=4,
            n_objects=3,
            unit_sizes=(4, 3, 2, 1),
            samples=200,
            seed=11,
        )

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Shape: absolute accepts the least, finest accepts everything, and
    # the strict share among accepted schedules is highest at absolute
    # units.  (Intermediate unit sizes are not nested cut sets, so only
    # the endpoints are provably ordered.)
    acceptance = [row.acceptance_rate for row in rows]
    assert all(acceptance[0] <= rate <= acceptance[-1] for rate in acceptance)
    assert acceptance[-1] == 1.0
    strict_rates = [row.strict for row in rows if row.accepted]
    assert strict_rates[0] == max(strict_rates)
    assert strict_rates[-1] == min(strict_rates)
    table = [
        [
            row.unit_size,
            row.accepted,
            f"{row.acceptance_rate:.3f}",
            f"{row.recoverable:.3f}",
            f"{row.aca:.3f}",
            f"{row.strict:.3f}",
        ]
        for row in rows
    ]
    emit(
        "E13 — recovery classes among RSG-accepted schedules, by "
        "atomic-unit granularity (200 random schedules)",
        format_table(
            ["unit size", "accepted", "acceptance", "RC", "ACA", "strict"],
            table,
        )
        + "\nfiner units admit more schedules but fewer of them keep "
        "recovery guarantees",
    )
