"""Gate a perf-smoke run against the committed BENCH_*.json baselines.

The CI perf-smoke job runs the hot-path benchmarks in quick mode with
``BENCH_OUT_DIR`` set, so their results land in a scratch directory
instead of the tracked files.  This script then compares the scratch
results against the committed baselines and exits non-zero when any
gated metric regressed by more than the tolerance.

A metric "regresses" when::

    new > old * (1 + tolerance) + epsilon

with a relative tolerance of 25% and a small per-metric absolute
epsilon: quick-mode runs on shared CI machines jitter, and several
gated values (tracing overhead percentage points) sit near zero where
a pure ratio test would flag noise.  Genuine hot-path regressions are
multiples, not percentage points — the flat-engine rewrite moved per-op
latency 2-5x — so the slack does not mask what this gate is for.

Usage::

    python benchmarks/check_regression.py <out_dir> [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (file, section, path-into-section, absolute epsilon, unit).
#: ``path`` may end with ``"*"`` to compare every numeric value of the
#: innermost mapping (per-history latencies, per-protocol overheads).
CHECKS = (
    ("BENCH_rsg.json", "per_op_latency", ("us_per_op_by_history", "*"), 0.25, "us"),
    # Overhead percentage swings by several points either way with
    # ambient load (the same smoke run can read -9 and +8 on two
    # protocols); bench_obs.py's own <10% assertion is the primary
    # gate, so this check only catches order-of-magnitude blowups.
    ("BENCH_obs.json", "obs_overhead", ("*", "overhead_pct"), 9.0, "pct-points"),
    ("BENCH_obs.json", "obs_emit", ("per_event_ns",), 150.0, "ns"),
    # Same load-swing caveat as obs_overhead: the span-collector's own
    # <10% assertion is the primary gate.
    ("BENCH_obs.json", "obs_span", ("*", "overhead_pct"), 9.0, "pct-points"),
    ("BENCH_obs.json", "obs_hist", ("per_record_ns",), 150.0, "ns"),
    # Flat chunk tasks are a couple dozen bytes of pickled integers;
    # growth here means object graphs crept back into the per-chunk
    # payloads.  The epsilon absorbs pickle-framing jitter between the
    # quick-mode and full-mode sweep configurations.
    ("BENCH_parallel.json", "payload_bytes", ("census", "flat_chunk_bytes"), 16.0, "bytes"),
    ("BENCH_parallel.json", "payload_bytes", ("simulation", "flat_chunk_bytes"), 16.0, "bytes"),
)


def _walk(payload, path):
    """Yield ``(label, value)`` leaves of ``payload`` along ``path``."""
    key, rest = path[0], path[1:]
    if key == "*":
        for name, value in sorted(payload.items()):
            if rest:
                for label, leaf in _walk(value, rest):
                    yield f"{name}.{label}", leaf
            else:
                yield name, value
    else:
        value = payload[key]
        if rest:
            for label, leaf in _walk(value, rest):
                yield f"{key}.{label}", leaf
        else:
            yield key, value


def compare(out_dir: Path, tolerance: float) -> list[str]:
    """All regression messages (empty when the run is clean)."""
    problems = []
    for filename, section, path, epsilon, unit in CHECKS:
        committed_file = REPO_ROOT / filename
        fresh_file = out_dir / filename
        if not fresh_file.exists():
            problems.append(
                f"{filename}: perf-smoke produced no output "
                f"(expected {fresh_file})"
            )
            continue
        committed = json.loads(committed_file.read_text())
        fresh = json.loads(fresh_file.read_text())
        if section not in fresh:
            problems.append(f"{filename}: section {section!r} missing from smoke run")
            continue
        baseline = dict(_walk(committed[section], path))
        for label, new in _walk(fresh[section], path):
            old = baseline.get(label)
            if old is None:
                # New configurations have no baseline yet; the next
                # full-mode run commits one.
                continue
            bound = old * (1.0 + tolerance) + epsilon
            verdict = "ok" if new <= bound else "REGRESSION"
            print(
                f"{filename} {section}.{label}: {old:g} -> {new:g} {unit} "
                f"(bound {bound:g}) {verdict}"
            )
            if new > bound:
                problems.append(
                    f"{filename} {section}.{label}: {new:g} {unit} exceeds "
                    f"{bound:g} (committed {old:g}, tolerance "
                    f"{tolerance:.0%} + {epsilon:g})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out_dir", type=Path, help="BENCH_OUT_DIR of the smoke run")
    parser.add_argument("--tolerance", type=float, default=0.25)
    arguments = parser.parse_args(argv)
    problems = compare(arguments.out_dir, arguments.tolerance)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("perf smoke within tolerance of committed baselines")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
