"""E17 — observability: null-sink tracing overhead on per-op latency.

The trace bus promises two things about cost:

* **un-traced runs are effectively free** — with no sink attached the
  bus skips event construction entirely, so the instrumented hot path
  pays one attribute check per would-be event;
* **traced runs stay cheap** — with the :class:`~repro.obs.bus.NullSink`
  attached the full emission path (event construction included) runs on
  every request, and the per-op latency of the RSGT certification
  pipeline must not degrade by more than 10%.

The gate times the RSGT scheduler (certification dominates per-op cost,
so this is the paper protocol's realistic request path) and *asserts*
the <10% bound; the lock-based baselines are reported informationally —
their per-op work is a dictionary lookup, so tracing is proportionally
larger there and not gated.

Quick mode (``BENCH_QUICK=1``) shrinks the repetition count and skips
writing the tracked JSON.
"""

import gc
import os
import time
from pathlib import Path

from benchmarks._report import emit, emit_json
from repro.analysis.tables import format_table
from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.obs.bus import NullSink, TraceBus
from repro.obs.events import EventKind
from repro.protocols import make_scheduler
from repro.sim.runner import simulate

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable observability results, tracked across PRs.
BENCH_OBS = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

REPS = 8 if QUICK else 25
#: The gated bound: traced/plain per-op latency ratio on RSGT.
MAX_OVERHEAD = 0.10


def _workload(n=12, ops=6):
    objs = ["x", "y", "z", "u", "v"]
    transactions = []
    for i in range(1, n + 1):
        parts = []
        for j in range(ops):
            kind = "r" if (i + j) % 2 else "w"
            parts.append(f"{kind}[{objs[(i * 3 + j) % len(objs)]}]")
        transactions.append(
            Transaction.from_notation(i, " ".join(parts))
        )
    return transactions


def _best_run(protocol, spec, transactions, traced):
    """Best-of-REPS wall time of one simulated run, plus event count."""
    best = float("inf")
    events = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            scheduler = make_scheduler(protocol, spec)
            kwargs = {}
            if traced:
                sink = NullSink()
                kwargs = {"bus": TraceBus(sink)}
            start = time.perf_counter()
            simulate(transactions, scheduler, **kwargs)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
            if traced:
                events = sink.count
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, events, sum(len(tx) for tx in transactions)


def _measure(protocol):
    transactions = _workload()
    spec = RelativeAtomicitySpec(transactions)
    plain, _, ops = _best_run(protocol, spec, transactions, False)
    traced, events, _ = _best_run(protocol, spec, transactions, True)
    return {
        "plain_ms": plain * 1000.0,
        "traced_ms": traced * 1000.0,
        "overhead": traced / plain - 1.0,
        "events": events,
        "per_op_us": plain / ops * 1e6,
    }


def test_report_null_sink_overhead(benchmark):
    """E17a: per-op latency with the null sink active, gated at <10%."""

    def compute():
        return {
            protocol: _measure(protocol)
            for protocol in ("rsgt", "2pl", "sgt")
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            protocol,
            f"{stats['plain_ms']:.2f}",
            f"{stats['traced_ms']:.2f}",
            f"{stats['overhead'] * 100.0:+.2f}%",
            stats["events"],
        ]
        for protocol, stats in results.items()
    ]
    emit(
        "E17a: null-sink tracing overhead (best-of-%d runs)" % REPS,
        format_table(
            ["protocol", "plain ms", "traced ms", "overhead", "events"],
            rows,
        )
        + "\ngate: rsgt overhead < 10% (lock baselines informational)",
    )
    if not QUICK:
        emit_json(
            "obs_overhead",
            {
                protocol: {
                    "overhead_pct": round(
                        stats["overhead"] * 100.0, 2
                    ),
                    "events": stats["events"],
                }
                for protocol, stats in results.items()
            },
            BENCH_OBS,
        )
    # The gate: certification per-op latency absorbs full-path emission
    # within budget.  Lock-table baselines do a dict lookup per op, so
    # their proportional overhead is structurally larger — not gated.
    assert results["rsgt"]["overhead"] < MAX_OVERHEAD, (
        f"null-sink tracing overhead "
        f"{results['rsgt']['overhead'] * 100.0:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100.0:.0f}% on the rsgt per-op bench"
    )


def test_report_emit_cost(benchmark):
    """E17b: raw emission cost per event, null sink attached."""
    n = 20_000 if QUICK else 200_000
    sink = NullSink()
    bus = TraceBus(sink)

    def compute():
        for _ in range(n):
            bus.emit(EventKind.REQUEST, 1, "r1[x]", "rsgt")
        return sink.count

    benchmark.pedantic(compute, rounds=1, iterations=1)
    start = time.perf_counter()
    compute()
    per_event_ns = (time.perf_counter() - start) / n * 1e9
    emit(
        "E17b: raw emit cost",
        f"{per_event_ns:.0f} ns/event over {n} events "
        f"(NamedTuple construction + null-sink fan-out)",
    )
    if not QUICK:
        emit_json(
            "obs_emit",
            {"per_event_ns": round(per_event_ns)},
            BENCH_OBS,
        )
