"""E17 — observability: tracing overhead on per-op latency.

The trace bus promises two things about cost:

* **un-traced runs are effectively free** — with no sink attached the
  bus skips event construction entirely, so the instrumented hot path
  pays one attribute check per would-be event;
* **traced runs stay cheap** — with a sink attached the full lazy
  emission path (raw field tuple + C-level buffer append, no NamedTuple
  construction) runs on every request, and per-op latency must not
  degrade by more than 10% on **any** measured protocol: ``rsgt``
  (certification dominates, the paper protocol's realistic request
  path) *and* the lock-table baselines ``2pl``/``sgt``, whose per-op
  work is a dictionary lookup and which therefore bound the emission
  cost most tightly.

The measuring sink is :class:`~repro.obs.bus.RingBufferSink` — its
``write`` is a bound ``deque.append``, so the measured cost is exactly
what a shipping traced run pays to buffer events.  Plain and traced
runs are timed in **interleaved pairs**, with GC pinned and an untimed
warmup pair first: separate measurement windows on a busy machine let
load shifts masquerade as tracing overhead.  Two overhead estimates
come out of the same window — the ratio of medians and the ratio of
floors (minima) — and the gate takes the smaller: ambient load inflates
the two in different regimes (bursts contaminate floors, sustained
shifts skew medians), so a real regression must show in both to fail.

Quick mode (``BENCH_QUICK=1``) shrinks the repetition count; the <10%
gate holds in quick and full mode alike.
"""

import gc
import os
import statistics
import time
from pathlib import Path

from benchmarks._report import emit, record_json
from repro.analysis.tables import format_table
from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.obs.bus import RingBufferSink, TraceBus
from repro.obs.events import EventKind
from repro.protocols import make_scheduler
from repro.sim.runner import simulate

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable observability results, tracked across PRs.
BENCH_OBS = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

REPS = 9 if QUICK else 25
#: The gated bound, for every measured protocol.
MAX_OVERHEAD = 0.10
PROTOCOLS = ("rsgt", "2pl", "sgt")


def _workload(n=12, ops=6):
    objs = ["x", "y", "z", "u", "v"]
    transactions = []
    for i in range(1, n + 1):
        parts = []
        for j in range(ops):
            kind = "r" if (i + j) % 2 else "w"
            parts.append(f"{kind}[{objs[(i * 3 + j) % len(objs)]}]")
        transactions.append(
            Transaction.from_notation(i, " ".join(parts))
        )
    return transactions


def _run_plain(protocol, spec, transactions):
    scheduler = make_scheduler(protocol, spec)
    start = time.perf_counter()
    simulate(transactions, scheduler)
    return time.perf_counter() - start, 0


def _run_traced(protocol, spec, transactions, make_sink):
    scheduler = make_scheduler(protocol, spec)
    bus = TraceBus(make_sink())
    start = time.perf_counter()
    simulate(transactions, scheduler, bus=bus)
    return time.perf_counter() - start, bus.events_emitted


def _measure(protocol, make_sink=lambda: RingBufferSink(256)):
    """Plain/traced wall times over interleaved pairs, two estimates.

    Ambient load on a shared machine oscillates fast enough that any
    single statistic of a ratio drifts by whole percentage points
    between invocations; the median-ratio and floor-ratio estimates
    (same interleaved window, so both sides see the same machine) fail
    in different load regimes, and the gate uses their minimum.
    """
    transactions = _workload()
    spec = RelativeAtomicitySpec(transactions)
    plains = []
    traceds = []
    events = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _run_plain(protocol, spec, transactions)  # untimed warmup pair
        _run_traced(protocol, spec, transactions, make_sink)
        for _ in range(REPS):
            plains.append(_run_plain(protocol, spec, transactions)[0])
            elapsed, events = _run_traced(
                protocol, spec, transactions, make_sink
            )
            traceds.append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    plain = statistics.median(plains)
    traced = statistics.median(traceds)
    floor_overhead = min(traceds) / min(plains) - 1.0
    median_overhead = traced / plain - 1.0
    return {
        "plain_ms": plain * 1000.0,
        "traced_ms": traced * 1000.0,
        "overhead": min(median_overhead, floor_overhead),
        "events": events,
        "per_event_ns": (traced - plain) / events * 1e9,
    }


def _measure_gated(protocol, make_sink=lambda: RingBufferSink(256)):
    """:func:`_measure` with up to two retries against the gate.

    An ambient load burst can contaminate a whole measurement window
    and read several points of phantom overhead; it does not repeat
    across three independent windows, while a genuine regression does.
    The best window is kept either way, so recorded numbers and the
    gate see the same estimate.
    """
    stats = _measure(protocol, make_sink)
    for _ in range(2):
        if stats["overhead"] < MAX_OVERHEAD:
            break
        retry = _measure(protocol, make_sink)
        if retry["overhead"] < stats["overhead"]:
            stats = retry
    return stats


def test_report_tracing_overhead(benchmark):
    """E17a: per-op latency with a ring sink attached, gated at <10%
    on every measured protocol."""

    def compute():
        return {
            protocol: _measure_gated(protocol) for protocol in PROTOCOLS
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            protocol,
            f"{stats['plain_ms']:.2f}",
            f"{stats['traced_ms']:.2f}",
            f"{stats['overhead'] * 100.0:+.2f}%",
            f"{stats['per_event_ns']:.0f}",
            stats["events"],
        ]
        for protocol, stats in results.items()
    ]
    emit(
        f"E17a: ring-sink tracing overhead ({REPS} interleaved "
        "pairs, GC pinned, min of median-/floor-ratio estimates)",
        format_table(
            [
                "protocol", "plain ms", "traced ms", "overhead",
                "ns/event", "events",
            ],
            rows,
        )
        + f"\ngate: overhead < {MAX_OVERHEAD * 100.0:.0f}% on every "
        "protocol",
    )
    record_json(
        "obs_overhead",
        {
            protocol: {
                "overhead_pct": round(stats["overhead"] * 100.0, 2),
                "per_event_ns": round(stats["per_event_ns"]),
                "events": stats["events"],
            }
            for protocol, stats in results.items()
        },
        path=BENCH_OBS,
        quick=QUICK,
    )
    for protocol in PROTOCOLS:
        assert results[protocol]["overhead"] < MAX_OVERHEAD, (
            f"tracing overhead "
            f"{results[protocol]['overhead'] * 100.0:.2f}% exceeds "
            f"{MAX_OVERHEAD * 100.0:.0f}% on the {protocol} per-op bench"
        )


def test_report_emit_cost(benchmark):
    """E17b: raw lazy-emission cost per event, ring sink attached."""
    n = 20_000 if QUICK else 200_000
    bus = TraceBus(RingBufferSink(256))

    def compute():
        for _ in range(n):
            bus.emit(EventKind.REQUEST, 1, "r1[x]", "rsgt")
        return bus.events_emitted

    benchmark.pedantic(compute, rounds=1, iterations=1)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        compute()
        per_event_ns = (time.perf_counter() - start) / n * 1e9
    finally:
        if gc_was_enabled:
            gc.enable()
    emit(
        "E17b: raw emit cost",
        f"{per_event_ns:.0f} ns/event over {n} events "
        "(raw-tuple construction + ring-buffer fan-out; the typed "
        "TraceEvent view is materialized lazily on read)",
    )
    record_json(
        "obs_emit",
        {"per_event_ns": round(per_event_ns)},
        path=BENCH_OBS,
        quick=QUICK,
    )


def test_report_span_collector_overhead(benchmark):
    """E17c: per-op latency with the span-collector sink attached.

    The service runs a :class:`~repro.obs.spans.SpanCollector` on its
    bus permanently, so its fold (a couple of dict operations per
    event) must clear the same <10% gate the ring sink does — on every
    measured protocol.
    """
    from repro.obs.spans import SpanCollector

    def compute():
        return {
            protocol: _measure_gated(protocol, lambda: SpanCollector(256))
            for protocol in PROTOCOLS
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            protocol,
            f"{stats['plain_ms']:.2f}",
            f"{stats['traced_ms']:.2f}",
            f"{stats['overhead'] * 100.0:+.2f}%",
            f"{stats['per_event_ns']:.0f}",
            stats["events"],
        ]
        for protocol, stats in results.items()
    ]
    emit(
        f"E17c: span-collector overhead ({REPS} interleaved pairs, "
        "GC pinned, min of median-/floor-ratio estimates)",
        format_table(
            [
                "protocol", "plain ms", "spans ms", "overhead",
                "ns/event", "events",
            ],
            rows,
        )
        + f"\ngate: overhead < {MAX_OVERHEAD * 100.0:.0f}% on every "
        "protocol",
    )
    record_json(
        "obs_span",
        {
            protocol: {
                "overhead_pct": round(stats["overhead"] * 100.0, 2),
                "per_event_ns": round(stats["per_event_ns"]),
                "events": stats["events"],
            }
            for protocol, stats in results.items()
        },
        path=BENCH_OBS,
        quick=QUICK,
    )
    for protocol in PROTOCOLS:
        assert results[protocol]["overhead"] < MAX_OVERHEAD, (
            f"span-collector overhead "
            f"{results[protocol]['overhead'] * 100.0:.2f}% exceeds "
            f"{MAX_OVERHEAD * 100.0:.0f}% on the {protocol} per-op bench"
        )


def test_report_hist_record_cost(benchmark):
    """E17d: fixed-boundary histogram per-record cost.

    Every served verb and every shed hint records into a
    :class:`~repro.obs.hist.Histogram` on the service hot path; one
    record is a ``bit_length`` bucket index plus a handful of integer
    updates, and this pins its cost.
    """
    from repro.obs.hist import Histogram

    n = 20_000 if QUICK else 200_000
    hist = Histogram()

    def compute():
        record = hist.record
        for value in range(n):
            record(value & 0xFFFF)
        return hist.count

    benchmark.pedantic(compute, rounds=1, iterations=1)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        compute()
        per_record_ns = (time.perf_counter() - start) / n * 1e9
    finally:
        if gc_was_enabled:
            gc.enable()
    emit(
        "E17d: histogram record cost",
        f"{per_record_ns:.0f} ns/record over {n} records "
        "(bit_length bucket index + integer min/max/sum updates; "
        "percentiles are computed on read, never on record)",
    )
    record_json(
        "obs_hist",
        {"per_record_ns": round(per_record_ns)},
        path=BENCH_OBS,
        quick=QUICK,
    )
