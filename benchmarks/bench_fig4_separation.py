"""E4 — Figure 4: relatively serial but not relatively consistent.

Reproduces the separation witness behind Figure 5's proper containment:
the schedule ``S`` passes Definition 2 directly (it IS relatively
serial, hence relatively serializable) yet the exhaustive search proves
no conflict-equivalent relatively atomic schedule exists.  Times both
the polynomial checks and the exponential witness search.
"""

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.checkers import is_relatively_serial
from repro.core.consistent import find_equivalent_relatively_atomic
from repro.core.rsg import is_relatively_serializable
from repro.core.serializability import is_conflict_serializable
from repro.paper import figure4

FIG = figure4()
S = FIG.schedule("S")


def test_bench_definition_check(benchmark):
    assert benchmark(is_relatively_serial, S, FIG.spec)


def test_bench_rsg_check(benchmark):
    assert benchmark(is_relatively_serializable, S, FIG.spec)


def test_bench_consistency_search(benchmark):
    def kernel():
        return find_equivalent_relatively_atomic(S, FIG.spec)

    assert benchmark(kernel) is None


def test_report_figure4_separation(benchmark):
    def compute():
        return [
            ["relatively serial (Def. 2)", is_relatively_serial(S, FIG.spec)],
            [
                "relatively serializable (Thm. 1)",
                is_relatively_serializable(S, FIG.spec),
            ],
            [
                "relatively consistent (F-Ö)",
                find_equivalent_relatively_atomic(S, FIG.spec) is not None,
            ],
            ["conflict serializable", is_conflict_serializable(S)],
        ]

    rows = benchmark(compute)
    assert rows[0][1] and rows[1][1]
    assert not rows[2][1] and not rows[3][1]
    emit(
        "E4 / Figure 4 — RSR properly contains RC "
        "(S = w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z])",
        format_table(["class", "S is a member?"], rows),
    )
