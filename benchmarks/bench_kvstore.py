"""E16c — KV-store write-path micro-bench: plain vs WAL vs batched WAL.

The engine buffers undo records per transaction (one flat tuple append
per write) and derives the global WAL view on demand, so the write path
is promised to cost **<3x a plain dict write** when writes amortize over
a transaction of realistic size.  This module pins that promise with
three shapes:

* ``plain`` — raw dict assignment, the floor;
* ``wal_per_write_tx`` — one begin/write/commit cycle per write, the
  worst case (every write pays the whole transaction epilogue);
* ``wal_batched`` — ``BATCH`` writes per transaction, the realistic
  shape (the simulator's transactions write many objects per commit).

Timings are median-of-repeats with GC pinned and an untimed warmup pass
(the same methodology as ``bench_incremental.py``'s latency windows —
single cold runs of micro-loops are dominated by allocator growth and
collector pauses, not the code under test).

The ratios land in ``BENCH_faults.json`` under ``kvstore_write_path``
and the batched ratio is asserted ``< 3.0`` in full and quick mode
alike.
"""

import gc
import os
import statistics
import time
from pathlib import Path

from benchmarks._report import emit, emit_json
from repro.analysis.tables import format_table
from repro.engine.kvstore import KVStore

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: Machine-readable fault/engine results, tracked across PRs.
BENCH_FAULTS = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

WRITES = 4_096 if QUICK else 32_768
#: Writes per transaction in the batched shape.
BATCH = 64
REPS = 5 if QUICK else 9
#: The gated bound: batched WAL write vs plain dict write.
MAX_RATIO = 3.0

_OBJECTS = {f"x{i}": 0 for i in range(BATCH)}


# Every variant renders its key per write (``f"x{i % BATCH}"``) — the
# committed-baseline methodology from ``bench_faults.py``: a write
# request arrives with a freshly built key and value, as it does from
# the simulator, so the ratio measures the undo-log machinery rather
# than the gap to a bare C-level dict store.


def _plain(n):
    data = dict(_OBJECTS)
    start = time.perf_counter()
    for i in range(n):
        data[f"x{i % BATCH}"] = i
    return time.perf_counter() - start


def _wal_per_write_tx(n):
    store = KVStore(dict(_OBJECTS))
    begin, write, commit = store.begin, store.write, store.commit
    start = time.perf_counter()
    for i in range(n):
        begin(1)
        write(1, f"x{i % BATCH}", i)
        commit(1)
    return time.perf_counter() - start


def _wal_batched(n):
    store = KVStore(dict(_OBJECTS))
    begin, write, commit = store.begin, store.write, store.commit
    start = time.perf_counter()
    for base in range(0, n, BATCH):
        begin(1)
        for i in range(base, base + BATCH):
            write(1, f"x{i % BATCH}", i)
        commit(1)
    return time.perf_counter() - start


def _median_of_reps(fn, n):
    """Median wall time of ``fn(n)`` over REPS runs, GC pinned."""
    fn(n)  # untimed warmup: allocator growth, bytecode specialization
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return statistics.median(fn(n) for _ in range(REPS))
    finally:
        if gc_was_enabled:
            gc.enable()


def test_report_kvstore_write_path(benchmark):
    """E16c: batched WAL writes stay under 3x a plain dict write."""

    def compute():
        return {
            "plain": _median_of_reps(_plain, WRITES),
            "wal_per_write_tx": _median_of_reps(_wal_per_write_tx, WRITES),
            "wal_batched": _median_of_reps(_wal_batched, WRITES),
        }

    timings = benchmark.pedantic(compute, rounds=1, iterations=1)
    plain = max(timings["plain"], 1e-9)
    per_write = {k: v / WRITES * 1e6 for k, v in timings.items()}
    ratios = {k: v / plain for k, v in timings.items()}
    rows = [
        [key, f"{per_write[key]:.3f}", f"{ratios[key]:.2f}x"]
        for key in timings
    ]
    emit(
        f"E16c — KV-store write path ({WRITES} writes, batch={BATCH}, "
        f"median of {REPS})",
        format_table(["path", "us/write", "vs plain"], rows)
        + f"\ngate: batched WAL < {MAX_RATIO:.0f}x plain",
    )
    if not QUICK:
        emit_json(
            "kvstore_write_path",
            {
                "writes": WRITES,
                "batch": BATCH,
                "us_per_write": {
                    k: round(v, 3) for k, v in per_write.items()
                },
                "ratio_vs_plain": {
                    k: round(v, 2) for k, v in ratios.items()
                },
            },
            path=BENCH_FAULTS,
        )
    assert ratios["wal_batched"] < MAX_RATIO, (
        f"batched WAL write costs {ratios['wal_batched']:.2f}x a plain "
        f"write; the target is <{MAX_RATIO:.0f}x"
    )
