"""Report emission helpers shared by the benchmark modules."""

from __future__ import annotations

import json
from pathlib import Path

#: Machine-readable results file tracked across PRs (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_rsg.json"

#: Recorded seed-revision timings for speedup accounting.
BASELINES = Path(__file__).resolve().parent / "baselines" / "seed_rsg.json"


def emit(title: str, body: str) -> None:
    """Print a clearly delimited experiment report block (run with -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def load_baselines() -> dict:
    """The seed revision's recorded timings (ms), keyed by benchmark."""
    with BASELINES.open() as handle:
        return json.load(handle)


def emit_json(section: str, payload: dict, path: Path | None = None) -> None:
    """Merge ``payload`` under ``section`` in the BENCH_rsg.json tracker.

    The file accumulates one object per benchmark section so partial
    re-runs update only their own section; keys are sorted to keep the
    diff stable across runs.
    """
    target = BENCH_JSON if path is None else path
    document: dict = {}
    if target.exists():
        try:
            document = json.loads(target.read_text())
        except json.JSONDecodeError:
            document = {}
    document[section] = payload
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
