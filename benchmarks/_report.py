"""Report emission helper shared by the benchmark modules."""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a clearly delimited experiment report block (run with -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
