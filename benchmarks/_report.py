"""Report emission helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Machine-readable results file tracked across PRs (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_rsg.json"

#: Recorded seed-revision timings for speedup accounting.
BASELINES = Path(__file__).resolve().parent / "baselines" / "seed_rsg.json"

#: Per-op certification latency recorded at the last dict-of-sets
#: engine revision; the flat-engine gate in bench_incremental.py
#: measures against these.
PREFLAT = Path(__file__).resolve().parent / "baselines" / "preflat_rsg.json"


def emit(title: str, body: str) -> None:
    """Print a clearly delimited experiment report block (run with -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def load_baselines() -> dict:
    """The seed revision's recorded timings (ms), keyed by benchmark."""
    with BASELINES.open() as handle:
        return json.load(handle)


def load_preflat() -> dict:
    """The dict-of-sets engine's recorded per-op latency baselines."""
    with PREFLAT.open() as handle:
        return json.load(handle)


def record_json(
    section: str, payload: dict, path: Path | None = None, quick: bool = False
) -> None:
    """Route results to the right place for the run mode.

    Full runs merge into the tracked BENCH_*.json at the repo root.
    When ``BENCH_OUT_DIR`` is set (the CI perf-smoke job), results go to
    a same-named file in that directory instead — never the tracked
    file — so ``check_regression.py`` can diff them against the
    committed baselines.  Quick runs without ``BENCH_OUT_DIR`` record
    nothing.
    """
    out_dir = os.environ.get("BENCH_OUT_DIR")
    if out_dir:
        target = Path(out_dir) / (BENCH_JSON if path is None else path).name
        target.parent.mkdir(parents=True, exist_ok=True)
        emit_json(section, payload, target)
    elif not quick:
        emit_json(section, payload, path)


def emit_json(section: str, payload: dict, path: Path | None = None) -> None:
    """Merge ``payload`` under ``section`` in the BENCH_rsg.json tracker.

    The file accumulates one object per benchmark section so partial
    re-runs update only their own section; keys are sorted to keep the
    diff stable across runs.
    """
    target = BENCH_JSON if path is None else path
    document: dict = {}
    if target.exists():
        try:
            document = json.loads(target.read_text())
        except json.JSONDecodeError:
            document = {}
    document[section] = payload
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
