"""E11 — ablation: the pull-backward (B) arcs are load-bearing.

Section 3: "Lynch as well as Farrag and Özsu use the notion of pushing
forward ... neither of them employed the notion of pulling backward."
This experiment removes each arc family from the RSG and measures, over
exhaustive populations with ground truth from the brute-force
recognizer, how many schedules the weakened graphs mis-classify: the
F-only graph (prior work's shape) accepts schedules that are NOT
relatively serializable — acyclicity stops being sufficient — while the
full graph is exact.
"""

import random

from benchmarks._report import emit
from repro.analysis.tables import format_table
from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.brute import brute_force_relatively_serializable
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.specs.builders import random_spec
from repro.workloads.enumerate import all_interleavings
from repro.workloads.random_schedules import random_transactions


def b_arc_witness():
    """An instance where the F-only graph is provably unsound.

    Found by exhaustive search: the schedule below is NOT relatively
    serializable (brute-force enumeration of all conflict-equivalent
    schedules confirms it), the full RSG is correctly cyclic, but the
    B-arc-free graph — the shape of Lynch's and Farrag–Özsu's tools — is
    acyclic and would accept it.
    """
    t1 = Transaction.from_notation(1, "w[a] w[b] w[a]")
    t2 = Transaction.from_notation(2, "w[a] w[b] r[a]")
    t3 = Transaction.from_notation(3, "w[b] r[a] w[a]")
    transactions = [t1, t2, t3]
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 2): "w[a] w[b] | w[a]",
            (1, 3): "w[a] | w[b] w[a]",
            (2, 1): "w[a] | w[b] r[a]",
            (2, 3): "w[a] | w[b] | r[a]",
            (3, 1): "w[b] | r[a] w[a]",
            (3, 2): "w[b] r[a] | w[a]",
        },
    )
    schedule = Schedule.from_notation(
        transactions,
        "w1[a] w2[a] w3[b] w1[b] w1[a] w2[b] r2[a] r3[a] w3[a]",
    )
    return transactions, spec, schedule

VARIANTS = (
    ("full RSG (paper)", dict()),
    ("F-arcs only (Lynch/F-Ö style)", dict(include_b_arcs=False)),
    ("B-arcs only", dict(include_f_arcs=False)),
    ("D-arcs only (no unit arcs)", dict(include_f_arcs=False,
                                        include_b_arcs=False)),
)


def _populations():
    rng = random.Random(31)
    populations = []
    for _ in range(12):
        txs = random_transactions(
            3, (1, 3), 2, write_probability=0.6, seed=rng.randint(0, 10**6)
        )
        spec = random_spec(txs, 0.5, seed=rng.randint(0, 10**6))
        populations.append((txs, spec))
    return populations


def test_bench_full_rsg_variant(benchmark):
    populations = _populations()
    txs, spec = populations[0]
    schedule = next(all_interleavings(txs))

    def kernel():
        return RelativeSerializationGraph(schedule, spec).is_acyclic

    benchmark(kernel)


def test_report_arc_ablation(benchmark):
    def compute():
        populations = _populations()
        stats = {
            name: {"false_accept": 0, "false_reject": 0, "total": 0}
            for name, _kwargs in VARIANTS
        }
        for txs, spec in populations:
            for schedule in all_interleavings(txs):
                truth = brute_force_relatively_serializable(schedule, spec)
                for name, kwargs in VARIANTS:
                    verdict = RelativeSerializationGraph(
                        schedule, spec, **kwargs
                    ).is_acyclic
                    entry = stats[name]
                    entry["total"] += 1
                    if verdict and not truth:
                        entry["false_accept"] += 1
                    elif truth and not verdict:
                        entry["false_reject"] += 1
        return stats

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    full = stats["full RSG (paper)"]
    assert full["false_accept"] == 0 and full["false_reject"] == 0
    # Dropping unit arcs entirely must over-accept (D-arcs alone always
    # follow schedule order, so the graph can never be cyclic).
    d_only = stats["D-arcs only (no unit arcs)"]
    assert d_only["false_accept"] > 0
    # Fold in the crafted witness: random sampling rarely hits the
    # F-only unsoundness, but this instance pins it down.
    _txs, spec, schedule = b_arc_witness()
    truth = brute_force_relatively_serializable(schedule, spec)
    assert not truth
    assert not RelativeSerializationGraph(schedule, spec).is_acyclic
    for name, kwargs in VARIANTS:
        verdict = RelativeSerializationGraph(
            schedule, spec, **kwargs
        ).is_acyclic
        stats[name]["total"] += 1
        if verdict:  # truth is False: any accept is a false accept
            stats[name]["false_accept"] += 1
    assert stats["F-arcs only (Lynch/F-Ö style)"]["false_accept"] > 0
    rows = [
        [
            name,
            entry["total"],
            entry["false_accept"],
            entry["false_reject"],
            entry["false_accept"] == 0 and entry["false_reject"] == 0,
        ]
        for name, entry in stats.items()
    ]
    emit(
        "E11 — arc-family ablation vs brute-force ground truth "
        "(12 random instances, exhaustive interleavings)",
        format_table(
            ["graph variant", "schedules", "false accepts",
             "false rejects", "exact"],
            rows,
        )
        + "\nfalse accept = acyclic graph but NOT relatively serializable "
        "(unsound)\nfalse reject = cyclic graph but relatively serializable "
        "(incomplete)",
    )
