"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working in offline environments where the
``wheel`` package (needed by PEP 660 editable builds) is unavailable:
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to the
legacy ``setup.py develop`` path through this shim.
"""

from setuptools import setup

setup()
