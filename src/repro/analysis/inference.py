"""Specification inference: the coarsest relaxation accepting a workload.

The paper observes that relative atomicity specifications "are given a
priori and ... tend to be conservative".  This module inverts the
problem: given interleavings the users *want* legal, compute breakpoints
that make them so — the minimum relaxation of absolute atomicity under
which every desired schedule is relatively **serial** (hence relatively
serializable).

The algorithm rests on a converse of the paper's Lemma 2, checkable on
this code base (property-tested in the suite):

    A schedule ``S`` is relatively serial **iff** every arc of
    ``RSG(S)`` is consistent with ``S`` (points forward).

  *If relatively serial:* Lemma 2's proof shows all arcs forward.
  *If all arcs forward:* a Definition 2 violation — an operation ``o``
  interleaved in a unit with a dependency — always produces a backward
  arc: ``o`` depending on an earlier unit operation gives the F-arc
  ``unit-end -> o`` with the unit end after ``o``; a later unit
  operation depending on ``o`` gives the B-arc ``o -> unit-start`` with
  the unit start before ``o``.

So to make ``S`` relatively serial it suffices to cut units until every
F/B arc points forward, and because operations of one transaction occupy
increasing positions, the minimal cut for each offending dependency is
determined exactly:

* for a dependency ``a -> b`` (``b`` depends on ``a``, different
  transactions), the unit of ``a`` relative to ``T_b`` must end before
  ``b``: cut ``Atomicity(T_a, T_b)`` at the first index of ``T_a``
  whose operation follows ``b`` in ``S``;
* symmetrically, the unit of ``b`` relative to ``T_a`` must start after
  ``a``: cut ``Atomicity(T_b, T_a)`` at the first index of ``T_b``
  whose operation follows ``a`` in ``S``.

Multiple desired schedules compose by the specification lattice's join
(cut-set union), under which acceptance is monotone.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.dependency import DependencyRelation
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction, as_transaction_map
from repro.errors import InvalidScheduleError

__all__ = ["required_breakpoints", "infer_spec"]


def required_breakpoints(
    schedule: Schedule,
) -> dict[tuple[int, int], set[int]]:
    """The per-pair cuts that make ``schedule`` relatively serial.

    Each returned cut is placed at the latest position its forcing
    dependency allows; removing a cut without replacing it by an
    earlier one in the same unit leaves a backward F- or B-arc for
    that dependency.
    """
    dependency = DependencyRelation(schedule)
    transactions = schedule.transactions
    cuts: dict[tuple[int, int], set[int]] = {}
    for earlier, later in dependency.cross_transaction_pairs():
        # Unit of `earlier` relative to T_later must end before `later`.
        cut = _first_index_after(
            transactions[earlier.tx], schedule, schedule.position(later)
        )
        if cut is not None and cut > 0:
            cuts.setdefault((earlier.tx, later.tx), set()).add(cut)
        # Unit of `later` relative to T_earlier must start after
        # `earlier`.
        cut = _first_index_after(
            transactions[later.tx], schedule, schedule.position(earlier)
        )
        if cut is not None and cut > 0:
            cuts.setdefault((later.tx, earlier.tx), set()).add(cut)
    return cuts


def _first_index_after(
    transaction: Transaction, schedule: Schedule, position: int
) -> int | None:
    """First program index of ``transaction`` scheduled after ``position``
    (``None`` when the whole transaction precedes it)."""
    for index, op in enumerate(transaction):
        if schedule.position(op) > position:
            return index
    return None


def infer_spec(
    transactions: Sequence[Transaction],
    must_accept: Iterable[Schedule],
) -> RelativeAtomicitySpec:
    """A canonical minimal refinement accepting every given schedule.

    Starts from absolute atomicity and joins in exactly the breakpoints
    each desired schedule forces, placing each cut as late as the
    forcing dependency allows (the coarsest unit for that dependency).
    Every returned cut is justified by a dependency in one of the
    inputs; a strictly coarser accepting spec cannot exist, though
    *incomparable* ones can (a single earlier cut may serve several
    dependencies at once — optimal interval stabbing — at the price of
    splitting some unit earlier than necessary).

    Raises:
        InvalidScheduleError: when a schedule is not over
            ``transactions``.
    """
    by_id = as_transaction_map(list(transactions))
    combined: dict[tuple[int, int], set[int]] = {}
    for schedule in must_accept:
        if set(schedule.transactions) != set(by_id) or any(
            schedule.transactions[tx_id] != by_id[tx_id]
            for tx_id in by_id
        ):
            raise InvalidScheduleError(
                "schedule is not over the given transaction set"
            )
        for pair, cuts in required_breakpoints(schedule).items():
            combined.setdefault(pair, set()).update(cuts)
    return RelativeAtomicitySpec(list(transactions), combined)
