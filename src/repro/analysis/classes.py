"""Class census: count memberships over a set of schedules.

Powers the Figure 5 experiment (E5): enumerate (or sample) the schedules
over a transaction set and count how many land in each correctness class.
The census runs every polynomial test on every schedule and the
NP-complete relative-consistency test under a configurable budget, so the
full hierarchy can be tabulated on small instances.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.checkers import is_relatively_atomic, is_relatively_serial
from repro.core.consistent import SearchBudgetExceeded, is_relatively_consistent
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.serializability import is_conflict_serializable
from repro.core.transactions import Transaction
from repro.workloads.enumerate import rsg_interleavings, shared_prefix_rsgs

__all__ = ["ClassCensus", "census", "census_exhaustive"]


@dataclass
class ClassCensus:
    """Counts of schedules per class, over one schedule population.

    ``undecided_consistent`` counts schedules where the NP-complete
    relative-consistency search exceeded its budget.
    """

    total: int = 0
    serial: int = 0
    conflict_serializable: int = 0
    relatively_atomic: int = 0
    relatively_serial: int = 0
    relatively_consistent: int = 0
    relatively_serializable: int = 0
    undecided_consistent: int = 0
    #: Example schedules witnessing proper inclusions, keyed by a
    #: human-readable separation name.
    witnesses: dict[str, Schedule] = field(default_factory=dict)

    def rate(self, count: int) -> float:
        """``count`` as a fraction of the population."""
        return count / self.total if self.total else 0.0

    def merge(self, other: "ClassCensus") -> "ClassCensus":
        """Fold ``other`` (a census of a *later* population block) in.

        Counts add; witnesses keep the first-found schedule, which under
        an ordered reduce over contiguous blocks is exactly the witness
        the serial sweep would have recorded.  Returns ``self`` (the
        accumulator) for use as a fold step.
        """
        self.total += other.total
        self.serial += other.serial
        self.conflict_serializable += other.conflict_serializable
        self.relatively_atomic += other.relatively_atomic
        self.relatively_serial += other.relatively_serial
        self.relatively_consistent += other.relatively_consistent
        self.relatively_serializable += other.relatively_serializable
        self.undecided_consistent += other.undecided_consistent
        for name, schedule in other.witnesses.items():
            self.witnesses.setdefault(name, schedule)
        return self

    def as_rows(self) -> list[tuple[str, int, float]]:
        """(class, count, fraction) rows, largest class last."""
        pairs = [
            ("serial", self.serial),
            ("relatively atomic", self.relatively_atomic),
            ("relatively consistent", self.relatively_consistent),
            ("relatively serial", self.relatively_serial),
            ("conflict serializable", self.conflict_serializable),
            ("relatively serializable", self.relatively_serializable),
        ]
        return [(name, count, self.rate(count)) for name, count in pairs]


def census(
    schedules: Iterable[Schedule],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    shared_prefixes: bool = False,
    jobs: int = 1,
) -> ClassCensus:
    """Count class memberships over ``schedules``.

    Also records separation witnesses: the first schedule found in each
    of the interesting set differences (e.g. relatively serial but not
    relatively consistent — the Figure 4 phenomenon).

    With ``shared_prefixes=True`` the population is sorted and driven
    through one incremental RSG engine
    (:func:`~repro.workloads.enumerate.shared_prefix_rsgs`), so each
    schedule pays only for its delta against the previous one instead
    of a full closure-and-graph rebuild.  Counts are identical; which
    schedule becomes a witness may differ (first-found in sorted rather
    than input order).

    ``jobs > 1`` classifies the (sorted, prefix-shared) population in
    contiguous blocks across worker processes with an ordered merge —
    results are identical to ``shared_prefixes=True`` serially; see
    :func:`repro.parallel.census_schedules`.
    """
    if jobs != 1:
        from repro.parallel.sweeps import census_schedules

        return census_schedules(
            list(schedules), spec, consistency_budget, jobs=jobs
        )
    if shared_prefixes:
        ordered = sorted(schedules, key=_lex_key)
        pairs: Iterable[tuple[Schedule, RelativeSerializationGraph]] = (
            shared_prefix_rsgs(spec, ordered)
        )
    else:
        pairs = (
            (schedule, RelativeSerializationGraph(schedule, spec))
            for schedule in schedules
        )
    return _census_pairs(pairs, spec, consistency_budget)


def _lex_key(schedule: Schedule) -> tuple[tuple[int, int], ...]:
    """Sort key grouping schedules by common prefixes."""
    return tuple((op.tx, op.index) for op in schedule.operations)


def _census_pairs(
    pairs: Iterable[tuple[Schedule, RelativeSerializationGraph]],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None,
) -> ClassCensus:
    result = ClassCensus()
    for schedule, rsg in pairs:
        result.total += 1
        serial = schedule.is_serial
        atomic = is_relatively_atomic(schedule, spec)
        rel_serial = is_relatively_serial(schedule, spec, rsg.dependency)
        csr = is_conflict_serializable(schedule)
        rsr = rsg.is_acyclic
        consistent: bool | None
        if consistency_budget is None:
            consistent = None
        else:
            try:
                consistent = is_relatively_consistent(
                    schedule, spec, max_steps=consistency_budget
                )
            except SearchBudgetExceeded:
                consistent = None

        result.serial += serial
        result.conflict_serializable += csr
        result.relatively_atomic += atomic
        result.relatively_serial += rel_serial
        result.relatively_serializable += rsr
        if consistent is None:
            result.undecided_consistent += 1
        else:
            result.relatively_consistent += consistent

        _record_witness(result, "relatively serial, not relatively atomic",
                        rel_serial and not atomic, schedule)
        if consistent is not None:
            _record_witness(
                result, "relatively serial, not relatively consistent",
                rel_serial and not consistent, schedule)
            _record_witness(
                result, "relatively consistent, not relatively serial",
                consistent and not rel_serial, schedule)
            _record_witness(
                result, "relatively serializable, not relatively consistent",
                rsr and not consistent, schedule)
        _record_witness(result, "relatively serializable, not conflict serializable",
                        rsr and not csr, schedule)
        _record_witness(result, "relatively serializable, not relatively serial",
                        rsr and not rel_serial, schedule)
    return result


def _record_witness(
    result: ClassCensus, name: str, hit: bool, schedule: Schedule
) -> None:
    if hit and name not in result.witnesses:
        result.witnesses[name] = schedule


def census_exhaustive(
    transactions: Sequence[Transaction],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int = 1,
) -> ClassCensus:
    """Census over *every* schedule of the transaction set.

    Enumeration order is lexicographic, so consecutive schedules share
    long prefixes — the census rides one incremental RSG engine
    (:func:`~repro.workloads.enumerate.rsg_interleavings`) instead of
    rebuilding the graph per schedule.  Only sensible at small sizes;
    see :func:`repro.workloads.enumerate.count_interleavings` first.

    ``jobs > 1`` fans the schedule space out over worker processes in
    contiguous rank blocks (each worker seeds its own engine at its
    block start) and merges in block order — identical counts *and*
    witnesses; see :func:`repro.parallel.census_exhaustive_parallel`.
    """
    if jobs != 1:
        from repro.parallel.sweeps import census_exhaustive_parallel

        return census_exhaustive_parallel(
            transactions, spec, consistency_budget, jobs=jobs
        )
    return _census_pairs(
        rsg_interleavings(transactions, spec), spec, consistency_budget
    )
