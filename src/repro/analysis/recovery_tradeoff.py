"""Recovery cost of relaxed atomicity (experiment E13).

Relative atomicity buys concurrency by letting transactions observe each
other mid-flight; classical recovery theory prices that visibility.
This sweep measures, per atomic-unit granularity, what fraction of the
*accepted* (relatively serializable) schedules still satisfy each
recovery class — quantifying the paper's implicit trade-off and the
[SGMA87] discussion of early lock release.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.recovery import (
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
)
from repro.core.rsg import is_relatively_serializable
from repro.specs.builders import uniform_spec
from repro.workloads.random_schedules import random_schedules, random_transactions

__all__ = ["RecoveryRow", "recovery_tradeoff_sweep"]


@dataclass(frozen=True, slots=True)
class RecoveryRow:
    """One sweep point: recovery rates among the accepted schedules."""

    unit_size: int
    accepted: int
    samples: int
    recoverable: float
    aca: float
    strict: float

    @property
    def acceptance_rate(self) -> float:
        """Fraction of the population the RSG test accepted."""
        return self.accepted / self.samples if self.samples else 0.0


def recovery_tradeoff_sweep(
    n_transactions: int = 3,
    ops_per_transaction: int = 4,
    n_objects: int = 3,
    unit_sizes: Sequence[int] = (4, 2, 1),
    samples: int = 200,
    seed: int = 0,
) -> list[RecoveryRow]:
    """Recovery-class rates among RSG-accepted schedules, by granularity.

    The same random schedule population is classified at every
    granularity, so rows are directly comparable: as units shrink, the
    accepted set grows and the share of it that is strict/ACA/RC falls.
    """
    transactions = random_transactions(
        n_transactions,
        ops_per_transaction,
        n_objects,
        write_probability=0.5,
        seed=seed,
    )
    population = random_schedules(transactions, samples, seed=seed)
    rows = []
    for unit_size in unit_sizes:
        spec = uniform_spec(transactions, unit_size)
        accepted = [
            schedule
            for schedule in population
            if is_relatively_serializable(schedule, spec)
        ]
        count = len(accepted)
        rows.append(
            RecoveryRow(
                unit_size=unit_size,
                accepted=count,
                samples=samples,
                recoverable=(
                    sum(is_recoverable(s) for s in accepted) / count
                    if count
                    else 0.0
                ),
                aca=(
                    sum(avoids_cascading_aborts(s) for s in accepted) / count
                    if count
                    else 0.0
                ),
                strict=(
                    sum(is_strict(s) for s in accepted) / count
                    if count
                    else 0.0
                ),
            )
        )
    return rows
