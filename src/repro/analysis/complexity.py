"""Runtime scaling: polynomial RSG test vs. the NP-complete baseline (E8).

The paper's central complexity claim: recognizing relatively consistent
schedules is NP-complete [KB92], while RSG acyclicity recognizes the
*larger* relatively serializable class in polynomial time.  This sweep
times both recognizers on the same growing instances — adversarial ones
built so the backtracking search must explore many orderings — and
reports the per-size medians.  The shape to reproduce: near-polynomial
growth for the RSG column, explosive growth (or budget exhaustion) for
the RC column.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.consistent import (
    SearchBudgetExceeded,
    find_equivalent_relatively_atomic,
)
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.core.operations import read, write
from repro.specs.builders import uniform_spec
from repro.workloads.random_schedules import random_interleaving

__all__ = ["ComplexityRow", "complexity_sweep", "adversarial_instance"]


@dataclass(frozen=True, slots=True)
class ComplexityRow:
    """One sweep point.

    ``rc_seconds`` is ``None`` when every trial exhausted its budget;
    ``rc_budget_exhausted`` counts such trials.
    """

    n_transactions: int
    n_operations: int
    rsg_seconds: float
    rc_seconds: float | None
    rc_budget_exhausted: int
    trials: int


def adversarial_instance(
    n_transactions: int, seed: int = 0
) -> tuple[list[Transaction], Schedule]:
    """An instance family that stresses the relative-consistency search.

    Each transaction writes a private object, then a shared object, then
    its private object again; the shared object serializes everyone while
    the private bookends keep many interleavings conflict-equivalent, so
    the backtracking search faces a large extension space.
    """
    transactions = []
    for tx_id in range(1, n_transactions + 1):
        private = f"p{tx_id}"
        transactions.append(
            Transaction(
                tx_id,
                [
                    read(private),
                    write("shared"),
                    read("shared"),
                    write(private),
                ],
            )
        )
    schedule = random_interleaving(transactions, seed=seed)
    return transactions, schedule


def complexity_sweep(
    sizes: Sequence[int] = (2, 3, 4, 5, 6),
    trials: int = 3,
    rc_budget: int = 500_000,
    unit_size: int = 2,
) -> list[ComplexityRow]:
    """Time both recognizers across instance sizes.

    Args:
        sizes: transaction counts to sweep.
        trials: instances per size (different seeds); medians reported.
        rc_budget: step budget for the relative-consistency search.
        unit_size: granularity of the uniform spec used for both tests.
    """
    rows = []
    for size in sizes:
        rsg_times: list[float] = []
        rc_times: list[float] = []
        exhausted = 0
        for trial in range(trials):
            transactions, schedule = adversarial_instance(size, seed=trial)
            spec = uniform_spec(transactions, unit_size)

            start = time.perf_counter()
            RelativeSerializationGraph(schedule, spec).is_acyclic
            rsg_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            try:
                find_equivalent_relatively_atomic(
                    schedule, spec, max_steps=rc_budget
                )
                rc_times.append(time.perf_counter() - start)
            except SearchBudgetExceeded:
                exhausted += 1
        rows.append(
            ComplexityRow(
                n_transactions=size,
                n_operations=size * 4,
                rsg_seconds=statistics.median(rsg_times),
                rc_seconds=(
                    statistics.median(rc_times) if rc_times else None
                ),
                rc_budget_exhausted=exhausted,
                trials=trials,
            )
        )
    return rows
