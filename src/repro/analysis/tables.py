"""Fixed-width ASCII tables.

The benchmark harness prints the rows each experiment reproduces;
:func:`format_table` keeps that output aligned and diff-friendly without
pulling in a formatting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _render_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are shown with four significant digits, booleans as yes/no,
    and ``None`` as ``-``.  Numeric-looking columns are right-aligned.
    """
    rendered = [[_render_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in rendered:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )

    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _is_numeric(column: int) -> bool:
        cells = [row[column] for row in rendered if row[column] != "-"]
        if not cells:
            return False
        return all(
            cell.replace(".", "", 1)
            .replace("-", "", 1)
            .replace("e", "", 1)
            .replace("+", "", 1)
            .isdigit()
            for cell in cells
        )

    numeric = [_is_numeric(index) for index in range(columns)]

    def _format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(_format_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(_format_row(row) for row in rendered)
    return "\n".join(lines)
