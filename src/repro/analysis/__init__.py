"""Analysis toolkit: experiments over schedule classes and protocols.

* :mod:`~repro.analysis.classes` — class census over schedule sets
  (exhaustive or sampled);
* :mod:`~repro.analysis.containment` — machine-check the Figure 5
  containments and find proper-inclusion witnesses;
* :mod:`~repro.analysis.acceptance` — acceptance-rate sweeps (E9);
* :mod:`~repro.analysis.inference` — infer the minimal relaxation that
  legalizes a set of desired interleavings;
* :mod:`~repro.analysis.complexity` — RSG vs. NP-complete baseline
  runtime scaling (E8);
* :mod:`~repro.analysis.protocol_comparison` — protocol benchmark driver
  (E10);
* :mod:`~repro.analysis.recovery_tradeoff` — recovery cost of relaxation
  (E13);
* :mod:`~repro.analysis.tables` — fixed-width ASCII tables for the
  benchmark harness output.
"""

from repro.analysis.acceptance import AcceptanceRow, acceptance_sweep
from repro.analysis.classes import ClassCensus, census
from repro.analysis.complexity import ComplexityRow, complexity_sweep
from repro.analysis.containment import ContainmentReport, check_containments
from repro.analysis.inference import infer_spec, required_breakpoints
from repro.analysis.protocol_comparison import ProtocolRow, compare_protocols
from repro.analysis.recovery_tradeoff import RecoveryRow, recovery_tradeoff_sweep
from repro.analysis.tables import format_table

__all__ = [
    "ClassCensus",
    "census",
    "ContainmentReport",
    "check_containments",
    "infer_spec",
    "required_breakpoints",
    "AcceptanceRow",
    "acceptance_sweep",
    "ComplexityRow",
    "complexity_sweep",
    "ProtocolRow",
    "compare_protocols",
    "RecoveryRow",
    "recovery_tradeoff_sweep",
    "format_table",
]
