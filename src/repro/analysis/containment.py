"""Machine-check the Figure 5 containment structure.

Figure 5 draws::

    relatively atomic  ⊆  relatively consistent  ⊆  relatively serializable
    relatively atomic  ⊆  relatively serial      ⊆  relatively serializable

with both inclusions into *relatively serializable* proper (the paper
exhibits Figure 4 for RS ⊄ RC).  :func:`check_containments` verifies the
subset relations on a schedule population and collects witnesses for
every proper inclusion it can observe — any containment violation is a
bug in the implementation (or the theory!), and the tests assert there
are none.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.checkers import is_relatively_atomic, is_relatively_serial
from repro.core.consistent import SearchBudgetExceeded, is_relatively_consistent
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.serializability import is_conflict_serializable

__all__ = ["ContainmentReport", "check_containments"]

#: The subset relations implied by the paper (names match ClassCensus).
EXPECTED_CONTAINMENTS: tuple[tuple[str, str], ...] = (
    ("serial", "relatively serial"),
    ("serial", "conflict serializable"),
    ("relatively atomic", "relatively serial"),
    ("relatively atomic", "relatively consistent"),
    ("relatively serial", "relatively serializable"),
    ("relatively consistent", "relatively serializable"),
    ("conflict serializable", "relatively serializable"),
)


@dataclass
class ContainmentReport:
    """Result of checking the Figure 5 containments on a population.

    Attributes:
        checked: schedules examined.
        violations: ``(smaller class, larger class, schedule)`` triples
            where a schedule was in the smaller class but not the larger —
            must be empty.
        proper_witnesses: for each ``(smaller, larger)`` pair, a schedule
            in the larger class but not the smaller (evidence the
            inclusion is proper on this population), when one exists.
        undecided: schedules whose relative-consistency test ran out of
            budget (excluded from RC-involving checks).
    """

    checked: int = 0
    violations: list[tuple[str, str, Schedule]] = field(default_factory=list)
    proper_witnesses: dict[tuple[str, str], Schedule] = field(
        default_factory=dict
    )
    undecided: int = 0

    @property
    def ok(self) -> bool:
        """Whether every expected containment held."""
        return not self.violations

    def merge(self, other: "ContainmentReport") -> "ContainmentReport":
        """Fold in the report of a *later* population block (ordered
        reduce): counts add, violations concatenate in visit order, and
        proper-inclusion witnesses keep the first-found schedule."""
        self.checked += other.checked
        self.undecided += other.undecided
        self.violations.extend(other.violations)
        for pair, schedule in other.proper_witnesses.items():
            self.proper_witnesses.setdefault(pair, schedule)
        return self


def check_containments(
    schedules: Iterable[Schedule],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    shared_prefixes: bool = False,
    jobs: int = 1,
) -> ContainmentReport:
    """Check every expected containment over ``schedules``.

    ``shared_prefixes=True`` sorts the population and classifies it
    through one incremental RSG engine (schedules pay for their delta
    against the previous one, not a per-schedule rebuild); violations
    and witnesses are found on the same population, just visited in
    sorted order.

    ``jobs > 1`` checks the sorted population in contiguous blocks
    across worker processes with an ordered merge — identical to the
    ``shared_prefixes=True`` serial report; see
    :func:`repro.parallel.check_containments_parallel`.
    """
    if jobs != 1:
        from repro.parallel.sweeps import check_containments_parallel

        return check_containments_parallel(
            list(schedules), spec, consistency_budget, jobs=jobs
        )
    if shared_prefixes:
        from repro.workloads.enumerate import shared_prefix_rsgs

        from repro.analysis.classes import _lex_key

        ordered = sorted(schedules, key=_lex_key)
        pairs: Iterable[tuple[Schedule, RelativeSerializationGraph]] = (
            shared_prefix_rsgs(spec, ordered)
        )
    else:
        pairs = (
            (schedule, RelativeSerializationGraph(schedule, spec))
            for schedule in schedules
        )
    return _containment_pairs(pairs, spec, consistency_budget)


def _containment_pairs(
    pairs: Iterable[tuple[Schedule, RelativeSerializationGraph]],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None,
) -> ContainmentReport:
    """Check the containments over prepared ``(schedule, rsg)`` pairs.

    The inner loop of :func:`check_containments`, split out so the
    parallel sweep workers can drive it with a warm per-process engine
    (see :mod:`repro.parallel.sweeps`).
    """
    report = ContainmentReport()
    for schedule, rsg in pairs:
        report.checked += 1
        membership: dict[str, bool | None] = {
            "serial": schedule.is_serial,
            "conflict serializable": is_conflict_serializable(schedule),
            "relatively atomic": is_relatively_atomic(schedule, spec),
            "relatively serial": is_relatively_serial(
                schedule, spec, rsg.dependency
            ),
            "relatively serializable": rsg.is_acyclic,
        }
        if consistency_budget is None:
            membership["relatively consistent"] = None
        else:
            try:
                membership["relatively consistent"] = is_relatively_consistent(
                    schedule, spec, max_steps=consistency_budget
                )
            except SearchBudgetExceeded:
                membership["relatively consistent"] = None
        if membership["relatively consistent"] is None:
            report.undecided += 1

        for smaller, larger in EXPECTED_CONTAINMENTS:
            small = membership[smaller]
            large = membership[larger]
            if small is None or large is None:
                continue
            if small and not large:
                report.violations.append((smaller, larger, schedule))
            if large and not small:
                report.proper_witnesses.setdefault(
                    (smaller, larger), schedule
                )
    return report
