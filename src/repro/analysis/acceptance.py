"""Acceptance-rate sweeps (experiment E9).

The paper's motivation is that relaxing atomicity "improves concurrency
and allows interleavings among transactions which are non-serializable".
This experiment quantifies that: over random schedule populations, the
fraction accepted by each correctness test as a function of atomic-unit
granularity (from absolute, where RSR == CSR by Lemma 1, down to the
finest units).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.classes import ClassCensus, census
from repro.core.transactions import Transaction
from repro.specs.builders import uniform_spec
from repro.workloads.random_schedules import random_schedules, random_transactions

__all__ = ["AcceptanceRow", "acceptance_sweep", "acceptance_for_spec"]


@dataclass(frozen=True, slots=True)
class AcceptanceRow:
    """One sweep point: acceptance rates at a given unit granularity."""

    unit_size: int
    samples: int
    conflict_serializable: float
    relatively_atomic: float
    relatively_serial: float
    relatively_consistent: float
    relatively_serializable: float

    def as_cells(self) -> tuple[object, ...]:
        """The row in table order."""
        return (
            self.unit_size,
            self.samples,
            self.conflict_serializable,
            self.relatively_atomic,
            self.relatively_consistent,
            self.relatively_serial,
            self.relatively_serializable,
        )


def acceptance_for_spec(
    transactions: Sequence[Transaction],
    spec,
    samples: int,
    seed: int = 0,
    consistency_budget: int | None = 100_000,
    jobs: int | None = 1,
) -> ClassCensus:
    """Census over ``samples`` uniform random schedules under ``spec``.

    The population is classified with prefix sharing (sorted, one
    incremental RSG engine) — counts are order-independent, so the
    result matches a plain per-schedule census.  ``jobs > 1`` splits
    the sorted population over worker processes (identical result; see
    :mod:`repro.parallel`).
    """
    rng = random.Random(seed)
    population = random_schedules(transactions, samples, rng)
    return census(
        population, spec, consistency_budget, shared_prefixes=True, jobs=jobs
    )


def acceptance_sweep(
    n_transactions: int = 3,
    ops_per_transaction: int = 4,
    n_objects: int = 3,
    unit_sizes: Sequence[int] = (4, 3, 2, 1),
    samples: int = 200,
    seed: int = 0,
    consistency_budget: int | None = 100_000,
    jobs: int | None = 1,
) -> list[AcceptanceRow]:
    """Acceptance rates by unit granularity.

    One random transaction set is drawn, then for each ``unit_size`` a
    uniform spec is built (``unit_size >= ops_per_transaction`` is the
    absolute/traditional model; ``1`` the finest) and the *same* random
    schedule population is classified under it — so rates across rows are
    directly comparable (and monotone in the unit granularity).

    ``jobs > 1`` classifies each row's population across worker
    processes (sorted contiguous blocks, ordered merge) — rows are
    identical to the serial sweep.
    """
    transactions = random_transactions(
        n_transactions,
        ops_per_transaction,
        n_objects,
        write_probability=0.5,
        seed=seed,
    )
    population = random_schedules(transactions, samples, seed=seed)
    rows = []
    for unit_size in unit_sizes:
        spec = uniform_spec(transactions, unit_size)
        result = census(
            population,
            spec,
            consistency_budget,
            shared_prefixes=True,
            jobs=jobs,
        )
        decided = result.total - result.undecided_consistent
        rows.append(
            AcceptanceRow(
                unit_size=unit_size,
                samples=result.total,
                conflict_serializable=result.rate(
                    result.conflict_serializable
                ),
                relatively_atomic=result.rate(result.relatively_atomic),
                relatively_serial=result.rate(result.relatively_serial),
                relatively_consistent=(
                    result.relatively_consistent / decided if decided else 0.0
                ),
                relatively_serializable=result.rate(
                    result.relatively_serializable
                ),
            )
        )
    return rows
