"""Protocol comparison driver (experiment E10).

Runs a workload bundle through each protocol over several seeds and
aggregates throughput / response-time / restart statistics, verifying
every committed history offline (2PL, SGT, and altruistic must be
conflict serializable; RSGT must be relatively serializable under the
workload's spec).  The shape to reproduce, per the paper's Section 5
discussion: on long-lived mixes, protocols that exploit relative
atomicity (RSGT; altruistic to a lesser degree) beat strict 2PL on short-
transaction response time and overall makespan.
"""

from __future__ import annotations

import statistics
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.rsg import is_relatively_serializable
from repro.core.serializability import is_conflict_serializable
from repro.protocols import (
    AltruisticLockingScheduler,
    RelativeLockingScheduler,
    RSGTScheduler,
    SGTScheduler,
    Scheduler,
    TwoPhaseLockingScheduler,
)
from repro.workloads.base import WorkloadBundle

__all__ = ["ProtocolRow", "compare_protocols", "default_protocols"]


@dataclass(frozen=True, slots=True)
class ProtocolRow:
    """Aggregated results of one protocol over all seeds of a workload."""

    protocol: str
    runs: int
    mean_makespan: float
    mean_throughput: float
    mean_response: float
    mean_short_response: float | None
    total_restarts: int
    total_waits: int
    all_correct: bool


def default_protocols(
    bundle: WorkloadBundle,
) -> list[tuple[str, Callable[[], Scheduler]]]:
    """The five protocols of experiment E10 for one workload."""
    return [
        ("strict-2pl", TwoPhaseLockingScheduler),
        ("sgt", SGTScheduler),
        ("altruistic", AltruisticLockingScheduler),
        ("rel-locking", lambda: RelativeLockingScheduler(bundle.spec)),
        ("rsgt", lambda: RSGTScheduler(bundle.spec)),
    ]


def compare_protocols(
    make_bundle: Callable[[int], WorkloadBundle],
    seeds: Sequence[int] = tuple(range(5)),
    backoff: int = 2,
    short_role: str = "short",
    jobs: int | None = 1,
) -> list[ProtocolRow]:
    """Run every protocol over every seed of a workload family.

    Args:
        make_bundle: seed -> workload bundle (a fresh bundle per seed so
            transaction programs vary).
        seeds: the seeds to run.
        backoff: restart backoff passed to the simulator.
        short_role: role whose response time is reported separately
            (``None`` row cell when the role is absent).
        jobs: worker processes for the independent simulation runs
            (``1`` = inline).  Bundles are built in the parent (cheap,
            and ``make_bundle`` may be a closure); only the materialized
            per-run tasks cross process boundaries, so rows are
            identical at any job count.
    """
    from repro.sim.batch import SimulationTask, simulate_batch

    per_protocol: dict[str, list] = {}
    correctness: dict[str, bool] = {}

    tasks = []
    specs = []
    for seed in seeds:
        bundle = make_bundle(seed)
        for name, _factory in default_protocols(bundle):
            tasks.append(
                SimulationTask(
                    transactions=tuple(bundle.transactions),
                    protocol=name,
                    spec=bundle.spec,
                    backoff=backoff,
                    roles=dict(bundle.roles),
                    tag=(seed, name),
                )
            )
            specs.append(bundle.spec)

    for task, spec, result in zip(
        tasks, specs, simulate_batch(tasks, jobs=jobs)
    ):
        name = task.protocol
        if result is None:  # SimulationError in that run
            correctness[name] = False
            continue
        if name in ("rsgt", "rel-locking"):
            ok = is_relatively_serializable(result.schedule, spec)
        else:
            ok = is_conflict_serializable(result.schedule)
        correctness[name] = correctness.get(name, True) and ok
        per_protocol.setdefault(name, []).append(result)

    rows = []
    for name, results in per_protocol.items():
        short_means = [
            value
            for value in (
                result.mean_response_time_of(short_role) for result in results
            )
            if value is not None
        ]
        rows.append(
            ProtocolRow(
                protocol=name,
                runs=len(results),
                mean_makespan=statistics.mean(
                    result.makespan for result in results
                ),
                mean_throughput=statistics.mean(
                    result.throughput for result in results
                ),
                mean_response=statistics.mean(
                    result.mean_response_time for result in results
                ),
                mean_short_response=(
                    statistics.mean(short_means) if short_means else None
                ),
                total_restarts=sum(
                    result.total_restarts for result in results
                ),
                total_waits=sum(result.total_waits for result in results),
                all_correct=correctness.get(name, False),
            )
        )
    return rows
