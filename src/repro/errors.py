"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause,
while still being able to distinguish model errors (bad transactions or
schedules), specification errors (invalid relative atomicity specs), and
parse errors (malformed textual notation).

Every exception in this hierarchy pickles losslessly.  Exceptions cross
process boundaries when a :class:`~repro.parallel.ParallelExecutor`
worker raises, and the default ``Exception`` reduction only replays
``self.args`` — an exception whose constructor takes extra payload
(``CycleError.cycle``, ``LivelockError.waiting``) would silently drop it
on the way back to the parent.  Exceptions with extra constructor
arguments therefore define ``__reduce__`` so the payload round-trips.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "InvalidTransactionError",
    "InvalidScheduleError",
    "SpecError",
    "InvalidSpecError",
    "MissingSpecError",
    "NotationError",
    "GraphError",
    "CycleError",
    "EngineError",
    "TransactionAborted",
    "CrashedStoreError",
    "ProtocolError",
    "SimulationError",
    "LivelockError",
    "ParallelExecutionError",
    "FaultError",
    "FaultPlanError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Base class for errors in the transaction/schedule model."""


class InvalidTransactionError(ModelError):
    """A transaction violates a structural constraint.

    Examples: empty operation sequence, operations with mismatched
    transaction ids, or duplicate operation indices.
    """


class InvalidScheduleError(ModelError):
    """A schedule violates a structural constraint.

    Examples: missing or duplicated operations, or operations of one
    transaction appearing out of program order (the paper assumes totally
    ordered transactions and schedules, footnote 2).
    """


class SpecError(ReproError):
    """Base class for relative atomicity specification errors."""


class InvalidSpecError(SpecError):
    """A relative atomicity specification is structurally invalid.

    Examples: a breakpoint position outside ``1..len(T)-1``, a unit
    partition that does not cover the transaction, or a spec keyed by a
    transaction pair that does not exist in the transaction set.
    """


class MissingSpecError(SpecError):
    """A required ``Atomicity(Ti, Tj)`` entry is absent from a spec set."""


class NotationError(ReproError):
    """Malformed textual notation (``r1[x]`` operations, spec strings, …)."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class CycleError(GraphError):
    """An operation that requires acyclicity was given a cyclic graph.

    Carries the offending cycle (a list of nodes) in :attr:`cycle` when it
    is known.
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle

    def __reduce__(self):
        return (type(self), (self.args[0], self.cycle))


class EngineError(ReproError):
    """Base class for execution-engine errors (key-value store, executor)."""


class TransactionAborted(EngineError):
    """Raised/recorded when the engine aborts a transaction."""


class CrashedStoreError(EngineError):
    """An operation was attempted on a crashed :class:`~repro.engine.
    kvstore.KVStore` before :meth:`~repro.engine.kvstore.KVStore.recover`
    was called."""


class ProtocolError(ReproError):
    """A concurrency-control protocol was driven incorrectly.

    Examples: submitting an operation for a transaction that was never
    admitted, or submitting operations out of program order.
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistent state."""


class LivelockError(SimulationError):
    """The simulator detected an all-WAIT stall (no request granted for
    too many consecutive ticks).

    Carries the ids of the transactions that were waiting when the guard
    fired in :attr:`waiting`, plus the scheduler's waits-for edges at
    that moment in :attr:`blocking` (waiter id -> ascending blocker ids,
    empty for protocols that never block), so the diagnostic names both
    sides of the suspected wait cycle instead of just "it hung".
    """

    def __init__(
        self,
        message: str,
        waiting: tuple[int, ...] = (),
        blocking: dict[int, tuple[int, ...]] | None = None,
    ) -> None:
        super().__init__(message)
        self.waiting = tuple(waiting)
        self.blocking = dict(blocking or {})

    def __reduce__(self):
        return (type(self), (self.args[0], self.waiting, self.blocking))


class ParallelExecutionError(ReproError):
    """A parallel sweep could not complete.

    Raised when a worker process dies without reporting a result (hard
    crash, out-of-memory kill, broken pool) more times than the
    executor's retry budget allows; exceptions *raised* by worker code
    propagate unchanged instead.
    """


class FaultError(ReproError):
    """Base class for errors raised by the fault-injection subsystem."""


class FaultPlanError(FaultError):
    """A fault plan is structurally invalid.

    Examples: a trigger count below 1, a stall with non-positive
    duration, a per-transaction fault without a transaction id, or a
    crash event carrying one.
    """
