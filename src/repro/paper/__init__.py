"""Fixtures reproducing the paper's figures verbatim.

Every transaction set, relative atomicity specification, and schedule
printed in the paper (Figures 1-4 and the Section 2/3 example schedules)
is available here as a constructed object, so tests, examples, and
benchmarks all exercise *exactly* the published instances.
"""

from repro.paper.figures import (
    Figure,
    figure1,
    figure2,
    figure3,
    figure4,
)

__all__ = ["Figure", "figure1", "figure2", "figure3", "figure4"]
