"""The paper's worked examples, transcribed exactly.

Each ``figure*()`` function returns a :class:`Figure` bundling the
transaction set, the relative atomicity specification, and the schedules
the paper discusses for that figure, keyed by the paper's names
(``"Sra"``, ``"Srs"``, ``"S1"``, ``"S2"``, ``"S"``).

Sources (PODS 1994 paper):

* **Figure 1** — three transactions with full relative atomicity
  specifications; Section 2 discusses three schedules over them:
  ``Sra`` (relatively atomic), ``Srs`` (relatively serial), and ``S2``
  (relatively serializable but not relatively serial).
* **Figure 2** — the example showing direct conflicts are not sufficient:
  ``S1`` must be rejected because ``r1[z]`` *transitively* depends on
  ``w2[y]`` through ``T3``.
* **Figure 3** — the worked relative serialization graph for
  ``S2 = w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]``; the expected arcs (with
  their I/D/F/B labels) are exported as :data:`FIGURE3_EXPECTED_ARCS`.
* **Figure 4** — a relatively serial schedule that is *not* relatively
  consistent, witnessing the proper containment of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction

__all__ = [
    "Figure",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "FIGURE3_EXPECTED_ARCS",
]


@dataclass(frozen=True)
class Figure:
    """One of the paper's examples: transactions, spec, named schedules."""

    name: str
    transactions: tuple[Transaction, ...]
    spec: RelativeAtomicitySpec
    schedules: dict[str, Schedule] = field(default_factory=dict)

    def schedule(self, key: str) -> Schedule:
        """The schedule the paper calls ``key`` (e.g. ``"Sra"``)."""
        return self.schedules[key]


def figure1() -> Figure:
    """Figure 1 plus the Section 2 example schedules ``Sra``/``Srs``/``S2``."""
    t1 = Transaction.from_notation(1, "r[x] w[x] w[z] r[y]")
    t2 = Transaction.from_notation(2, "r[y] w[y] r[x]")
    t3 = Transaction.from_notation(3, "w[x] w[y] w[z]")
    transactions = (t1, t2, t3)
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 2): "r[x] w[x] | w[z] r[y]",
            (1, 3): "r[x] w[x] | w[z] | r[y]",
            (2, 1): "r[y] | w[y] r[x]",
            (2, 3): "r[y] w[y] | r[x]",
            (3, 1): "w[x] w[y] | w[z]",
            (3, 2): "w[x] w[y] | w[z]",
        },
    )
    schedules = {
        # "it is correct with respect to the relative atomicity
        # specifications" — relatively atomic.
        "Sra": Schedule.from_notation(
            transactions,
            "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]",
        ),
        # "Hence, Srs is relatively serial."
        "Srs": Schedule.from_notation(
            transactions,
            "r1[x] r2[y] w1[x] w2[y] w3[x] w1[z] w3[y] r2[x] r1[y] w3[z]",
        ),
        # "S2 ... is not relatively serial ... However, S2 is relatively
        # serializable since it is conflict equivalent to Srs."
        "S2": Schedule.from_notation(
            transactions,
            "r1[x] r2[y] w2[y] w1[x] w3[x] r2[x] w1[z] w3[y] r1[y] w3[z]",
        ),
    }
    return Figure("Figure 1", transactions, spec, schedules)


def figure2() -> Figure:
    """Figure 2: direct conflicts are not sufficient for correctness."""
    t1 = Transaction.from_notation(1, "w[x] r[z]")
    t2 = Transaction.from_notation(2, "w[y]")
    t3 = Transaction.from_notation(3, "r[y] w[z]")
    transactions = (t1, t2, t3)
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 2): "w[x] r[z]",
            (1, 3): "w[x] | r[z]",
            (2, 1): "w[y]",
            (2, 3): "w[y]",
            (3, 1): "r[y] | w[z]",
            (3, 2): "r[y] | w[z]",
        },
    )
    schedules = {
        # "S1 is not a correct schedule" (not relatively serial) because
        # r1[z] transitively depends on w2[y] via T3.
        "S1": Schedule.from_notation(
            transactions, "w1[x] w2[y] r3[y] w3[z] r1[z]"
        ),
    }
    return Figure("Figure 2", transactions, spec, schedules)


def figure3() -> Figure:
    """Figure 3: the worked relative serialization graph example."""
    t1 = Transaction.from_notation(1, "w[x] r[z]")
    t2 = Transaction.from_notation(2, "r[x] w[y]")
    t3 = Transaction.from_notation(3, "r[z] r[y]")
    transactions = (t1, t2, t3)
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 3): "w[x] | r[z]",
            (1, 2): "w[x] r[z]",
            (2, 3): "r[x] | w[y]",
            (2, 1): "r[x] | w[y]",
            (3, 1): "r[z] | r[y]",
            (3, 2): "r[z] r[y]",
        },
    )
    schedules = {
        "S2": Schedule.from_notation(
            transactions, "w1[x] r2[x] r3[z] w2[y] r3[y] r1[z]"
        ),
    }
    return Figure("Figure 3", transactions, spec, schedules)


#: The arc set of Figure 3's drawing: ``(source, target)`` labels mapped to
#: the set of arc-kind letters shown in the figure.  Keys use the paper's
#: operation labels; the RSG test resolves them against the schedule.
FIGURE3_EXPECTED_ARCS: dict[tuple[str, str], frozenset[str]] = {
    ("w1[x]", "r1[z]"): frozenset("I"),
    ("r2[x]", "w2[y]"): frozenset("I"),
    ("r3[z]", "r3[y]"): frozenset("I"),
    ("w1[x]", "r2[x]"): frozenset("DB"),
    ("w1[x]", "w2[y]"): frozenset("DB"),
    ("w1[x]", "r3[y]"): frozenset("DFB"),
    ("r2[x]", "r3[y]"): frozenset("DF"),
    ("w2[y]", "r3[y]"): frozenset("DF"),
    ("r1[z]", "r2[x]"): frozenset("F"),
    ("r1[z]", "w2[y]"): frozenset("F"),
    ("r2[x]", "r3[z]"): frozenset("B"),
    ("w2[y]", "r3[z]"): frozenset("B"),
}


def figure4() -> Figure:
    """Figure 4: a relatively serial schedule that is not relatively
    consistent (the RSR ⊋ RC separation witness)."""
    t1 = Transaction.from_notation(1, "w[x] w[y]")
    t2 = Transaction.from_notation(2, "w[z] w[y]")
    t3 = Transaction.from_notation(3, "w[t] w[z]")
    t4 = Transaction.from_notation(4, "w[x] w[t]")
    transactions = (t1, t2, t3, t4)
    spec = RelativeAtomicitySpec(
        transactions,
        {
            (1, 2): "w[x] w[y]",
            (1, 3): "w[x] w[y]",
            (1, 4): "w[x] w[y]",
            (2, 1): "w[z] w[y]",
            (2, 3): "w[z] w[y]",
            (2, 4): "w[z] | w[y]",
            (3, 1): "w[t] w[z]",
            (3, 2): "w[t] | w[z]",
            (3, 4): "w[t] | w[z]",
            (4, 1): "w[x] w[t]",
            (4, 2): "w[x] | w[t]",
            (4, 3): "w[x] | w[t]",
        },
    )
    schedules = {
        "S": Schedule.from_notation(
            transactions, "w4[x] w3[t] w4[t] w1[x] w1[y] w2[z] w2[y] w3[z]"
        ),
    }
    return Figure("Figure 4", transactions, spec, schedules)
