"""JSON (de)serialization of the model objects.

The JSON shapes are deliberately plain dictionaries (no custom encoder
classes) so problems can be stored, diffed, and shipped between tools::

    {
      "transactions": [{"id": 1, "ops": ["r[x]", "w[x]"]}, ...],
      "atomicity": [{"tx": 1, "observer": 2, "breakpoints": [2]}, ...],
      "schedules": {"Sra": ["r2[y]", "r1[x]", ...]}
    }

Operations serialize to their notation labels; schedules to ordered label
lists, resolved against the transaction set on load (identical to the
textual format's semantics).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import NotationError
from repro.io.notation import Problem

__all__ = [
    "transaction_to_json",
    "transaction_from_json",
    "spec_to_json",
    "spec_from_json",
    "schedule_to_json",
    "schedule_from_json",
    "problem_to_json",
    "problem_from_json",
]


def transaction_to_json(transaction: Transaction) -> dict[str, Any]:
    """``{"id": 1, "ops": ["r[x]", "w[x]", ...]}``."""
    return {
        "id": transaction.tx_id,
        "ops": [f"{op.op_type.value}[{op.obj}]" for op in transaction],
    }


def transaction_from_json(data: Mapping[str, Any]) -> Transaction:
    """Inverse of :func:`transaction_to_json`."""
    try:
        return Transaction(int(data["id"]), list(data["ops"]))
    except KeyError as exc:
        raise NotationError(f"transaction JSON missing key {exc}") from exc


def spec_to_json(spec: RelativeAtomicitySpec) -> list[dict[str, Any]]:
    """Non-absolute views as ``{"tx", "observer", "breakpoints"}`` rows."""
    rows = []
    for tx, observer in spec.pairs():
        view = spec.atomicity(tx, observer)
        if view.is_absolute:
            continue
        rows.append(
            {
                "tx": tx,
                "observer": observer,
                "breakpoints": sorted(view.breakpoints),
            }
        )
    return rows


def spec_from_json(
    transactions: Sequence[Transaction], rows: Sequence[Mapping[str, Any]]
) -> RelativeAtomicitySpec:
    """Inverse of :func:`spec_to_json` (absent pairs default to absolute)."""
    views = {}
    for row in rows:
        try:
            views[(int(row["tx"]), int(row["observer"]))] = [
                int(cut) for cut in row["breakpoints"]
            ]
        except KeyError as exc:
            raise NotationError(f"spec JSON row missing key {exc}") from exc
    return RelativeAtomicitySpec(transactions, views)


def schedule_to_json(schedule: Schedule) -> list[str]:
    """The schedule as an ordered list of operation labels."""
    return [op.label for op in schedule]


def schedule_from_json(
    transactions: Sequence[Transaction], labels: Sequence[str]
) -> Schedule:
    """Inverse of :func:`schedule_to_json`."""
    return Schedule.from_notation(transactions, " ".join(labels))


def problem_to_json(problem: Problem) -> dict[str, Any]:
    """A whole problem as one JSON-ready dictionary."""
    return {
        "transactions": [
            transaction_to_json(transaction)
            for transaction in problem.transactions
        ],
        "atomicity": spec_to_json(problem.spec),
        "schedules": {
            name: schedule_to_json(schedule)
            for name, schedule in problem.schedules.items()
        },
    }


def problem_from_json(data: Mapping[str, Any]) -> Problem:
    """Inverse of :func:`problem_to_json`."""
    try:
        transactions = [
            transaction_from_json(row) for row in data["transactions"]
        ]
    except KeyError as exc:
        raise NotationError(f"problem JSON missing key {exc}") from exc
    spec = spec_from_json(transactions, data.get("atomicity", ()))
    schedules = {
        name: schedule_from_json(transactions, labels)
        for name, labels in data.get("schedules", {}).items()
    }
    return Problem(transactions, spec, schedules)
