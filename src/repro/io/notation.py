"""A line-oriented problem format in the paper's notation.

A *problem file* declares a transaction set, its relative atomicity
specification, and any number of named schedules::

    # Figure 1 of the paper
    T1: r[x] w[x] w[z] r[y]
    T2: r[y] w[y] r[x]
    T3: w[x] w[y] w[z]

    atomicity T1/T2: r[x] w[x] | w[z] r[y]
    atomicity T1/T3: r[x] w[x] | w[z] | r[y]
    atomicity T2/T1: r[y] | w[y] r[x]
    atomicity T2/T3: r[y] w[y] | r[x]
    atomicity T3/T1: w[x] w[y] | w[z]
    atomicity T3/T2: w[x] w[y] | w[z]

    schedule Sra: r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] w3[x] w3[y] r1[y] w3[z]

Lines starting with ``#`` and blank lines are ignored.  ``atomicity``
lines use ``|`` as the unit separator (the paper's boxes); omitted pairs
default to absolute atomicity.  The CLI and the examples read this
format, and :func:`render_problem` writes it back out.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import NotationError

__all__ = ["Problem", "parse_problem", "render_problem"]

_TRANSACTION_RE = re.compile(r"^T(?P<id>\d+)\s*:\s*(?P<body>.+)$")
_ATOMICITY_RE = re.compile(
    r"^atomicity\s+T(?P<tx>\d+)\s*/\s*T(?P<observer>\d+)\s*:\s*(?P<body>.+)$"
)
_SCHEDULE_RE = re.compile(
    r"^schedule\s+(?P<name>\S+)\s*:\s*(?P<body>.+)$"
)


@dataclass
class Problem:
    """A parsed problem: transactions, spec, and named schedules."""

    transactions: list[Transaction]
    spec: RelativeAtomicitySpec
    schedules: dict[str, Schedule] = field(default_factory=dict)

    def schedule(self, name: str) -> Schedule:
        """The schedule declared under ``name``."""
        try:
            return self.schedules[name]
        except KeyError:
            raise NotationError(f"no schedule named {name!r}") from None


def parse_problem(text: str) -> Problem:
    """Parse a problem file (see module docstring for the format).

    Raises:
        NotationError: on any malformed or out-of-order declaration
            (transactions must precede the atomicity and schedule lines
            that reference them).
    """
    transactions: list[Transaction] = []
    atomicity_lines: list[tuple[int, int, int, str]] = []
    schedule_lines: list[tuple[int, str, str]] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _TRANSACTION_RE.match(line)
        if match:
            transactions.append(
                Transaction.from_notation(
                    int(match.group("id")), match.group("body")
                )
            )
            continue
        match = _ATOMICITY_RE.match(line)
        if match:
            atomicity_lines.append(
                (
                    line_number,
                    int(match.group("tx")),
                    int(match.group("observer")),
                    match.group("body"),
                )
            )
            continue
        match = _SCHEDULE_RE.match(line)
        if match:
            schedule_lines.append(
                (line_number, match.group("name"), match.group("body"))
            )
            continue
        raise NotationError(f"line {line_number}: cannot parse {line!r}")

    if not transactions:
        raise NotationError("problem declares no transactions")

    views = {
        (tx, observer): body
        for _, tx, observer, body in atomicity_lines
    }
    try:
        spec = RelativeAtomicitySpec(transactions, views)
    except Exception as exc:
        raise NotationError(f"invalid atomicity declaration: {exc}") from exc

    schedules: dict[str, Schedule] = {}
    for line_number, name, body in schedule_lines:
        if name in schedules:
            raise NotationError(
                f"line {line_number}: duplicate schedule name {name!r}"
            )
        try:
            schedules[name] = Schedule.from_notation(transactions, body)
        except Exception as exc:
            raise NotationError(
                f"line {line_number}: invalid schedule {name!r}: {exc}"
            ) from exc

    return Problem(transactions, spec, schedules)


def render_problem(problem: Problem) -> str:
    """Write a :class:`Problem` back to the textual format.

    Only non-absolute atomicity views are emitted (absolute is the
    default), keeping round-trips tidy.
    """
    lines: list[str] = []
    for transaction in problem.transactions:
        body = " ".join(op.label for op in transaction)
        lines.append(f"T{transaction.tx_id}: {body}")
    lines.append("")
    for tx, observer in problem.spec.pairs():
        view = problem.spec.atomicity(tx, observer)
        if view.is_absolute:
            continue
        rendered = view.render(problem.spec.transactions[tx])
        lines.append(f"atomicity T{tx}/T{observer}: {rendered}")
    if problem.schedules:
        lines.append("")
        for name, schedule in problem.schedules.items():
            lines.append(f"schedule {name}: {schedule}")
    return "\n".join(lines) + "\n"
