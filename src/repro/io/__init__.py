"""Textual and structured formats for transactions, specs, and schedules.

* :mod:`~repro.io.notation` — a small line-oriented problem format (the
  paper's notation, one declaration per line) with parser and writer;
* :mod:`~repro.io.dot` — Graphviz DOT export for dependency graphs,
  serialization graphs, and relative serialization graphs;
* :mod:`~repro.io.jsonio` — JSON (de)serialization of the model objects.
"""

from repro.io.dot import dependency_to_dot, digraph_to_dot, rsg_to_dot
from repro.io.jsonio import (
    problem_from_json,
    problem_to_json,
    schedule_from_json,
    schedule_to_json,
    spec_from_json,
    spec_to_json,
    transaction_from_json,
    transaction_to_json,
)
from repro.io.notation import Problem, parse_problem, render_problem

__all__ = [
    "Problem",
    "parse_problem",
    "render_problem",
    "digraph_to_dot",
    "rsg_to_dot",
    "dependency_to_dot",
    "transaction_to_json",
    "transaction_from_json",
    "spec_to_json",
    "spec_from_json",
    "schedule_to_json",
    "schedule_from_json",
    "problem_to_json",
    "problem_from_json",
]
