"""Graphviz DOT export.

Renders the library's graphs for inspection with ``dot -Tpng``:

* :func:`rsg_to_dot` colours arcs by kind (I black, D blue, F green,
  B red) and clusters operations by transaction, mirroring the layout of
  the paper's Figure 3;
* :func:`dependency_to_dot` and :func:`digraph_to_dot` are the generic
  fallbacks.
"""

from __future__ import annotations

from repro.core.dependency import DependencyRelation
from repro.core.operations import Operation
from repro.core.rsg import ArcKind, RelativeSerializationGraph
from repro.graphs.digraph import DiGraph

__all__ = ["digraph_to_dot", "rsg_to_dot", "dependency_to_dot"]

_ARC_COLOURS = {
    ArcKind.INTERNAL: "black",
    ArcKind.DEPENDENCY: "blue",
    ArcKind.PUSH_FORWARD: "forestgreen",
    ArcKind.PULL_BACKWARD: "red",
}


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _node_id(node: object) -> str:
    if isinstance(node, Operation):
        return _quote(f"{node.label}#{node.index}")
    return _quote(str(node))


def digraph_to_dot(graph: DiGraph, name: str = "G") -> str:
    """Render any :class:`DiGraph` as DOT, labelling edges with their
    label sets."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in graph.nodes():
        label = node.label if isinstance(node, Operation) else str(node)
        lines.append(f"  {_node_id(node)} [label={_quote(label)}];")
    for source, target, labels in graph.labelled_edges():
        if labels:
            text = ",".join(sorted(str(label) for label in labels))
            lines.append(
                f"  {_node_id(source)} -> {_node_id(target)} "
                f"[label={_quote(text)}];"
            )
        else:
            lines.append(f"  {_node_id(source)} -> {_node_id(target)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def rsg_to_dot(rsg: RelativeSerializationGraph, name: str = "RSG") -> str:
    """Render a relative serialization graph with per-kind arc colours and
    one cluster per transaction (the paper's Figure 3 layout)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for tx_id in sorted(rsg.schedule.transactions):
        lines.append(f"  subgraph cluster_T{tx_id} {{")
        lines.append(f"    label={_quote(f'T{tx_id}')};")
        for op in rsg.schedule.transactions[tx_id]:
            lines.append(
                f"    {_node_id(op)} [label={_quote(op.label)}];"
            )
        lines.append("  }")
    for source, target, labels in rsg.graph.labelled_edges():
        kinds = sorted(labels, key=lambda kind: kind.value)
        text = ",".join(str(kind) for kind in kinds)
        colour = _ARC_COLOURS[kinds[0]] if kinds else "black"
        lines.append(
            f"  {_node_id(source)} -> {_node_id(target)} "
            f"[label={_quote(text)}, color={colour}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dependency_to_dot(dependency: DependencyRelation, name: str = "DEP") -> str:
    """Render a ``depends-on`` relation as DOT."""
    return digraph_to_dot(dependency.as_graph(), name)
