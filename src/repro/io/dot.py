"""Graphviz DOT export.

Renders the library's graphs for inspection with ``dot -Tpng``:

* :func:`rsg_to_dot` colours arcs by kind (I black, D blue, F green,
  B red) and clusters operations by transaction, mirroring the layout of
  the paper's Figure 3;
* :func:`witness_to_dot` renders a rejection's witness cycle with
  per-kind arc styling: I solid, D dashed, and the unit arcs (F/B,
  Definition 3's push-forward/pull-backward closures) bold;
* :func:`dependency_to_dot` and :func:`digraph_to_dot` are the generic
  fallbacks.
"""

from __future__ import annotations

from repro.core.dependency import DependencyRelation
from repro.core.operations import Operation
from repro.core.rsg import ArcKind, RelativeSerializationGraph
from repro.graphs.digraph import DiGraph
from repro.obs.explain import RejectionWitness

__all__ = [
    "digraph_to_dot",
    "rsg_to_dot",
    "witness_to_dot",
    "dependency_to_dot",
]

_ARC_COLOURS = {
    ArcKind.INTERNAL: "black",
    ArcKind.DEPENDENCY: "blue",
    ArcKind.PUSH_FORWARD: "forestgreen",
    ArcKind.PULL_BACKWARD: "red",
}


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _node_id(node: object) -> str:
    if isinstance(node, Operation):
        return _quote(f"{node.label}#{node.index}")
    return _quote(str(node))


def digraph_to_dot(graph: DiGraph, name: str = "G") -> str:
    """Render any :class:`DiGraph` as DOT, labelling edges with their
    label sets."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in graph.nodes():
        label = node.label if isinstance(node, Operation) else str(node)
        lines.append(f"  {_node_id(node)} [label={_quote(label)}];")
    for source, target, labels in graph.labelled_edges():
        if labels:
            text = ",".join(sorted(str(label) for label in labels))
            lines.append(
                f"  {_node_id(source)} -> {_node_id(target)} "
                f"[label={_quote(text)}];"
            )
        else:
            lines.append(f"  {_node_id(source)} -> {_node_id(target)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def rsg_to_dot(rsg: RelativeSerializationGraph, name: str = "RSG") -> str:
    """Render a relative serialization graph with per-kind arc colours and
    one cluster per transaction (the paper's Figure 3 layout)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for tx_id in sorted(rsg.schedule.transactions):
        lines.append(f"  subgraph cluster_T{tx_id} {{")
        lines.append(f"    label={_quote(f'T{tx_id}')};")
        for op in rsg.schedule.transactions[tx_id]:
            lines.append(
                f"    {_node_id(op)} [label={_quote(op.label)}];"
            )
        lines.append("  }")
    for source, target, labels in rsg.graph.labelled_edges():
        kinds = sorted(labels, key=lambda kind: kind.value)
        text = ",".join(str(kind) for kind in kinds)
        colour = _ARC_COLOURS[kinds[0]] if kinds else "black"
        lines.append(
            f"  {_node_id(source)} -> {_node_id(target)} "
            f"[label={_quote(text)}, color={colour}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


#: Colours per compact kind letter (matches :data:`_ARC_COLOURS`).
_KIND_LETTER_COLOURS = {
    "I": "black",
    "D": "blue",
    "F": "forestgreen",
    "B": "red",
}


def _witness_style(kinds: str) -> str:
    """DOT edge attributes for one witness step's arc-kind string.

    I renders solid, D dashed, and the unit arcs (F/B) bold; a step that
    carries several kinds combines the styles (``"DB"`` → dashed bold).
    The colour follows the first kind in canonical I/D/F/B order.
    """
    styles = []
    if "D" in kinds and "I" not in kinds:
        styles.append("dashed")
    if "F" in kinds or "B" in kinds:
        styles.append("bold")
    if not styles:
        styles.append("solid")
    colour = next(
        (
            _KIND_LETTER_COLOURS[letter]
            for letter in "IDFB"
            if letter in kinds
        ),
        "black",
    )
    return f'style="{",".join(styles)}", color={colour}'


def witness_to_dot(
    witness: RejectionWitness, name: str = "WITNESS"
) -> str:
    """Render a rejection's witness cycle as DOT.

    One node per cycle operation, one styled edge per arc: I solid, D
    dashed, F/B (the unit arcs) bold, each labelled with its compact
    kind string (``"DB"``).
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for label in witness.operations:
        lines.append(f"  {_quote(label)} [label={_quote(label)}];")
    for step in witness.steps:
        lines.append(
            f"  {_quote(step.source)} -> {_quote(step.target)} "
            f"[label={_quote(step.kinds)}, {_witness_style(step.kinds)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dependency_to_dot(dependency: DependencyRelation, name: str = "DEP") -> str:
    """Render a ``depends-on`` relation as DOT."""
    return digraph_to_dot(dependency.as_graph(), name)
