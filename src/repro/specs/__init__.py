"""Builders for relative atomicity specifications.

The paper notes (Section 2) that relative atomicity subsumes earlier
proposals; this package provides builders for each style:

* :mod:`~repro.specs.builders` — absolute, finest, uniform-chunk,
  per-pair breakpoint (Farrag–Özsu style), and random specifications;
* :mod:`~repro.specs.compat` — Garcia-Molina compatibility sets
  (transactions in one set interleave freely, across sets they are
  atomic);
* :mod:`~repro.specs.multilevel` — Lynch's multilevel atomicity
  (hierarchically nested interleaving groups with per-level breakpoints);
* :mod:`~repro.specs.chopping` — Shasha–Simon–Valduriez transaction
  chopping (the SC-cycle test) and its embedding into relative atomicity;
* :mod:`~repro.specs.lattice` — the coarser/finer order on specs with
  join/meet (acceptance is monotone along the order).
"""

from repro.specs.builders import (
    absolute_spec,
    breakpoint_spec,
    finest_spec,
    nested_spec_chain,
    random_spec,
    uniform_spec,
)
from repro.specs.chopping import (
    Chopping,
    chopping_to_spec,
    finest_correct_chopping,
    is_correct_chopping,
)
from repro.specs.compat import compatibility_spec
from repro.specs.lattice import is_coarser, join, meet
from repro.specs.multilevel import MultilevelHierarchy, multilevel_spec

__all__ = [
    "absolute_spec",
    "finest_spec",
    "uniform_spec",
    "breakpoint_spec",
    "nested_spec_chain",
    "random_spec",
    "compatibility_spec",
    "MultilevelHierarchy",
    "multilevel_spec",
    "Chopping",
    "is_correct_chopping",
    "finest_correct_chopping",
    "chopping_to_spec",
    "is_coarser",
    "join",
    "meet",
]
