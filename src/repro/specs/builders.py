"""General-purpose spec builders.

These construct :class:`~repro.core.atomicity.RelativeAtomicitySpec`
objects for the common shapes used across examples, tests, and the
acceptance-rate experiments:

* :func:`absolute_spec` — the traditional model (one unit per pair); with
  it, relative serializability collapses to conflict serializability
  (Lemma 1).
* :func:`finest_spec` — every operation its own unit: the most permissive
  specification expressible in the model.
* :func:`uniform_spec` — units of a fixed size ``k``; sweeping ``k`` from
  ``len(T)`` down to 1 interpolates between the two extremes and drives
  the E9 concurrency experiment.
* :func:`breakpoint_spec` — explicit per-pair breakpoints (the
  Farrag–Özsu style of writing specifications).
* :func:`random_spec` — each admissible cut kept with probability ``p``
  (seeded), for randomized property tests.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping, Sequence

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction

__all__ = [
    "absolute_spec",
    "finest_spec",
    "uniform_spec",
    "breakpoint_spec",
    "nested_spec_chain",
    "random_spec",
]


def absolute_spec(transactions: Sequence[Transaction]) -> RelativeAtomicitySpec:
    """The traditional model: every transaction is a single atomic unit
    with respect to every other transaction."""
    return RelativeAtomicitySpec(transactions)


def finest_spec(transactions: Sequence[Transaction]) -> RelativeAtomicitySpec:
    """Every operation is its own atomic unit for every observer.

    This is the loosest specification expressible: it constrains nothing
    beyond the dependencies themselves.
    """
    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            views[(tx.tx_id, observer.tx_id)] = range(1, len(tx))
    return RelativeAtomicitySpec(transactions, views)


def uniform_spec(
    transactions: Sequence[Transaction], unit_size: int
) -> RelativeAtomicitySpec:
    """Units of (at most) ``unit_size`` consecutive operations, for every
    pair.

    ``unit_size >= len(T)`` reproduces :func:`absolute_spec` for that
    transaction; ``unit_size == 1`` reproduces :func:`finest_spec`.
    """
    if unit_size < 1:
        raise ValueError(f"unit_size must be >= 1, got {unit_size}")
    views = {}
    for tx in transactions:
        cuts = list(range(unit_size, len(tx), unit_size))
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            views[(tx.tx_id, observer.tx_id)] = cuts
    return RelativeAtomicitySpec(transactions, views)


def breakpoint_spec(
    transactions: Sequence[Transaction],
    breakpoints: Mapping[tuple[int, int], Iterable[int]]
    | Mapping[int, Iterable[int]],
) -> RelativeAtomicitySpec:
    """Explicit breakpoints, Farrag–Özsu style.

    Args:
        transactions: the transaction set.
        breakpoints: either per ordered pair ``(tx, observer)``, or per
            transaction id — in which case the same cut set applies with
            respect to *every* observer (a transaction exposing the same
            breakpoints to everyone, as in [FÖ89]).
    """
    views: dict[tuple[int, int], Iterable[int]] = {}
    for key, cuts in breakpoints.items():
        if isinstance(key, tuple):
            views[key] = cuts
        else:
            cut_list = list(cuts)
            for observer in transactions:
                if observer.tx_id != key:
                    views[(key, observer.tx_id)] = cut_list
    return RelativeAtomicitySpec(transactions, views)


def nested_spec_chain(
    transactions: Sequence[Transaction],
    levels: int,
    seed: int | random.Random = 0,
) -> list[RelativeAtomicitySpec]:
    """A chain of specifications, each strictly no coarser than the last.

    Level 0 is absolute atomicity; the final level is the finest spec;
    intermediate levels reveal a growing random prefix of each pair's
    breakpoint positions, so every pair's cut set at level ``k`` is a
    subset of its cut set at level ``k + 1``.

    Along such a chain the relatively serializable class is *provably*
    monotone (finer units only remove F/B-arc constraints), which is
    what the nested acceptance experiments and property tests rely on —
    unit-size sweeps do not have this property because their cut sets
    are not nested.

    Args:
        transactions: the transaction set.
        levels: number of specs in the chain (at least 2).
        seed: RNG seed controlling the reveal order of breakpoints.
    """
    if levels < 2:
        raise ValueError(f"a chain needs at least 2 levels, got {levels}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    reveal_order: dict[tuple[int, int], list[int]] = {}
    for tx in transactions:
        positions = list(range(1, len(tx)))
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            order = positions[:]
            rng.shuffle(order)
            reveal_order[(tx.tx_id, observer.tx_id)] = order

    chain = []
    for level in range(levels):
        fraction = level / (levels - 1)
        views = {}
        for pair, order in reveal_order.items():
            revealed = round(fraction * len(order))
            views[pair] = order[:revealed]
        chain.append(RelativeAtomicitySpec(list(transactions), views))
    return chain


def random_spec(
    transactions: Sequence[Transaction],
    cut_probability: float,
    seed: int | random.Random = 0,
) -> RelativeAtomicitySpec:
    """Keep each admissible cut independently with ``cut_probability``.

    Args:
        transactions: the transaction set.
        cut_probability: probability in ``[0, 1]`` that any given unit
            boundary exists; 0 gives the absolute spec, 1 the finest.
        seed: an ``int`` seed or a pre-seeded ``random.Random``.
    """
    if not 0.0 <= cut_probability <= 1.0:
        raise ValueError(
            f"cut_probability must be in [0, 1], got {cut_probability}"
        )
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            cuts = [
                position
                for position in range(1, len(tx))
                if rng.random() < cut_probability
            ]
            views[(tx.tx_id, observer.tx_id)] = cuts
    return RelativeAtomicitySpec(transactions, views)
