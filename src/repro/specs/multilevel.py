"""Lynch's multilevel atomicity [Lyn83] as relative atomicity specs.

Lynch organizes transactions into a *hierarchy* of nested groups (the
banking example: the bank at the root, families below it, customers at the
leaves).  Each transaction exposes one breakpoint set *per level of the
hierarchy*, nested so that more closely related observers see finer
atomicity: if the lowest common ancestor of ``Ti`` and ``Tj`` sits at
depth ``d``, then ``Tj`` observes ``Ti`` broken at ``Ti``'s depth-``d``
breakpoints — and depth-``d`` breakpoints must be a subset of
depth-``d+1`` breakpoints (deeper = more cuts = finer units).

The paper argues relative atomicity strictly generalizes this model (any
per-pair assignment is allowed, hierarchical or not); this module provides
the embedding so Lynch-style specifications can be written naturally and
then fed to the full machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError

__all__ = ["MultilevelHierarchy", "multilevel_spec"]

#: A hierarchy node: a transaction id (leaf) or a sequence of nodes.
HierarchyNode = int | Sequence["HierarchyNode"]


class MultilevelHierarchy:
    """A tree of transaction groups, given as nested sequences.

    Example (Lynch's banking scenario: two families under one bank)::

        MultilevelHierarchy([[1, 2], [3, 4], 5])

    puts ``T1, T2`` in one family, ``T3, T4`` in another, and ``T5``
    (say, the bank audit) directly under the root.

    Raises:
        InvalidSpecError: if a transaction id occurs twice or the tree is
            empty.
    """

    def __init__(self, root: Sequence[HierarchyNode]) -> None:
        self._path_of: dict[int, tuple[int, ...]] = {}
        self._walk(root, path=())
        if not self._path_of:
            raise InvalidSpecError("hierarchy contains no transactions")

    def _walk(self, node: HierarchyNode, path: tuple[int, ...]) -> None:
        if isinstance(node, int):
            if node in self._path_of:
                raise InvalidSpecError(
                    f"T{node} appears twice in the hierarchy"
                )
            self._path_of[node] = path
            return
        for child_index, child in enumerate(node):
            self._walk(child, path + (child_index,))

    @property
    def transaction_ids(self) -> frozenset[int]:
        """All transaction ids mentioned by the hierarchy."""
        return frozenset(self._path_of)

    def depth(self, tx_id: int) -> int:
        """Depth of the transaction's leaf (root children are depth 1)."""
        return len(self._require(tx_id))

    def lca_depth(self, first: int, second: int) -> int:
        """Depth of the lowest common ancestor group of two transactions.

        Depth 0 is the root: two transactions related only through the
        root have LCA depth 0 (the coarsest view applies).
        """
        path_a = self._require(first)
        path_b = self._require(second)
        depth = 0
        for step_a, step_b in zip(path_a, path_b):
            if step_a != step_b:
                break
            depth += 1
        return depth

    def _require(self, tx_id: int) -> tuple[int, ...]:
        try:
            return self._path_of[tx_id]
        except KeyError:
            raise InvalidSpecError(
                f"T{tx_id} is not in the hierarchy"
            ) from None

    def __repr__(self) -> str:
        return (
            f"MultilevelHierarchy({len(self._path_of)} transactions)"
        )


def multilevel_spec(
    transactions: Sequence[Transaction],
    hierarchy: MultilevelHierarchy | Sequence[HierarchyNode],
    level_cuts: Mapping[int, Sequence[Iterable[int]]],
) -> RelativeAtomicitySpec:
    """Expand a multilevel atomicity specification to a relative one.

    Args:
        transactions: the transaction set.
        hierarchy: the group tree (or the nested sequences to build one).
        level_cuts: for each transaction id, the breakpoint sets by depth:
            ``level_cuts[i][d]`` is the cut set ``Ti`` exposes to
            observers whose LCA with ``Ti`` sits at depth ``d``.  The list
            must cover depths ``0 .. depth(Ti) - 1`` and be nested
            (``level_cuts[i][d] ⊆ level_cuts[i][d + 1]``).  A transaction
            missing from the mapping defaults to absolute atomicity at
            every level.

    Returns:
        The equivalent :class:`RelativeAtomicitySpec` with
        ``Atomicity(Ti, Tj) = level_cuts[i][lca_depth(i, j)]``.

    Raises:
        InvalidSpecError: on non-nested cut sets, missing levels, or a
            hierarchy/transaction mismatch.
    """
    if not isinstance(hierarchy, MultilevelHierarchy):
        hierarchy = MultilevelHierarchy(hierarchy)

    ids = {tx.tx_id for tx in transactions}
    if ids != hierarchy.transaction_ids:
        raise InvalidSpecError(
            "hierarchy transactions do not match the transaction set: "
            f"hierarchy has {sorted(hierarchy.transaction_ids)}, "
            f"set has {sorted(ids)}"
        )

    normalized: dict[int, list[frozenset[int]]] = {}
    for tx in transactions:
        depth = hierarchy.depth(tx.tx_id)
        cuts_by_depth = [
            frozenset(cuts)
            for cuts in level_cuts.get(tx.tx_id, [()] * depth)
        ]
        if len(cuts_by_depth) != depth:
            raise InvalidSpecError(
                f"T{tx.tx_id} sits at depth {depth} but has "
                f"{len(cuts_by_depth)} cut levels"
            )
        for shallow, deep in zip(cuts_by_depth, cuts_by_depth[1:]):
            if not shallow.issubset(deep):
                raise InvalidSpecError(
                    f"cut sets of T{tx.tx_id} are not nested: a shallower "
                    "level exposes breakpoints a deeper level hides"
                )
        normalized[tx.tx_id] = cuts_by_depth

    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            depth = hierarchy.lca_depth(tx.tx_id, observer.tx_id)
            views[(tx.tx_id, observer.tx_id)] = normalized[tx.tx_id][depth]
    return RelativeAtomicitySpec(transactions, views)
