"""Garcia-Molina compatibility sets [Gar83] as relative atomicity specs.

Garcia-Molina's proposal groups transactions into *compatibility sets*:
transactions in the same set may be arbitrarily interleaved, while
transactions in different sets observe each other as single atomic units.
The paper points out this is a special case of relative atomicity; the
translation is direct:

* ``Atomicity(Ti, Tj)`` is the *finest* partition (every operation its own
  unit) when ``Ti`` and ``Tj`` share a set,
* and the *absolute* partition (one unit) otherwise.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.errors import InvalidSpecError

__all__ = ["compatibility_spec"]


def compatibility_spec(
    transactions: Sequence[Transaction],
    groups: Iterable[Iterable[int]],
) -> RelativeAtomicitySpec:
    """Build the relative atomicity spec induced by compatibility sets.

    Args:
        transactions: the transaction set.
        groups: a partition of the transaction ids into compatibility
            sets.  Every transaction must appear in exactly one group;
            singleton groups are allowed (a transaction compatible with
            nothing).

    Raises:
        InvalidSpecError: if ``groups`` is not a partition of the
            transaction ids.
    """
    group_of: dict[int, int] = {}
    for group_index, group in enumerate(groups):
        for tx_id in group:
            if tx_id in group_of:
                raise InvalidSpecError(
                    f"T{tx_id} appears in more than one compatibility set"
                )
            group_of[tx_id] = group_index

    by_id = {tx.tx_id: tx for tx in transactions}
    missing = set(by_id).difference(group_of)
    if missing:
        raise InvalidSpecError(
            f"transactions missing from compatibility sets: "
            f"{sorted(missing)}"
        )
    unknown = set(group_of).difference(by_id)
    if unknown:
        raise InvalidSpecError(
            f"compatibility sets mention unknown transactions: "
            f"{sorted(unknown)}"
        )

    views = {}
    for tx in transactions:
        for observer in transactions:
            if tx.tx_id == observer.tx_id:
                continue
            if group_of[tx.tx_id] == group_of[observer.tx_id]:
                views[(tx.tx_id, observer.tx_id)] = range(1, len(tx))
            else:
                views[(tx.tx_id, observer.tx_id)] = ()
    return RelativeAtomicitySpec(transactions, views)
