"""The lattice of relative atomicity specifications.

For a fixed transaction set, specifications are partially ordered by
per-pair breakpoint inclusion: ``A ⊑ B`` ("A is coarser than B") when
every view's cut set in ``A`` is a subset of the corresponding cut set
in ``B``.  Under this order the specifications form a bounded lattice —
absolute atomicity at the bottom, the finest spec at the top — with

* **join** (least upper bound): per-pair *union* of cut sets,
* **meet** (greatest lower bound): per-pair *intersection*.

The order matters because acceptance is monotone along it (finer units
only relax the RSG's F/B arcs — see
:func:`repro.specs.builders.nested_spec_chain`): if a schedule is
relatively serializable under ``A`` and ``A ⊑ B``, it is relatively
serializable under ``B``.  Hence the join of two specs accepts every
schedule either accepts, and the meet accepts only schedules both do —
useful for composing specifications from multiple stakeholders (take
the meet for safety, the join to describe the union of their
allowances).
"""

from __future__ import annotations

from repro.core.atomicity import RelativeAtomicitySpec
from repro.errors import InvalidSpecError

__all__ = ["is_coarser", "join", "meet"]


def _check_same_transactions(
    first: RelativeAtomicitySpec, second: RelativeAtomicitySpec
) -> None:
    if set(first.transactions) != set(second.transactions) or any(
        first.transactions[tx_id] != second.transactions[tx_id]
        for tx_id in first.transactions
    ):
        raise InvalidSpecError(
            "lattice operations need specs over the same transaction set"
        )


def is_coarser(
    first: RelativeAtomicitySpec, second: RelativeAtomicitySpec
) -> bool:
    """Whether ``first ⊑ second``: every cut of ``first`` is in ``second``.

    Reflexive; ``absolute ⊑ anything ⊑ finest``.  When it holds, every
    schedule relatively serializable under ``first`` is relatively
    serializable under ``second`` (acceptance monotonicity).
    """
    _check_same_transactions(first, second)
    return all(
        first.atomicity(*pair).breakpoints
        <= second.atomicity(*pair).breakpoints
        for pair in first.pairs()
    )


def join(
    first: RelativeAtomicitySpec, second: RelativeAtomicitySpec
) -> RelativeAtomicitySpec:
    """Least upper bound: per-pair union of breakpoints (the coarsest
    spec at least as fine as both)."""
    _check_same_transactions(first, second)
    views = {
        pair: first.atomicity(*pair).breakpoints
        | second.atomicity(*pair).breakpoints
        for pair in first.pairs()
    }
    return RelativeAtomicitySpec(first.transaction_list, views)


def meet(
    first: RelativeAtomicitySpec, second: RelativeAtomicitySpec
) -> RelativeAtomicitySpec:
    """Greatest lower bound: per-pair intersection of breakpoints (the
    finest spec at least as coarse as both)."""
    _check_same_transactions(first, second)
    views = {
        pair: first.atomicity(*pair).breakpoints
        & second.atomicity(*pair).breakpoints
        for pair in first.pairs()
    }
    return RelativeAtomicitySpec(first.transaction_list, views)
