"""Transaction chopping [SSV92], cited in the paper's Section 4.

Shasha, Simon, and Valduriez's *chopping* splits each transaction into
consecutive *pieces* that execute as independent transactions under
strict two-phase locking.  A chopping is **correct** when the resulting
executions remain (conflict-)serializable as wholes, and their theorem
gives a graph test:

    Build the *chopping graph*: one vertex per piece;
    **C-edges** between conflicting pieces of different transactions;
    **S-edges** (sibling) between consecutive pieces of one transaction.
    The chopping is correct iff no cycle contains both an S-edge and a
    C-edge (an *SC-cycle*).

The paper positions chopping as a serializability-preserving relative of
its own model; the structural kinship is direct — a chopping is exactly
a relative atomicity specification whose views are the same partition
for every observer.  :func:`chopping_to_spec` performs that embedding,
and the experiment suite compares what the two theories admit.

This module implements the chopping graph, the SC-cycle test, and a
finest-correct-chopping search (greedy piece merging), all on the same
transaction model as the rest of the library.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.schedules import conflicts
from repro.core.transactions import Transaction, as_transaction_map
from repro.errors import InvalidSpecError
from repro.graphs.digraph import DiGraph

__all__ = [
    "Chopping",
    "sc_cycle",
    "is_correct_chopping",
    "finest_correct_chopping",
    "chopping_to_spec",
]


@dataclass(frozen=True)
class Chopping:
    """A chopping: per transaction, the cut positions splitting it into
    pieces (same representation as atomicity breakpoints).

    ``cuts[tx_id]`` is a frozenset of positions in ``1..len(T)-1``; the
    empty set leaves the transaction whole.
    """

    transactions: tuple[Transaction, ...]
    cuts: Mapping[int, frozenset[int]]

    def __post_init__(self) -> None:
        by_id = as_transaction_map(list(self.transactions))
        for tx_id, positions in self.cuts.items():
            if tx_id not in by_id:
                raise InvalidSpecError(f"chopping cuts unknown T{tx_id}")
            length = len(by_id[tx_id])
            for cut in positions:
                if not 1 <= cut <= length - 1:
                    raise InvalidSpecError(
                        f"cut {cut} outside 1..{length - 1} for T{tx_id}"
                    )

    def pieces(self, tx_id: int) -> list[tuple[int, int]]:
        """The piece spans ``(start, end)`` (inclusive) of one transaction."""
        by_id = as_transaction_map(list(self.transactions))
        length = len(by_id[tx_id])
        cut_list = sorted(self.cuts.get(tx_id, frozenset()))
        starts = [0] + cut_list
        ends = [cut - 1 for cut in cut_list] + [length - 1]
        return list(zip(starts, ends))

    def piece_count(self) -> int:
        """Total number of pieces across all transactions."""
        return sum(len(self.pieces(tx.tx_id)) for tx in self.transactions)


def _chopping_graph(chopping: Chopping) -> tuple[DiGraph, set, set]:
    """The (undirected, encoded as symmetric) chopping graph.

    Returns ``(graph, s_edges, c_edges)`` where the edge sets hold
    frozenset pairs of piece ids ``(tx_id, piece_index)``.
    """
    graph = DiGraph()
    s_edges: set[frozenset] = set()
    c_edges: set[frozenset] = set()
    by_id = {tx.tx_id: tx for tx in chopping.transactions}

    piece_ids: dict[int, list[tuple[int, int]]] = {}
    for tx in chopping.transactions:
        spans = chopping.pieces(tx.tx_id)
        piece_ids[tx.tx_id] = spans
        for index in range(len(spans)):
            graph.add_node((tx.tx_id, index))

    # S-edges between consecutive pieces of one transaction.
    for tx_id, spans in piece_ids.items():
        for index in range(len(spans) - 1):
            a, b = (tx_id, index), (tx_id, index + 1)
            graph.add_edge(a, b)
            graph.add_edge(b, a)
            s_edges.add(frozenset((a, b)))

    # C-edges between conflicting pieces of different transactions.
    tx_ids = sorted(piece_ids)
    for i, tx_a in enumerate(tx_ids):
        for tx_b in tx_ids[i + 1:]:
            for index_a, (start_a, end_a) in enumerate(piece_ids[tx_a]):
                ops_a = by_id[tx_a].operations[start_a:end_a + 1]
                for index_b, (start_b, end_b) in enumerate(
                    piece_ids[tx_b]
                ):
                    ops_b = by_id[tx_b].operations[start_b:end_b + 1]
                    if any(
                        conflicts(op_a, op_b)
                        for op_a in ops_a
                        for op_b in ops_b
                    ):
                        a, b = (tx_a, index_a), (tx_b, index_b)
                        graph.add_edge(a, b)
                        graph.add_edge(b, a)
                        c_edges.add(frozenset((a, b)))
    return graph, s_edges, c_edges


def sc_cycle(chopping: Chopping) -> list | None:
    """Find an SC-cycle (cycle with ≥1 S-edge and ≥1 C-edge), or ``None``.

    Key observation: the S-edges of one transaction form a simple path
    (consecutive sibling pieces), so S-edges alone can never close a
    cycle — *any* cycle through an S-edge necessarily contains a C-edge
    and is an SC-cycle.  Therefore an SC-cycle exists iff some S-edge is
    not a bridge: for each S-edge ``{a, b}``, search for a path from
    ``a`` to ``b`` that avoids the edge itself (it may use any mix of
    other S- and C-edges).  The witness returned is that path closed
    over the S-edge.
    """
    graph, s_edges, c_edges = _chopping_graph(chopping)
    if not c_edges or not s_edges:
        return None
    adjacency: dict = {}
    for edge in s_edges | c_edges:
        u, v = tuple(edge)
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)

    for edge in s_edges:
        a, b = tuple(edge)
        # BFS from a to b over every edge except the S-edge itself.
        previous = {a: None}
        frontier = [a]
        found = False
        while frontier and not found:
            node = frontier.pop(0)
            for neighbour in adjacency.get(node, ()):
                if node == a and neighbour == b:
                    continue  # the S-edge under test
                if neighbour in previous:
                    continue
                previous[neighbour] = node
                if neighbour == b:
                    found = True
                    break
                frontier.append(neighbour)
        if found:
            path = [b]
            while previous[path[-1]] is not None:
                path.append(previous[path[-1]])
            path.reverse()
            return path + [a]  # close the cycle over the S-edge
    return None


def is_correct_chopping(chopping: Chopping) -> bool:
    """The [SSV92] theorem's test: correct iff no SC-cycle exists."""
    return sc_cycle(chopping) is None


def finest_correct_chopping(
    transactions: Sequence[Transaction],
) -> Chopping:
    """A maximal correct chopping by greedy cut removal.

    Starts from the finest chopping (every operation its own piece) and,
    while an SC-cycle exists, merges the two sibling pieces joined by
    the cycle's S-edge (removing that cut).  Terminates because each
    step removes one cut; the result is correct, though (as [SSV92]
    note) not necessarily the unique finest correct chopping.
    """
    cuts = {
        tx.tx_id: set(range(1, len(tx))) for tx in transactions
    }
    while True:
        chopping = Chopping(
            tuple(transactions),
            {tx_id: frozenset(positions) for tx_id, positions in cuts.items()},
        )
        cycle = sc_cycle(chopping)
        if cycle is None:
            return chopping
        # The witness closes over an S-edge (sibling pieces of one
        # transaction somewhere along the cycle — sc_cycle guarantees
        # one between its last two distinct nodes): merge the first
        # sibling pair found, removing one cut.
        for a, b in zip(cycle, cycle[1:]):
            if a[0] == b[0] and abs(a[1] - b[1]) == 1:
                tx_id = a[0]
                spans = chopping.pieces(tx_id)
                boundary = spans[max(a[1], b[1])][0]
                cuts[tx_id].discard(boundary)
                break


def chopping_to_spec(chopping: Chopping) -> RelativeAtomicitySpec:
    """Embed a chopping as a relative atomicity specification.

    Pieces become atomic units, identically for every observer — the
    uniform-view corner of the paper's model.  A correct chopping's
    2PL-executed pieces yield schedules that this spec's RSG test
    accepts (the experiment suite checks the inclusion empirically).
    """
    views = {}
    for tx in chopping.transactions:
        for observer in chopping.transactions:
            if tx.tx_id == observer.tx_id:
                continue
            views[(tx.tx_id, observer.tx_id)] = chopping.cuts.get(
                tx.tx_id, frozenset()
            )
    return RelativeAtomicitySpec(list(chopping.transactions), views)
