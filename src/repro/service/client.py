"""A minimal asyncio client for the NDJSON wire protocol.

One :class:`ServiceClient` owns one TCP connection and issues strictly
one request at a time (the protocol is request/response per
connection).  It is deliberately thin — retries, backoff, and fault
injection are the *caller's* policy (see
:mod:`~repro.service.chaos` for the policy-rich consumer) — but it does
honour ``retry_after_ms`` hints in :meth:`begin_with_retry` because
every well-behaved client of a load-shedding server must.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError
from repro.service import wire

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A structured error response from the server.

    Attributes:
        code: the wire error code (see :mod:`~repro.service.wire`).
        response: the full response payload.
    """

    def __init__(self, response: dict) -> None:
        super().__init__(
            f"{response.get('error', wire.ERR_INTERNAL)}: "
            f"{response.get('message', '')}"
        )
        self.code: str = response.get("error", wire.ERR_INTERNAL)
        self.response = response

    @property
    def retry_after_ms(self) -> int | None:
        value = self.response.get("retry_after_ms")
        return int(value) if isinstance(value, (int, float)) else None


class ServiceClient:
    """One connection to an :class:`~repro.service.server.RsrServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 1

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def call(self, do: str, **fields: Any) -> dict:
        """One round-trip; raises :class:`ServiceError` on ``ok: false``."""
        request = {"do": do, "id": self._next_id, **fields}
        self._next_id += 1
        self._writer.write(json.dumps(request).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response)
        return response

    # -- convenience verbs --------------------------------------------
    async def tenant(
        self,
        name: str,
        protocol: str | None = None,
        objects: dict[str, Any] | None = None,
    ) -> dict:
        fields: dict[str, Any] = {"tenant": name}
        if protocol is not None:
            fields["protocol"] = protocol
        if objects is not None:
            fields["objects"] = objects
        return await self.call("tenant", **fields)

    async def begin(
        self,
        program: str,
        *,
        tenant: str = "default",
        cuts: tuple[int, ...] | list[int] = (),
        deadline_ms: int | None = None,
    ) -> dict:
        fields: dict[str, Any] = {
            "program": program,
            "tenant": tenant,
            "cuts": list(cuts),
        }
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return await self.call("begin", **fields)

    async def begin_with_retry(
        self,
        program: str,
        *,
        tenant: str = "default",
        cuts: tuple[int, ...] | list[int] = (),
        deadline_ms: int | None = None,
        max_sheds: int = 50,
    ) -> dict:
        """``begin``, honouring ``retry_after_ms`` when load-shed."""
        sheds = 0
        while True:
            try:
                return await self.begin(
                    program,
                    tenant=tenant,
                    cuts=cuts,
                    deadline_ms=deadline_ms,
                )
            except ServiceError as exc:
                if exc.code != wire.ERR_OVERLOADED or sheds >= max_sheds:
                    raise
                sheds += 1
                await asyncio.sleep((exc.retry_after_ms or 50) / 1000.0)

    async def read(self, txn: int, key: str | None = None) -> dict:
        fields: dict[str, Any] = {"txn": txn}
        if key is not None:
            fields["key"] = key
        return await self.call("read", **fields)

    async def write(
        self, txn: int, key: str | None = None, value: Any = None
    ) -> dict:
        fields: dict[str, Any] = {"txn": txn}
        if key is not None:
            fields["key"] = key
        if value is not None:
            fields["value"] = value
        return await self.call("write", **fields)

    async def step(self, txn: int, value: Any = None) -> dict:
        fields: dict[str, Any] = {"txn": txn}
        if value is not None:
            fields["value"] = value
        return await self.call("step", **fields)

    async def commit(self, txn: int) -> dict:
        return await self.call("commit", txn=txn)

    async def abort(self, txn: int) -> dict:
        return await self.call("abort", txn=txn)

    async def health(self) -> dict:
        return await self.call("health")

    async def metrics(self, tenant: str | None = None) -> dict:
        fields: dict[str, Any] = {}
        if tenant is not None:
            fields["tenant"] = tenant
        return await self.call("metrics", **fields)

    async def metricsx(self) -> dict:
        """Prometheus-style text exposition (``exposition`` field)."""
        return await self.call("metricsx")

    async def inspect(self, tenant: str | None = None) -> dict:
        """Live wait-for/donation/RSG snapshot per tenant."""
        fields: dict[str, Any] = {}
        if tenant is not None:
            fields["tenant"] = tenant
        return await self.call("inspect", **fields)

    async def dump(self, cause: str | None = None) -> dict:
        """Flight-recorder dump (JSONL in the ``dump`` field)."""
        fields: dict[str, Any] = {}
        if cause is not None:
            fields["cause"] = cause
        return await self.call("dump", **fields)

    async def certify(self, tenant: str | None = None) -> dict:
        fields: dict[str, Any] = {}
        if tenant is not None:
            fields["tenant"] = tenant
        return await self.call("certify", **fields)

    async def crash(self, tenant: str = "default") -> dict:
        return await self.call("crash", tenant=tenant)

    # -- teardown ------------------------------------------------------
    async def close(self) -> None:
        """Orderly close (open sessions are aborted server-side)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def kill(self) -> None:
        """Abrupt close with no goodbye — the chaos KILL primitive.

        The transport is torn down without flushing, so the server sees
        a mid-session disconnect and must abort-and-undo on its own.
        """
        transport = self._writer.transport
        if transport is not None:
            transport.abort()
