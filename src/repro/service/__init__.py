"""The long-running RSR transaction service.

This package turns the batch scheduler/certifier stack into a system
that serves traffic: an asyncio front-end speaking newline-delimited
JSON over TCP, exposing ``begin / read / write / commit / abort``
sessions against WAL-backed :class:`~repro.engine.kvstore.KVStore`
instances through any existing protocol scheduler, with per-client
relative-atomicity specs and multi-tenant namespaces.

Robustness is the headline, not a feature flag:

* **admission control** — a bounded in-flight session budget; ``begin``
  beyond it is load-shed with a structured ``retry_after_ms`` hint
  (:mod:`~repro.service.admission`);
* **deadlines** — per-session and per-operation deadlines that
  abort-and-undo on expiry (a reaper task plus in-request checks);
* **WAIT retries** — blocking protocols' WAIT outcomes are retried
  server-side with exponential backoff and seeded jitter, bounded by
  the op deadline;
* **graceful drain** — SIGTERM stops admission, finishes or aborts
  in-flight sessions, recovers the stores to a clean WAL, certifies
  every tenant, and exits 0;
* **crash recovery** — store crashes (chaos-injected or real) roll back
  every in-flight transaction through the WAL via
  :meth:`~repro.engine.kvstore.KVStore.crash` /
  :meth:`~repro.engine.kvstore.KVStore.recover`;
* **live chaos certification** — :mod:`~repro.service.chaos` replays
  :mod:`repro.faults`-style seeded plans against the *live* server
  (client kills, stalls, store crashes mid-session) and certifies the
  survivor invariant the fault campaigns established: the committed
  projection is relatively serializable under
  ``spec.restricted_to(survivors)`` and the recovered state equals a
  fault-free execution of exactly the survivors.
"""

from repro.service.admission import AdmissionController
from repro.service.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import RsrServer
from repro.service.session import Session, SessionState
from repro.service.tenant import CertificationResult, Tenant

__all__ = [
    "AdmissionController",
    "CertificationResult",
    "ChaosConfig",
    "ChaosReport",
    "RsrServer",
    "ServiceClient",
    "ServiceConfig",
    "Session",
    "SessionState",
    "Tenant",
    "run_chaos",
]
