"""Service configuration: one frozen value object, test-friendly.

Every timing knob is explicit so tests can shrink deadlines to tens of
milliseconds and the chaos harness can stretch them under load; the
defaults suit an interactive localhost deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError
from repro.protocols import PROTOCOL_NAMES

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the server derives its behaviour from.

    Attributes:
        host / port: listen address (``port=0`` asks the OS for one).
        default_protocol: scheduler for tenants created implicitly by a
            ``begin`` (explicit ``tenant`` requests choose their own).
        max_sessions: global in-flight session budget; ``begin`` beyond
            it is load-shed with a structured retry hint.
        max_program_ops: longest declarable per-session program.
        session_timeout_s: default wall-clock budget of one session,
            begin to commit (clients may request less, never more).
        op_timeout_s: wall-clock budget of one operation including its
            server-side WAIT retries.
        drain_timeout_s: grace window in-flight sessions get to finish
            after SIGTERM before being aborted.
        wait_retry_initial_ms / wait_retry_cap_ms: exponential backoff
            envelope for retrying WAIT outcomes server-side.
        retry_after_base_ms: base of the ``retry_after_ms`` hint shed
            ``begin`` requests carry.
        jitter_seed: seed of the server's jitter stream (backoff and
            retry-after hints), so a test run's delays are replayable.
        watchdog_threshold: per-scheduler stall watchdog setting
            (``None`` disables; see :class:`repro.protocols.base.
            Scheduler`).
        chaos: enable the destructive ``crash`` verb (chaos harness and
            tests only; off by default so a stray client cannot crash a
            production store).
        certify_on_drain: run the survivor-invariant certification on
            every tenant during drain and fold the verdict into the
            exit code.
        reap_interval_s: period of the deadline reaper task.
        max_line_bytes: hard cap on one request line.
        flight_dir: directory the flight recorder dumps JSONL files to
            on crash/watchdog/livelock/drain (``None`` keeps the rings
            in memory only — the ``dump`` verb still works).
        flight_capacity: events kept per flight-recorder ring.
    """

    host: str = "127.0.0.1"
    port: int = 0
    default_protocol: str = "rsgt"
    max_sessions: int = 256
    max_program_ops: int = 64
    session_timeout_s: float = 30.0
    op_timeout_s: float = 10.0
    drain_timeout_s: float = 5.0
    wait_retry_initial_ms: float = 4.0
    wait_retry_cap_ms: float = 128.0
    retry_after_base_ms: int = 50
    jitter_seed: int = 0
    watchdog_threshold: int | None = 64
    chaos: bool = False
    certify_on_drain: bool = True
    reap_interval_s: float = 0.25
    max_line_bytes: int = 1 << 20
    flight_dir: str | Path | None = None
    flight_capacity: int = 256

    def __post_init__(self) -> None:
        if self.default_protocol not in PROTOCOL_NAMES:
            raise ReproError(
                f"unknown protocol {self.default_protocol!r}; expected "
                f"one of {PROTOCOL_NAMES}"
            )
        if self.max_sessions < 1:
            raise ReproError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.max_program_ops < 1:
            raise ReproError(
                f"max_program_ops must be >= 1, got {self.max_program_ops}"
            )
        for name in (
            "session_timeout_s",
            "op_timeout_s",
            "drain_timeout_s",
            "wait_retry_initial_ms",
            "wait_retry_cap_ms",
            "reap_interval_s",
        ):
            if getattr(self, name) <= 0:
                raise ReproError(f"{name} must be positive")
        if self.flight_capacity < 1:
            raise ReproError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )
