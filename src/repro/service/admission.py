"""Bounded in-flight admission with structured load-shedding.

The controller is a counting semaphore that *refuses* instead of
queueing: a ``begin`` past the budget is shed immediately with a
``retry_after_ms`` hint, because parking unbounded begins server-side
is exactly the queue-of-death this service exists to avoid.  The hint
scales with how far over budget demand is and carries seeded jitter so
a herd of shed clients does not reconverge on the same millisecond —
the same dispersal argument as the simulator's restart jitter.
"""

from __future__ import annotations

import random

__all__ = ["AdmissionController"]


class AdmissionController:
    """Load-shedding admission gate for in-flight sessions.

    Args:
        limit: maximum concurrently open sessions.
        retry_after_base_ms: base of the shed retry hint.
        rng: jitter source (seeded by the server for replayable hints);
            defaults to an unseeded stream.
    """

    def __init__(
        self,
        limit: int,
        retry_after_base_ms: int = 50,
        rng: random.Random | None = None,
    ) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self._limit = limit
        self._base_ms = max(1, retry_after_base_ms)
        self._rng = rng or random.Random()
        self._inflight = 0
        self._shed = 0
        self._peak = 0
        self._draining = False

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def inflight(self) -> int:
        """Currently admitted (open) sessions."""
        return self._inflight

    @property
    def shed(self) -> int:
        """Total begins refused for load since startup."""
        return self._shed

    @property
    def peak(self) -> int:
        """High-water mark of concurrently open sessions."""
        return self._peak

    @property
    def draining(self) -> bool:
        return self._draining

    def start_drain(self) -> None:
        """Refuse all future admissions (SIGTERM path); idempotent."""
        self._draining = True

    def try_admit(self) -> bool:
        """Claim one in-flight slot; False means shed (or draining)."""
        if self._draining or self._inflight >= self._limit:
            self._shed += 1
            return False
        self._inflight += 1
        if self._inflight > self._peak:
            self._peak = self._inflight
        return True

    def release(self) -> None:
        """Return one slot (session closed, any cause)."""
        if self._inflight <= 0:
            raise RuntimeError("admission release without matching admit")
        self._inflight -= 1

    def retry_after_ms(self) -> int:
        """Structured backpressure hint for a shed ``begin``.

        Grows with instantaneous pressure (inflight over limit) and is
        jittered across ``[base, 2*base)`` of its scaled value so shed
        clients disperse instead of herding.
        """
        pressure = 1.0 + (self._inflight / self._limit)
        scaled = int(self._base_ms * pressure)
        return scaled + self._rng.randint(0, scaled)
