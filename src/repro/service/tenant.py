"""A tenant: one namespace = one scheduler + one WAL-backed store + one
growable relative-atomicity spec.

Tenants are the service's unit of isolation.  Each owns a
:class:`~repro.engine.kvstore.KVStore`, a protocol scheduler built by
:func:`repro.protocols.make_scheduler`, a
:class:`~repro.core.atomicity.RelativeAtomicitySpec` grown one
transaction at a time as sessions arrive (see
:meth:`~repro.core.atomicity.RelativeAtomicitySpec.declare_transaction`),
and an ``asyncio.Lock`` serialising all scheduler/store mutation — the
schedulers are synchronous single-writer machines, and the lock is what
makes thousands of concurrent connections present them a legal history.

All methods here are synchronous and must be called with the tenant
lock held; the async orchestration (WAIT retries, deadlines, drain)
lives in :mod:`~repro.service.server`.

The tenant also owns the **survivor invariant** check
(:meth:`Tenant.certify`): the committed projection of the scheduler's
history must be relatively serializable under
``spec.restricted_to(survivors)``, and — once quiesced — the live
store's state must equal a fault-free replay of exactly the survivors,
plus the Theorem 1 witness replay.  This is the same certificate the
offline fault campaigns compute, applied to a live server.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.engine.executor import ScheduleExecutor, Semantics
from repro.engine.kvstore import KVStore
from repro.errors import NotationError, ReproError, SpecError
from repro.obs.events import EventKind
from repro.protocols import make_scheduler
from repro.protocols.base import Decision
from repro.service import wire
from repro.service.session import Session, SessionState

__all__ = [
    "CertificationResult",
    "RequestRefused",
    "SPEC_PROTOCOLS",
    "StepResult",
    "Tenant",
]

#: Protocols that enforce a relative atomicity spec (and therefore may
#: accept per-session breakpoint declarations).
SPEC_PROTOCOLS = frozenset({"rel-locking", "rsgt"})


class RequestRefused(ReproError):
    """A request the tenant rejects without touching scheduler state.

    Carries the wire error code so the server can answer structurally.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class StepResult:
    """Outcome of one operation step, pre-digested for the server.

    Attributes:
        status: ``"granted"`` / ``"wait"`` / ``"aborted"``.
        op_label: the operation's notation label (``r3[x]``).
        value: the read result or written value (granted steps only).
        reason: machine-readable cause for wait/abort outcomes.
        closed: sessions the step closed (protocol victims), for the
            server to release admission slots on.
        self_aborted: whether the requesting session is among the dead.
    """

    status: str
    op_label: str = ""
    value: Any = None
    reason: str = ""
    closed: tuple[Session, ...] = ()
    self_aborted: bool = False


@dataclass(frozen=True)
class CertificationResult:
    """The survivor invariant, evaluated against the live tenant.

    ``state_ok`` / ``witness_ok`` are ``None`` when the tenant was not
    quiesced (in-flight sessions make the store legitimately diverge
    from any committed-only replay) or, for ``witness_ok``, when the
    projection is not certifiable.
    """

    tenant: str
    protocol: str
    survivors: tuple[int, ...]
    certified: bool
    quiesced: bool
    state_ok: bool | None
    witness_ok: bool | None

    @property
    def ok(self) -> bool:
        """No invariant violated (unchecked state counts as intact)."""
        return (
            self.certified
            and self.state_ok is not False
            and self.witness_ok is not False
        )

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "protocol": self.protocol,
            "survivors": list(self.survivors),
            "committed": len(self.survivors),
            "certified": self.certified,
            "quiesced": self.quiesced,
            "state_ok": self.state_ok,
            "witness_ok": self.witness_ok,
            "ok": self.ok,
        }


class Tenant:
    """One isolated namespace of the service (see module docstring).

    Args:
        name: tenant name (the wire-level namespace key).
        protocol: canonical protocol name (``PROTOCOL_NAMES``).
        initial: seed objects for the store.
        watchdog_threshold: scheduler stall watchdog override.
        max_program_ops: longest program a ``begin`` may declare.
    """

    def __init__(
        self,
        name: str,
        protocol: str,
        initial: dict[str, Any] | None = None,
        *,
        watchdog_threshold: int | None = 64,
        max_program_ops: int = 64,
    ) -> None:
        self.name = name
        self.protocol = protocol
        self.initial_state: dict[str, Any] = dict(initial or {})
        self.store = KVStore(self.initial_state)
        self.spec = RelativeAtomicitySpec([])
        self.scheduler = make_scheduler(
            protocol, self.spec if protocol in SPEC_PROTOCOLS else None
        )
        self.scheduler.watchdog_threshold = watchdog_threshold
        self.max_program_ops = max_program_ops
        self.lock = asyncio.Lock()
        self.sessions: dict[int, Session] = {}
        self.committed: dict[int, Transaction] = {}
        #: tx_id -> close cause, for post-mortem error messages.
        self.closed: dict[int, str] = {}
        #: (tx_id, op_index) -> value actually written, for replay.
        self.write_values: dict[tuple[int, int], Any] = {}
        self.crashes = 0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def new_session(
        self,
        tx_id: int,
        program: str,
        cuts: tuple[int, ...],
        *,
        now: float,
        deadline: float,
    ) -> Session:
        """Declare and admit a fresh transaction; returns its session.

        ``tx_id`` is assigned by the server (globally unique, so wire
        requests can name a session without repeating the tenant).

        Raises:
            RequestRefused: malformed program, cuts out of range, or
                cuts declared against a protocol that ignores them.
        """
        if cuts and self.protocol not in SPEC_PROTOCOLS:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"protocol {self.protocol!r} does not enforce relative "
                "atomicity; declare no cuts or use rel-locking/rsgt",
            )
        try:
            transaction = Transaction.from_notation(tx_id, program)
        except (NotationError, ReproError) as exc:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, f"bad program: {exc}"
            ) from exc
        if len(transaction) > self.max_program_ops:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"program declares {len(transaction)} ops; the tenant "
                f"caps programs at {self.max_program_ops}",
            )
        try:
            self.spec.declare_transaction(transaction, cuts)
        except SpecError as exc:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, f"bad cuts: {exc}"
            ) from exc
        self.scheduler.admit(transaction)
        bus = self.scheduler.bus
        if bus.active:
            # Service-lifecycle events carry the tenant name so the
            # flight recorder can ring-key them; admission opens the
            # transaction's lifecycle span.
            bus.emit(
                EventKind.ADMIT,
                tx=tx_id,
                protocol=self.protocol,
                extra=(("tenant", self.name),),
            )
        session = Session(
            tx_id=tx_id,
            tenant=self.name,
            transaction=transaction,
            deadline=deadline,
            started=now,
        )
        self.sessions[tx_id] = session
        return session

    def step(
        self,
        session: Session,
        *,
        value: Any = None,
        expect: str | None = None,
        obj: str | None = None,
    ) -> StepResult:
        """Submit the session's next operation to the scheduler.

        ``expect`` (``"r"``/``"w"``) and ``obj`` let read/write verbs
        assert they are where they think they are in the program; a
        mismatch refuses the request without consuming the operation.
        """
        if session.remaining_ops == 0:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                "program exhausted; commit or abort the session",
            )
        op = session.transaction[session.cursor]
        if expect is not None and op.op_type.value != expect:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"next operation is {op.label}, not a {expect!r}",
            )
        if obj is not None and op.obj != obj:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"next operation is {op.label}, not on {obj!r}",
            )
        if op.is_read and op.obj not in self.store:
            # Refuse before the scheduler sees the op: a granted read
            # that then failed in the store would corrupt the history.
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"object {op.obj!r} does not exist in tenant "
                f"{self.name!r}",
            )
        outcome = self.scheduler.request(op)
        reason = outcome.reason.code if outcome.reason else ""
        if outcome.decision is Decision.WAIT:
            return StepResult("wait", op_label=op.label, reason=reason)
        if outcome.decision is Decision.ABORT:
            closed = tuple(
                self._kill(victim, reason or "protocol-abort")
                for victim in outcome.victims
                if victim in self.sessions
            )
            return StepResult(
                "aborted",
                op_label=op.label,
                reason=reason,
                closed=closed,
                self_aborted=not session.is_open,
            )
        # GRANT: apply to the store.
        if not session.begun_in_store:
            self.store.begin(session.tx_id)
            session.begun_in_store = True
        if op.is_read:
            result = self.store.read(session.tx_id, op.obj)
        else:
            result = (
                value
                if value is not None
                else f"T{session.tx_id}.{session.cursor}"
            )
            self.store.write(session.tx_id, op.obj, result)
            self.write_values[(session.tx_id, session.cursor)] = result
        session.cursor += 1
        bus = self.scheduler.bus
        if bus.active:
            # The WAL-apply instant completes the op's lifecycle: the
            # scheduler's GRANT said "legal", this says "done".
            bus.emit(
                EventKind.APPLY,
                tx=session.tx_id,
                op=op.label,
                protocol=self.protocol,
                extra=(("tenant", self.name),),
            )
        return StepResult("granted", op_label=op.label, value=result)

    def commit(self, session: Session) -> None:
        """Finish the session: scheduler commit + store WAL merge."""
        if session.remaining_ops:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"{session.remaining_ops} declared ops not yet "
                "executed; a session commits only complete programs",
            )
        self.scheduler.finish(session.tx_id)
        if session.begun_in_store:
            self.store.commit(session.tx_id)
        session.close(SessionState.COMMITTED)
        self.committed[session.tx_id] = session.transaction
        del self.sessions[session.tx_id]
        self.closed[session.tx_id] = "committed"

    def abort(self, session: Session, reason: str) -> None:
        """Abort-and-undo an open session (voluntary, deadline, drain,
        disconnect)."""
        self._kill(session.tx_id, reason)

    def _kill(self, tx_id: int, reason: str) -> Session:
        session = self.sessions[tx_id]
        self.scheduler.remove(tx_id)
        if (
            session.begun_in_store
            and tx_id in self.store.open_transactions
        ):
            self.store.abort(tx_id)
        session.close(SessionState.ABORTED, reason)
        del self.sessions[tx_id]
        self.closed[tx_id] = reason
        return session

    def crash(self) -> tuple[Session, ...]:
        """Crash-and-recover the store; every in-flight session dies.

        Mirrors :class:`~repro.faults.injector.FaultInjector`'s CRASH
        handling: the WAL rolls everything back in one sweep, then the
        sessions that had granted operations are removed from the
        scheduler.  Admitted sessions with no progress survive — they
        have no store state to lose.
        """
        self.store.crash()
        self.store.recover()
        self.crashes += 1
        closed = []
        for tx_id in sorted(self.sessions):
            session = self.sessions[tx_id]
            if session.cursor == 0:
                continue
            self.scheduler.remove(tx_id)
            session.begun_in_store = False
            session.close(SessionState.ABORTED, "store-crash")
            del self.sessions[tx_id]
            self.closed[tx_id] = "store-crash"
            closed.append(session)
        return tuple(closed)

    # ------------------------------------------------------------------
    # Certification
    # ------------------------------------------------------------------
    def certify(self) -> CertificationResult:
        """Evaluate the survivor invariant against the live history."""
        survivors = tuple(sorted(self.committed))
        committed_set = frozenset(survivors)
        quiesced = not self.sessions
        projection = Schedule(
            [self.committed[tx_id] for tx_id in survivors],
            tuple(
                op
                for op in self.scheduler.history
                if op.tx in committed_set
            ),
        )
        rsg: RelativeSerializationGraph | None = None
        certified = True
        if survivors:
            rsg = RelativeSerializationGraph(
                projection, self.spec.restricted_to(survivors)
            )
            certified = rsg.is_acyclic
        state_ok: bool | None = None
        witness_ok: bool | None = None
        if quiesced:
            semantics = Semantics(
                {
                    key: (lambda _cur, _reads, v=value: v)
                    for key, value in self.write_values.items()
                    if key[0] in committed_set
                }
            )
            live = self.store.snapshot()
            replay = ScheduleExecutor(self.initial_state, semantics).run(
                projection
            )
            state_ok = replay.final_state == live
            if certified and rsg is not None:
                witness = rsg.equivalent_relatively_serial_schedule()
                witness_ok = (
                    ScheduleExecutor(self.initial_state, semantics)
                    .run(witness)
                    .final_state
                    == live
                )
            elif certified:
                witness_ok = state_ok
        return CertificationResult(
            tenant=self.name,
            protocol=self.protocol,
            survivors=survivors,
            certified=certified,
            quiesced=quiesced,
            state_ok=state_ok,
            witness_ok=witness_ok,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Plain-data tenant snapshot for ``health`` responses."""
        return {
            "protocol": self.protocol,
            "open_sessions": len(self.sessions),
            "committed": len(self.committed),
            "closed": len(self.closed) - len(self.committed),
            "objects": len(self.store),
            "wal_size": self.store.wal_size(),
            "crashes": self.crashes,
        }
