"""The NDJSON wire protocol: one request line in, one response line out.

Requests are JSON objects with a ``do`` verb plus verb-specific fields
and an optional client-chosen ``id`` that the response echoes.
Responses carry ``ok: true`` plus result fields, or ``ok: false`` with a
stable machine-readable ``error`` code, a human-readable ``message``,
and — for load-shed and draining rejections — a structured
``retry_after_ms`` hint so well-behaved clients back off instead of
hammering.

Codes are part of the protocol contract; clients switch on them, so
they only ever grow, never change meaning.
"""

from __future__ import annotations

import json

__all__ = [
    "ERR_ABORTED",
    "ERR_BAD_REQUEST",
    "ERR_DEADLINE",
    "ERR_DRAINING",
    "ERR_FORBIDDEN",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_UNKNOWN_TXN",
    "VERBS",
    "encode",
    "err",
    "ok",
]

#: The server is at its in-flight session budget; retry after the hint.
ERR_OVERLOADED = "overloaded"
#: The server is draining (SIGTERM received); find another replica.
ERR_DRAINING = "draining"
#: The session or operation deadline expired; the txn was undone.
ERR_DEADLINE = "deadline"
#: The transaction was aborted (protocol victim, store crash, explicit
#: abort, disconnect); ``reason`` says why.  Begin a fresh session.
ERR_ABORTED = "txn-aborted"
#: Malformed request: unknown verb, bad program, op out of order, ...
ERR_BAD_REQUEST = "bad-request"
#: No open session with that txn id (never existed, or long closed).
ERR_UNKNOWN_TXN = "unknown-txn"
#: The verb exists but is disabled (e.g. ``crash`` without chaos mode).
ERR_FORBIDDEN = "forbidden"
#: The server hit an unexpected error; the request had no effect.
ERR_INTERNAL = "internal"

#: Every verb the dispatcher accepts.
VERBS = (
    "begin",
    "read",
    "write",
    "step",
    "commit",
    "abort",
    "tenant",
    "health",
    "metrics",
    "metricsx",
    "inspect",
    "dump",
    "certify",
    "crash",
)


def ok(req_id: object = None, **fields: object) -> dict:
    """A success response, echoing the request id when one was given."""
    payload: dict = {"ok": True}
    if req_id is not None:
        payload["id"] = req_id
    payload.update(fields)
    return payload


def err(
    code: str, message: str, req_id: object = None, **fields: object
) -> dict:
    """A failure response with a stable machine-readable code."""
    payload: dict = {"ok": False, "error": code, "message": message}
    if req_id is not None:
        payload["id"] = req_id
    payload.update(fields)
    return payload


def encode(payload: dict) -> bytes:
    """One response line, newline-terminated UTF-8 JSON."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"
