"""The asyncio front-end: accept, dispatch, retry, reap, drain.

One :class:`RsrServer` listens on plain TCP, speaks the
:mod:`~repro.service.wire` NDJSON protocol, and orchestrates the
synchronous per-tenant machinery in :mod:`~repro.service.tenant`:

* every scheduler/store mutation happens under the owning tenant's
  ``asyncio.Lock``, so concurrent connections present each scheduler a
  legal single-writer history;
* WAIT outcomes are retried server-side with exponential backoff and
  seeded jitter, bounded by the op deadline, and woken early when the
  waiting session is killed from elsewhere (victim, reaper, crash);
* a reaper task aborts-and-undoes sessions past their deadline even if
  their client went quiet;
* an abrupt disconnect aborts the connection's open sessions — this is
  what makes chaos-harness client kills safe by construction;
* SIGTERM starts a graceful drain: admission closes, in-flight sessions
  get :attr:`~repro.service.config.ServiceConfig.drain_timeout_s` to
  finish, stragglers are aborted-and-undone, the WAL is flushed, every
  tenant is certified, worker pools are torn down, and the process
  exits 0 iff the survivor invariant held everywhere.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import signal as signal_module
import time
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.obs.bus import RingBufferSink, TraceBus
from repro.obs.events import EventKind
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanCollector
from repro.parallel.executor import shutdown_pools
from repro.protocols import PROTOCOL_NAMES
from repro.service import wire
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.service.session import Session
from repro.service.tenant import RequestRefused, StepResult, Tenant

__all__ = ["RsrServer"]

#: Immediate re-request rounds after a protocol abort that victimised
#: *other* sessions (the requester's own op was not consumed).
_POST_ABORT_RETRIES = 16


class RsrServer:
    """The long-running relative-serializability transaction service.

    Args:
        config: all knobs (see :class:`~repro.service.config.
            ServiceConfig`).
        metrics: shared registry (a fresh one by default).
        trace_capacity: ring-buffer size of the shared trace bus the
            tenant schedulers emit into.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        trace_capacity: int = 4096,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        #: txn id -> owning tenant (kept after close for good errors;
        #: also the flight recorder's ring resolver input).
        self._txn_owner: dict[int, Tenant] = {}
        self.trace_sink = RingBufferSink(trace_capacity)
        #: Live request-lifecycle spans (same capacity as the raw ring).
        self.spans = SpanCollector(trace_capacity)
        #: Last-N events per tenant, auto-dumped on crash/watchdog/
        #: livelock when ``flight_dir`` is configured.
        self.recorder = FlightRecorder(
            self.config.flight_capacity,
            resolve=self._ring_of,
            directory=self.config.flight_dir,
        )
        self.bus = TraceBus(self.trace_sink, self.spans, self.recorder)
        self.admission = AdmissionController(
            self.config.max_sessions,
            self.config.retry_after_base_ms,
            random.Random(self.config.jitter_seed),
        )
        self._backoff_rng = random.Random(self.config.jitter_seed + 1)
        self.tenants: dict[str, Tenant] = {}
        self._next_txn = 1
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._reaper: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self._draining = False
        self._stopped = asyncio.Event()
        self._started_at: float | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.exit_code = 0
        self.drain_report: dict | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the listener and start the reaper; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes + 2,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_at = time.monotonic()
        self._reaper = asyncio.create_task(self._reap_loop())
        return self.host, self.port

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into a graceful drain."""
        loop = asyncio.get_running_loop()
        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            loop.add_signal_handler(sig, self.request_drain, sig.name)

    def request_drain(self, cause: str = "drain") -> None:
        """Kick off a drain from sync context (signal handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain(cause)
            )

    async def run(
        self,
        *,
        install_signals: bool = True,
        port_file: str | Path | None = None,
    ) -> int:
        """Start, serve until drained, return the exit code."""
        host, port = await self.start()
        if port_file is not None:
            Path(port_file).write_text(f"{host} {port}\n")
        if install_signals:
            self.install_signal_handlers()
        await self._stopped.wait()
        return self.exit_code

    async def drain(self, cause: str = "drain") -> dict:
        """Graceful shutdown: see the module docstring for the steps."""
        if self._draining:
            await self._stopped.wait()
            return self.drain_report or {}
        self._draining = True
        self.admission.start_drain()
        self.metrics.inc("service.drains")
        loop = asyncio.get_running_loop()
        grace_until = loop.time() + self.config.drain_timeout_s
        while loop.time() < grace_until and any(
            tenant.sessions for tenant in self.tenants.values()
        ):
            await asyncio.sleep(0.02)
        forced = 0
        for tenant in self.tenants.values():
            async with tenant.lock:
                for tx_id in sorted(tenant.sessions):
                    session = tenant.sessions.get(tx_id)
                    if session is not None and session.is_open:
                        tenant.abort(session, "draining")
                        self._release_slot(session)
                        forced += 1
                # Flush the WAL: every undo buffer is gone by now, and
                # recover() on a clean store is an (asserted) no-op.
                leftovers = tenant.store.recover()
                if leftovers:  # pragma: no cover - invariant violation
                    raise ReproError(
                        f"drain left live WAL entries for {sorted(leftovers)}"
                    )
        report: dict = {"cause": cause, "forced_aborts": forced, "ok": True}
        flight_dump = self.recorder.dump(f"drain-{cause}")
        if flight_dump is not None:
            report["flight_dump"] = str(flight_dump)
        if self.config.certify_on_drain:
            certs = []
            for tenant in self.tenants.values():
                async with tenant.lock:
                    cert = tenant.certify()
                certs.append(cert.to_dict())
                report["ok"] = report["ok"] and cert.ok
            report["certifications"] = certs
        self.drain_report = report
        self.exit_code = 0 if report["ok"] else 1
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge lingering connections shut so their handler tasks exit
        # cleanly instead of being cancelled at loop teardown.
        for writer in list(self._connections):
            writer.close()
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
        shutdown_pools()
        self._stopped.set()
        return report

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        owned: list[Session] = []
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: the stream limit tripped mid-line; the
                    # connection is unrecoverable (framing is lost).
                    break
                if not line:
                    break
                if len(line) > self.config.max_line_bytes:
                    response = wire.err(
                        wire.ERR_BAD_REQUEST, "request line too long"
                    )
                else:
                    response = await self._dispatch_line(line, owned)
                try:
                    writer.write(wire.encode(response))
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
        finally:
            self._connections.discard(writer)
            await self._abort_owned(owned, "disconnect")
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch_line(self, line: bytes, owned: list[Session]) -> dict:
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return wire.err(wire.ERR_BAD_REQUEST, f"bad request line: {exc}")
        req_id = request.get("id")
        verb = request.get("do")
        started = time.perf_counter()
        try:
            return await self._dispatch_verb(request, verb, req_id, owned)
        except RequestRefused as exc:
            return wire.err(exc.code, str(exc), req_id)
        except ReproError as exc:
            return wire.err(wire.ERR_BAD_REQUEST, str(exc), req_id)
        except Exception as exc:  # noqa: BLE001 - one request, one reply
            self.metrics.inc("service.internal_errors")
            return wire.err(
                wire.ERR_INTERNAL, f"{type(exc).__name__}: {exc}", req_id
            )
        finally:
            # Per-verb wall-clock latency distribution (microseconds;
            # wall-clock, so it lives in the histogram section that the
            # deterministic campaign reports never carry).
            if isinstance(verb, str) and verb in wire.VERBS:
                self.metrics.hist(
                    "service.verb_latency_us",
                    int((time.perf_counter() - started) * 1_000_000),
                    verb=verb,
                )

    async def _dispatch_verb(
        self, request: dict, verb: object, req_id: object,
        owned: list[Session],
    ) -> dict:
        if verb == "begin":
            return await self._do_begin(request, owned)
        if verb in ("read", "write", "step"):
            return await self._do_op(request, verb)
        if verb == "commit":
            return await self._do_commit(request)
        if verb == "abort":
            return await self._do_abort(request)
        if verb == "tenant":
            return await self._do_tenant(request)
        if verb == "health":
            return self._do_health(request)
        if verb == "metrics":
            return self._do_metrics(request)
        if verb == "metricsx":
            return wire.ok(req_id, exposition=self.metrics.to_prometheus())
        if verb == "inspect":
            return self._do_inspect(request)
        if verb == "dump":
            return self._do_dump(request)
        if verb == "certify":
            return await self._do_certify(request)
        if verb == "crash":
            return await self._do_crash(request)
        return wire.err(
            wire.ERR_BAD_REQUEST,
            f"unknown verb {verb!r}; expected one of {wire.VERBS}",
            req_id,
        )

    async def _abort_owned(
        self, owned: list[Session], reason: str
    ) -> None:
        """Undo a dead connection's open sessions (kill-safety)."""
        for session in owned:
            if not session.is_open:
                continue
            tenant = self.tenants.get(session.tenant)
            if tenant is None:  # pragma: no cover - tenants never die
                continue
            async with tenant.lock:
                if session.is_open:
                    tenant.abort(session, reason)
                    self._release_slot(session)
                    self.metrics.inc(
                        "service.aborts", tenant=tenant.name, cause=reason
                    )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def _do_begin(self, request: dict, owned: list[Session]) -> dict:
        req_id = request.get("id")
        if self._draining:
            return wire.err(
                wire.ERR_DRAINING, "server is draining; no new sessions",
                req_id,
            )
        if not self.admission.try_admit():
            self.metrics.inc("service.shed")
            hint = self.admission.retry_after_ms()
            # The hint distribution shows how hard shed clients are
            # being pushed back (BENCH_service.json reports it).
            self.metrics.hist("service.retry_after_ms", hint)
            return wire.err(
                wire.ERR_OVERLOADED,
                f"in-flight session budget ({self.admission.limit}) "
                "exhausted",
                req_id,
                retry_after_ms=hint,
            )
        try:
            tenant = self._tenant_for(request.get("tenant", "default"))
            program = request.get("program")
            if not isinstance(program, str) or not program.strip():
                raise RequestRefused(
                    wire.ERR_BAD_REQUEST,
                    "begin needs a non-empty 'program' string "
                    "(e.g. \"r[x] w[y]\")",
                )
            cuts = self._parse_cuts(request.get("cuts", ()))
            loop = asyncio.get_running_loop()
            now = loop.time()
            budget = self.config.session_timeout_s
            requested = request.get("deadline_ms")
            if requested is not None:
                if not isinstance(requested, (int, float)) or requested <= 0:
                    raise RequestRefused(
                        wire.ERR_BAD_REQUEST,
                        "deadline_ms must be a positive number",
                    )
                budget = min(budget, requested / 1000.0)
            tx_id = self._next_txn
            self._next_txn += 1
            async with tenant.lock:
                session = tenant.new_session(
                    tx_id, program, cuts, now=now, deadline=now + budget
                )
            self._txn_owner[tx_id] = tenant
        except BaseException:
            self.admission.release()
            raise
        owned.append(session)
        self.metrics.inc("service.begins", tenant=tenant.name)
        self.metrics.gauge("service.inflight_peak", self.admission.peak)
        return wire.ok(
            req_id,
            txn=tx_id,
            tenant=tenant.name,
            ops=[op.label for op in session.transaction.operations],
            deadline_ms=int(budget * 1000),
        )

    async def _do_op(self, request: dict, verb: str) -> dict:
        req_id = request.get("id")
        tenant, txn = self._locate(request)
        expect = {"read": "r", "write": "w"}.get(verb)
        obj = request.get("key")
        value = request.get("value")
        loop = asyncio.get_running_loop()
        op_deadline: float | None = None
        attempt = 0
        aborted_rounds = 0
        while True:
            wake = asyncio.Event()
            async with tenant.lock:
                session = tenant.sessions.get(txn)
                if session is None:
                    return self._closed_response(tenant, txn, req_id)
                now = loop.time()
                if op_deadline is None:
                    op_deadline = min(
                        now + self.config.op_timeout_s, session.deadline
                    )
                if now > session.deadline or now > op_deadline:
                    tenant.abort(session, "deadline")
                    self._release_slot(session)
                    self.metrics.inc(
                        "service.aborts", tenant=tenant.name, cause="deadline"
                    )
                    return wire.err(
                        wire.ERR_DEADLINE,
                        "operation deadline expired; session undone",
                        req_id,
                        txn=txn,
                    )
                result = tenant.step(
                    session, value=value, expect=expect, obj=obj
                )
                if result.status == "wait":
                    session.add_waiter(wake)
            if result.status == "granted":
                self.metrics.inc(
                    "service.ops", tenant=tenant.name, kind=result.op_label[0]
                )
                return wire.ok(
                    req_id,
                    txn=txn,
                    op=result.op_label,
                    index=session.cursor - 1,
                    value=result.value,
                    remaining=session.remaining_ops,
                )
            if result.status == "aborted":
                self._account_victims(tenant, result)
                if result.self_aborted:
                    return wire.err(
                        wire.ERR_ABORTED,
                        f"transaction aborted by the {tenant.protocol} "
                        f"protocol ({result.reason or 'conflict'})",
                        req_id,
                        txn=txn,
                        reason=result.reason,
                    )
                aborted_rounds += 1
                if aborted_rounds > _POST_ABORT_RETRIES:
                    return wire.err(
                        wire.ERR_INTERNAL,
                        "operation not granted after repeated victim "
                        "aborts",
                        req_id,
                        txn=txn,
                    )
                continue
            # WAIT: back off (exponentially, jittered) and retry.
            self.metrics.inc("service.wait_retries", tenant=tenant.name)
            base = self.config.wait_retry_initial_ms * (2**attempt)
            capped = min(base, self.config.wait_retry_cap_ms)
            delay = (capped / 2 + self._backoff_rng.uniform(0, capped / 2)) / 1000.0
            attempt += 1
            if loop.time() + delay > op_deadline:
                # Sleeping past the deadline is pointless; expire now.
                async with tenant.lock:
                    session = tenant.sessions.get(txn)
                    if session is not None:
                        session.discard_waiter(wake)
                    if session is not None and session.is_open:
                        tenant.abort(session, "deadline")
                        self._release_slot(session)
                        self.metrics.inc(
                            "service.aborts",
                            tenant=tenant.name,
                            cause="deadline",
                        )
                        return wire.err(
                            wire.ERR_DEADLINE,
                            f"operation still blocked "
                            f"({result.reason or 'wait'}) at its "
                            "deadline; session undone",
                            req_id,
                            txn=txn,
                        )
                continue
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(wake.wait(), timeout=delay)
            session.discard_waiter(wake)

    async def _do_commit(self, request: dict) -> dict:
        req_id = request.get("id")
        tenant, txn = self._locate(request)
        loop = asyncio.get_running_loop()
        async with tenant.lock:
            session = tenant.sessions.get(txn)
            if session is None:
                return self._closed_response(tenant, txn, req_id)
            now = loop.time()
            if now > session.deadline:
                tenant.abort(session, "deadline")
                self._release_slot(session)
                self.metrics.inc(
                    "service.aborts", tenant=tenant.name, cause="deadline"
                )
                return wire.err(
                    wire.ERR_DEADLINE,
                    "session deadline expired before commit; undone",
                    req_id,
                    txn=txn,
                )
            tenant.commit(session)
            self._release_slot(session)
        latency_us = int((now - session.started) * 1_000_000)
        self.metrics.inc("service.commits", tenant=tenant.name)
        self.metrics.observe(
            "service.commit_latency_us", latency_us, tenant=tenant.name
        )
        return wire.ok(req_id, txn=txn, committed=True, latency_us=latency_us)

    async def _do_abort(self, request: dict) -> dict:
        req_id = request.get("id")
        tenant, txn = self._locate(request)
        async with tenant.lock:
            session = tenant.sessions.get(txn)
            if session is None:
                cause = tenant.closed.get(txn)
                if cause == "committed":
                    return wire.err(
                        wire.ERR_BAD_REQUEST,
                        f"txn {txn} already committed; cannot abort",
                        req_id,
                    )
                if cause is not None:
                    return wire.ok(req_id, txn=txn, aborted=True, reason=cause)
                return wire.err(
                    wire.ERR_UNKNOWN_TXN, f"no session for txn {txn}", req_id
                )
            tenant.abort(session, "client-abort")
            self._release_slot(session)
        self.metrics.inc(
            "service.aborts", tenant=tenant.name, cause="client-abort"
        )
        return wire.ok(req_id, txn=txn, aborted=True, reason="client-abort")

    async def _do_tenant(self, request: dict) -> dict:
        req_id = request.get("id")
        name = request.get("tenant")
        if not isinstance(name, str) or not name:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, "tenant needs a non-empty 'tenant' name"
            )
        protocol = request.get("protocol", self.config.default_protocol)
        if protocol not in PROTOCOL_NAMES:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST,
                f"unknown protocol {protocol!r}; expected one of "
                f"{PROTOCOL_NAMES}",
            )
        objects = request.get("objects", {})
        if not isinstance(objects, dict):
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, "'objects' must be a JSON object"
            )
        existing = self.tenants.get(name)
        if existing is not None:
            if existing.protocol != protocol:
                raise RequestRefused(
                    wire.ERR_BAD_REQUEST,
                    f"tenant {name!r} already exists with protocol "
                    f"{existing.protocol!r}",
                )
            return wire.ok(
                req_id, tenant=name, protocol=protocol, existing=True
            )
        self._make_tenant(name, protocol, objects)
        return wire.ok(req_id, tenant=name, protocol=protocol, existing=False)

    def _do_health(self, request: dict) -> dict:
        req_id = request.get("id")
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return wire.ok(
            req_id,
            status="draining" if self._draining else "serving",
            uptime_s=round(uptime, 3),
            inflight=self.admission.inflight,
            inflight_peak=self.admission.peak,
            shed=self.admission.shed,
            tenants={
                name: tenant.stats()
                for name, tenant in sorted(self.tenants.items())
            },
        )

    def _do_metrics(self, request: dict) -> dict:
        req_id = request.get("id")
        name = request.get("tenant")
        if name is None:
            return wire.ok(req_id, metrics=self.metrics.to_dict())
        if not isinstance(name, str) or name not in self.tenants:
            return wire.err(
                wire.ERR_BAD_REQUEST,
                f"no tenant {name!r}; known: {sorted(self.tenants)}",
                req_id,
            )
        return wire.ok(
            req_id,
            tenant=name,
            metrics=self.metrics.filtered(tenant=name).to_dict(),
        )

    def _do_inspect(self, request: dict) -> dict:
        """Live wait-for/donation/RSG introspection (no locks: the whole
        handler is synchronous, so no tenant mutation can interleave)."""
        req_id = request.get("id")
        name = request.get("tenant")
        if name is not None and name not in self.tenants:
            return wire.err(
                wire.ERR_BAD_REQUEST,
                f"no tenant {name!r}; known: {sorted(self.tenants)}",
                req_id,
            )
        targets = (
            {name: self.tenants[name]}
            if name is not None
            else dict(sorted(self.tenants.items()))
        )
        tenants = {}
        for tenant_name, tenant in targets.items():
            snap = tenant.scheduler.snapshot()
            snap["open_sessions"] = sorted(tenant.sessions)
            snap["waiting_sessions"] = sorted(
                tx_id
                for tx_id, session in tenant.sessions.items()
                if session.is_waiting
            )
            tenants[tenant_name] = snap
        return wire.ok(
            req_id,
            status="draining" if self._draining else "serving",
            inflight=self.admission.inflight,
            shed=self.admission.shed,
            open_spans=list(self.spans.open_transactions),
            flight_rings=self.recorder.ring_sizes(),
            tenants=tenants,
        )

    def _do_dump(self, request: dict) -> dict:
        """Flight-recorder dump: always returns the JSONL inline, and
        additionally writes a file when ``flight_dir`` is configured.
        The wire never chooses the path — a remote client must not pick
        filesystem locations for the server."""
        req_id = request.get("id")
        cause = str(request.get("cause", "dump-verb"))
        written = self.recorder.dump(cause)
        fields: dict = {
            "rings": self.recorder.ring_sizes(),
            "dump": self.recorder.dump_text(cause),
        }
        if written is not None:
            fields["path"] = str(written)
        return wire.ok(req_id, **fields)

    async def _do_certify(self, request: dict) -> dict:
        req_id = request.get("id")
        name = request.get("tenant")
        if name is not None and name not in self.tenants:
            return wire.err(
                wire.ERR_BAD_REQUEST, f"no tenant {name!r}", req_id
            )
        targets = (
            [self.tenants[name]] if name is not None
            else list(self.tenants.values())
        )
        certs = []
        all_ok = True
        for tenant in targets:
            async with tenant.lock:
                cert = tenant.certify()
            certs.append(cert.to_dict())
            all_ok = all_ok and cert.ok
        return wire.ok(req_id, certifications=certs, all_ok=all_ok)

    async def _do_crash(self, request: dict) -> dict:
        req_id = request.get("id")
        if not self.config.chaos:
            return wire.err(
                wire.ERR_FORBIDDEN,
                "the crash verb requires the server to run with "
                "chaos=True (repro serve --chaos)",
                req_id,
            )
        name = request.get("tenant", "default")
        tenant = self.tenants.get(name)
        if tenant is None:
            return wire.err(
                wire.ERR_BAD_REQUEST, f"no tenant {name!r}", req_id
            )
        async with tenant.lock:
            closed = tenant.crash()
            for session in closed:
                self._release_slot(session)
        # The CRASH event routes to the tenant's flight-recorder ring
        # and (with a flight_dir) triggers an automatic dump.
        self.bus.emit(
            EventKind.CRASH,
            protocol="store",
            extra=(
                ("aborted", [session.tx_id for session in closed]),
                ("tenant", name),
            ),
        )
        self.metrics.inc("service.crashes", tenant=name)
        for _ in closed:
            self.metrics.inc(
                "service.aborts", tenant=name, cause="store-crash"
            )
        return wire.ok(
            req_id,
            crashed=True,
            tenant=name,
            aborted=[session.tx_id for session in closed],
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _ring_of(self, raw: tuple) -> str:
        """Flight-recorder ring key of one raw event tuple.

        The event's transaction maps to its owning tenant; events
        without one (store crashes, drains) may carry a ``tenant``
        extra; everything else lands in the ``global`` ring.
        """
        tx = raw[3]
        if tx is not None:
            tenant = self._txn_owner.get(tx)
            if tenant is not None:
                return tenant.name
        for key, value in raw[7]:
            if key == "tenant":
                return str(value)
        return "global"

    def _tenant_for(self, name: object) -> Tenant:
        if not isinstance(name, str) or not name:
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, "'tenant' must be a non-empty string"
            )
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = self._make_tenant(
                name, self.config.default_protocol, {}
            )
        return tenant

    def _make_tenant(
        self, name: str, protocol: str, objects: dict[str, Any]
    ) -> Tenant:
        tenant = Tenant(
            name,
            protocol,
            objects,
            watchdog_threshold=self.config.watchdog_threshold,
            max_program_ops=self.config.max_program_ops,
        )
        tenant.scheduler.bus = self.bus
        self.tenants[name] = tenant
        self.metrics.inc("service.tenants_created")
        return tenant

    def _locate(self, request: dict) -> tuple[Tenant, int]:
        txn = request.get("txn")
        if not isinstance(txn, int):
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, "'txn' must be an integer"
            )
        tenant = self._txn_owner.get(txn)
        if tenant is None:
            raise RequestRefused(
                wire.ERR_UNKNOWN_TXN, f"no session for txn {txn}"
            )
        return tenant, txn

    def _closed_response(
        self, tenant: Tenant, txn: int, req_id: object
    ) -> dict:
        cause = tenant.closed.get(txn)
        if cause == "committed":
            return wire.err(
                wire.ERR_BAD_REQUEST,
                f"txn {txn} already committed",
                req_id,
                txn=txn,
            )
        if cause == "deadline":
            return wire.err(
                wire.ERR_DEADLINE,
                f"txn {txn} exceeded its deadline and was undone",
                req_id,
                txn=txn,
            )
        if cause is not None:
            return wire.err(
                wire.ERR_ABORTED,
                f"txn {txn} was aborted ({cause})",
                req_id,
                txn=txn,
                reason=cause,
            )
        return wire.err(
            wire.ERR_UNKNOWN_TXN, f"no session for txn {txn}", req_id
        )

    def _parse_cuts(self, raw: object) -> tuple[int, ...]:
        if raw is None:
            return ()
        if not isinstance(raw, (list, tuple)) or not all(
            isinstance(c, int) for c in raw
        ):
            raise RequestRefused(
                wire.ERR_BAD_REQUEST, "'cuts' must be a list of integers"
            )
        return tuple(raw)

    def _release_slot(self, session: Session) -> None:
        if not session.slot_released:
            session.slot_released = True
            self.admission.release()

    def _account_victims(self, tenant: Tenant, result: StepResult) -> None:
        for session in result.closed:
            self._release_slot(session)
            self.metrics.inc(
                "service.aborts",
                tenant=tenant.name,
                cause=result.reason or "protocol-abort",
            )

    async def _reap_loop(self) -> None:
        """Expire sessions whose clients went quiet past the deadline."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.reap_interval_s)
            for tenant in list(self.tenants.values()):
                if not tenant.sessions:
                    continue
                async with tenant.lock:
                    now = loop.time()
                    for tx_id in sorted(tenant.sessions):
                        session = tenant.sessions.get(tx_id)
                        if (
                            session is not None
                            and session.is_open
                            and now > session.deadline
                        ):
                            tenant.abort(session, "deadline")
                            self._release_slot(session)
                            self.metrics.inc(
                                "service.aborts",
                                tenant=tenant.name,
                                cause="deadline",
                            )
                            self.metrics.inc(
                                "service.reaped", tenant=tenant.name
                            )
