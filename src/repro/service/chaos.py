"""Live chaos: seeded fault plans replayed against a running server.

The offline fault campaigns (:mod:`repro.faults.campaign`) certify the
survivor invariant under a deterministic tick loop.  This harness
certifies the same invariant against the *live* asyncio service, where
interleaving is whatever the network and event loop produce:

* per-transaction faults from a seeded :func:`~repro.faults.plan.
  random_plan` are acted out by the clients themselves — KILL becomes
  an abrupt transport teardown mid-session (no goodbye; the server must
  undo on its own), STALL becomes a client that goes quiet between
  operations, ABORT becomes a voluntary abort followed by a fresh
  session (the service's re-incarnation model);
* store CRASH events fire through the chaos-gated ``crash`` verb once
  the fleet's cumulative granted-op count passes the trigger, exactly
  like the injector's global counter;
* when the dust settles the harness polls the server to quiescence and
  asks it to certify: the committed projection must be relatively
  serializable under ``spec.restricted_to(survivors)`` and the live
  state must equal a fault-free replay of exactly the survivors (plus
  the Theorem 1 witness replay).  It also cross-checks that the
  server's survivor set is precisely the transactions whose commit was
  acknowledged to a client — no lost or phantom commits.

The invariant must hold on *every* interleaving, so non-determinism
here is a feature: each wall-clock run explores a different schedule,
while the workload and fault plan stay pinned by the seed.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from repro.core.transactions import Transaction
from repro.errors import ReproError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, random_plan
from repro.service import wire
from repro.service.client import ServiceClient, ServiceError
from repro.service.tenant import SPEC_PROTOCOLS
from repro.sim.metrics import nearest_rank
from repro.workloads.random_schedules import random_transactions

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run (workload + fault plan, all seeded).

    Attributes:
        clients: concurrent client sessions (one transaction template
            each; aborted incarnations retry as fresh sessions).
        seed: master seed for workload, cuts, fault plan, and pacing.
        protocol: tenant protocol under test.
        tenant: tenant namespace the run creates and uses.
        n_objects: object pool size (seeded as ``x0..``, value "init").
        ops_range: inclusive (lo, hi) program length range.
        write_probability: per-op write probability.
        cut_probability: per-breakpoint probability of declaring a cut
            (spec-aware protocols only).
        abort_rate / stall_rate / kill_rate / crash_rate: fault-plan
            rates, as in :func:`~repro.faults.plan.random_plan`.
        crash_at: explicit extra store-crash trigger (global granted-op
            count), on top of whatever the plan draws.
        stall_ms: how long one stalled request goes quiet.
        max_attempts: incarnations per client before giving up.
        deadline_ms: per-session deadline requested from the server.
        settle_timeout_s: how long to poll for quiescence at the end.
    """

    clients: int = 50
    seed: int = 0
    protocol: str = "rsgt"
    tenant: str = "chaos"
    n_objects: int = 8
    ops_range: tuple[int, int] = (2, 5)
    write_probability: float = 0.5
    cut_probability: float = 0.5
    abort_rate: float = 0.05
    stall_rate: float = 0.10
    kill_rate: float = 0.05
    crash_rate: float = 0.0
    crash_at: int | None = None
    stall_ms: int = 5
    max_attempts: int = 4
    deadline_ms: int = 10_000
    settle_timeout_s: float = 5.0


@dataclass
class ChaosReport:
    """What happened, and whether the survivor invariant held."""

    clients: int
    committed: int
    killed: int
    crashes: int
    attempts: int
    shed: int
    certified: bool
    quiesced: bool
    state_ok: bool | None
    witness_ok: bool | None
    survivors_match: bool
    wall_s: float
    tx_per_s: float
    p50_ms: int | None
    p99_ms: int | None
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The survivor invariant, end to end, on this live run."""
        return (
            self.certified
            and self.quiesced
            and self.state_ok is True
            and self.witness_ok is not False
            and self.survivors_match
        )

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "committed": self.committed,
            "killed": self.killed,
            "crashes": self.crashes,
            "attempts": self.attempts,
            "shed": self.shed,
            "certified": self.certified,
            "quiesced": self.quiesced,
            "state_ok": self.state_ok,
            "witness_ok": self.witness_ok,
            "survivors_match": self.survivors_match,
            "wall_s": round(self.wall_s, 3),
            "tx_per_s": round(self.tx_per_s, 1),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "errors": dict(sorted(self.errors.items())),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"chaos: {self.clients} clients, {self.committed} committed, "
            f"{self.killed} killed, {self.crashes} store crashes, "
            f"{self.shed} shed",
            f"throughput: {self.tx_per_s:.1f} tx/s over {self.wall_s:.2f}s"
            + (
                f" (p50 {self.p50_ms} ms, p99 {self.p99_ms} ms)"
                if self.p50_ms is not None
                else ""
            ),
            f"survivor invariant: certified={self.certified} "
            f"state_ok={self.state_ok} witness_ok={self.witness_ok} "
            f"survivors_match={self.survivors_match} -> "
            + ("OK" if self.ok else "VIOLATED"),
        ]
        if self.errors:
            lines.append(f"client errors: {dict(sorted(self.errors.items()))}")
        return "\n".join(lines)


class _Shared:
    """Fleet-wide state: the global op counter and crash triggers."""

    def __init__(
        self, triggers: list[int], admin: ServiceClient, tenant: str
    ) -> None:
        self.granted = 0
        self.triggers = sorted(triggers)
        self.fired = 0
        self.crashes = 0
        self.admin = admin
        self.tenant = tenant

    async def note_grant(self) -> None:
        self.granted += 1
        while (
            self.fired < len(self.triggers)
            and self.granted >= self.triggers[self.fired]
        ):
            # Claim the trigger before awaiting so a concurrent client
            # cannot double-fire it (the loop is single-threaded).
            self.fired += 1
            try:
                await self.admin.crash(self.tenant)
                self.crashes += 1
            except (ServiceError, ConnectionError):
                pass


class _ClientOutcome:
    __slots__ = (
        "attempts",
        "committed_txn",
        "errors",
        "killed",
        "latency_ms",
    )

    def __init__(self) -> None:
        self.attempts = 0
        self.committed_txn: int | None = None
        self.killed = False
        self.latency_ms: int | None = None
        self.errors: dict[str, int] = {}

    def note_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1


def _pick_cuts(
    template: Transaction, rng: random.Random, probability: float
) -> tuple[int, ...]:
    return tuple(
        cut
        for cut in range(1, len(template))
        if rng.random() < probability
    )


async def _run_client(
    idx: int,
    template: Transaction,
    events: tuple[FaultEvent, ...],
    config: ChaosConfig,
    host: str,
    port: int,
    shared: _Shared,
) -> _ClientOutcome:
    outcome = _ClientOutcome()
    rng = random.Random(config.seed * 1_000_003 + idx)
    program = " ".join(f"{op.op_type.value}[{op.obj}]" for op in template)
    cuts = (
        _pick_cuts(template, rng, config.cut_probability)
        if config.protocol in SPEC_PROTOCOLS
        else ()
    )
    kills = [e for e in events if e.kind is FaultKind.KILL]
    aborts = [e for e in events if e.kind is FaultKind.ABORT]
    stalls = [e for e in events if e.kind is FaultKind.STALL]
    fired: set[FaultEvent] = set()
    requests = 0
    client = await ServiceClient.connect(host, port)
    try:
        for _ in range(config.max_attempts):
            outcome.attempts += 1
            try:
                begun = await client.begin_with_retry(
                    program,
                    tenant=config.tenant,
                    cuts=cuts,
                    deadline_ms=config.deadline_ms,
                )
            except (ServiceError, ConnectionError) as exc:
                if isinstance(exc, ServiceError):
                    outcome.note_error(exc.code)
                    if exc.code == wire.ERR_DRAINING:
                        return outcome
                    continue
                return outcome
            txn = begun["txn"]
            started = time.perf_counter()
            session_dead = False
            for op in template.operations:
                requests += 1
                kill = next(
                    (
                        e
                        for e in kills
                        if e not in fired and requests >= e.at
                    ),
                    None,
                )
                if kill is not None:
                    fired.add(kill)
                    outcome.killed = True
                    client.kill()
                    return outcome
                if any(
                    e.at <= requests < e.at + e.duration for e in stalls
                ):
                    await asyncio.sleep(config.stall_ms / 1000.0)
                fault_abort = next(
                    (
                        e
                        for e in aborts
                        if e not in fired and requests >= e.at
                    ),
                    None,
                )
                if fault_abort is not None:
                    fired.add(fault_abort)
                    try:
                        await client.abort(txn)
                    except (ServiceError, ConnectionError):
                        pass
                    session_dead = True
                    break
                try:
                    if op.is_read:
                        await client.read(txn, op.obj)
                    else:
                        await client.write(
                            txn,
                            op.obj,
                            f"c{idx}.t{txn}.{op.index}",
                        )
                except ServiceError as exc:
                    outcome.note_error(exc.code)
                    session_dead = True
                    break
                except ConnectionError:
                    return outcome
                await shared.note_grant()
            if session_dead:
                await asyncio.sleep(rng.uniform(0, 0.005))
                continue
            try:
                await client.commit(txn)
            except ServiceError as exc:
                outcome.note_error(exc.code)
                await asyncio.sleep(rng.uniform(0, 0.005))
                continue
            except ConnectionError:
                return outcome
            outcome.committed_txn = txn
            outcome.latency_ms = int(
                (time.perf_counter() - started) * 1000
            )
            return outcome
        return outcome
    finally:
        if not outcome.killed:
            await client.close()


async def run_chaos(
    config: ChaosConfig, host: str, port: int
) -> ChaosReport:
    """Act out one seeded chaos run against a live server and certify.

    The server must run with ``chaos=True`` when the plan contains
    store crashes (the ``crash`` verb is gated).
    """
    templates = random_transactions(
        config.clients,
        config.ops_range,
        config.n_objects,
        write_probability=config.write_probability,
        seed=config.seed,
    )
    plan: FaultPlan = random_plan(
        templates,
        config.seed + 1,
        abort_rate=config.abort_rate,
        stall_rate=config.stall_rate,
        kill_rate=config.kill_rate,
        crash_rate=config.crash_rate,
    )
    triggers = [e.at for e in plan.of_kind(FaultKind.CRASH)]
    if config.crash_at is not None:
        triggers.append(config.crash_at)
    admin = await ServiceClient.connect(host, port)
    try:
        await admin.tenant(
            config.tenant,
            config.protocol,
            objects={f"x{i}": "init" for i in range(config.n_objects)},
        )
        shared = _Shared(triggers, admin, config.tenant)
        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                _run_client(
                    idx,
                    template,
                    plan.for_tx(template.tx_id),
                    config,
                    host,
                    port,
                    shared,
                )
                for idx, template in enumerate(templates)
            )
        )
        wall = time.perf_counter() - started
        # Killed clients' server-side cleanup (disconnect aborts) races
        # with the gather; poll to quiescence before certifying so the
        # state check actually runs.
        quiesced = False
        settle_until = time.perf_counter() + config.settle_timeout_s
        while time.perf_counter() < settle_until:
            health = await admin.health()
            stats = health["tenants"].get(config.tenant, {})
            if stats.get("open_sessions", 0) == 0:
                quiesced = True
                break
            await asyncio.sleep(0.02)
        certification = await admin.certify(config.tenant)
        cert = certification["certifications"][0]
        health = await admin.health()
    finally:
        await admin.close()

    committed = sorted(
        o.committed_txn for o in outcomes if o.committed_txn is not None
    )
    if len(set(committed)) != len(committed):  # pragma: no cover
        raise ReproError("duplicate commit acknowledgements")
    latencies = sorted(
        o.latency_ms for o in outcomes if o.latency_ms is not None
    )
    errors: dict[str, int] = {}
    for o in outcomes:
        for code, count in o.errors.items():
            errors[code] = errors.get(code, 0) + count
    return ChaosReport(
        clients=config.clients,
        committed=len(committed),
        killed=sum(1 for o in outcomes if o.killed),
        crashes=shared.crashes,
        attempts=sum(o.attempts for o in outcomes),
        shed=health.get("shed", 0),
        certified=bool(cert["certified"]),
        quiesced=quiesced and bool(cert["quiesced"]),
        state_ok=cert["state_ok"],
        witness_ok=cert["witness_ok"],
        survivors_match=list(cert["survivors"]) == committed,
        wall_s=wall,
        tx_per_s=(len(committed) / wall) if wall > 0 else 0.0,
        p50_ms=nearest_rank(latencies, 50) if latencies else None,
        p99_ms=nearest_rank(latencies, 99) if latencies else None,
        errors=errors,
    )
