"""One client transaction in flight: declared program, cursor, deadlines.

A session is born by ``begin`` (program pre-declared, matching the
paper's transaction model), advances one operation per ``read`` /
``write`` / ``step`` request in program order, and dies by ``commit``,
``abort``, a protocol victim decision, a deadline, a store crash, a
disconnect, or drain.  Once closed it never reopens — a retrying client
begins a fresh session with a fresh txn id, which is what keeps the
scheduler's pre-declaration invariant honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.transactions import Transaction

__all__ = ["Session", "SessionState"]


class SessionState(enum.Enum):
    """Lifecycle of a session (OPEN is the only live state)."""

    OPEN = "open"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class Session:
    """Mutable per-transaction service state (guarded by the tenant lock).

    Attributes:
        tx_id: the tenant-assigned transaction id.
        tenant: owning tenant name.
        transaction: the pre-declared program, bound to ``tx_id``.
        deadline: monotonic loop time after which the session is undone.
        started: monotonic loop time of the ``begin``.
        cursor: index of the next operation to execute.
        state: lifecycle state.
        abort_reason: why the session died, when it died unhappy.
        begun_in_store: whether ``KVStore.begin`` ran (deferred to the
            first *granted* operation, so an early abort needs no undo).
    """

    tx_id: int
    tenant: str
    transaction: Transaction
    deadline: float
    started: float
    cursor: int = 0
    state: SessionState = SessionState.OPEN
    abort_reason: str | None = None
    begun_in_store: bool = False
    #: whether the server already returned this session's admission slot
    #: (sessions close from many paths; the slot must be freed once).
    slot_released: bool = False
    _waiters: list = field(default_factory=list, repr=False)

    @property
    def remaining_ops(self) -> int:
        """Operations not yet granted."""
        return len(self.transaction) - self.cursor

    @property
    def is_open(self) -> bool:
        return self.state is SessionState.OPEN

    @property
    def is_waiting(self) -> bool:
        """Whether a WAIT-retry loop is currently parked on this session."""
        return bool(self._waiters)

    def close(self, state: SessionState, reason: str | None = None) -> None:
        """Transition to a terminal state and wake any WAIT-retry loops
        parked on this session so they observe the death promptly."""
        self.state = state
        if reason is not None and self.abort_reason is None:
            self.abort_reason = reason
        for event in self._waiters:
            event.set()
        self._waiters.clear()

    def add_waiter(self, event) -> None:
        """Register an ``asyncio.Event`` set when the session closes."""
        self._waiters.append(event)

    def discard_waiter(self, event) -> None:
        try:
            self._waiters.remove(event)
        except ValueError:
            pass
