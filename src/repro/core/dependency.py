"""The ``depends-on`` relation (Section 2 of the paper).

``o2`` *directly depends on* ``o1`` in a schedule ``S`` if ``o1`` precedes
``o2`` in ``S`` and either both belong to the same transaction or they
conflict.  ``depends on`` is the transitive closure of that relation.

Figure 2 of the paper shows why the closure matters: ``w2[y]`` affects
``r1[z]`` through ``T3`` (``w2[y] -> r3[y] -> w3[z] -> r1[z]``) even though
the two never conflict directly, so a correctness test built on direct
conflicts alone would wrongly accept the schedule ``S1``.

The closure is computed with integer bitsets over schedule positions: one
reverse sweep over the schedule, OR-ing successor reachability — compact
and fast enough to sit under every checker in the library.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.operations import Operation
from repro.core.schedules import Schedule, conflicts
from repro.graphs.digraph import DiGraph

__all__ = ["DependencyRelation"]


class DependencyRelation:
    """The ``depends-on`` relation of one schedule.

    Args:
        schedule: the schedule to analyze.
        transitive: when ``True`` (the paper's definition) the relation is
            the transitive closure of direct dependencies; ``False`` keeps
            only *direct* dependencies.  The ablation experiment (E2)
            uses ``False`` to demonstrate Figure 2's point that direct
            conflicts are not sufficient.
    """

    def __init__(self, schedule: Schedule, transitive: bool = True) -> None:
        self._schedule = schedule
        self._transitive = transitive
        ops = schedule.operations
        n = len(ops)
        # _reach[p] has bit q set iff ops[q] depends on ops[p] (p < q).
        reach = [0] * n
        for p in range(n - 1, -1, -1):
            earlier = ops[p]
            bits = 0
            for q in range(p + 1, n):
                later = ops[q]
                if later.tx == earlier.tx or conflicts(earlier, later):
                    bits |= 1 << q
                    if transitive:
                        bits |= reach[q]
            reach[p] = bits
        self._reach = reach

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> Schedule:
        """The schedule this relation was computed from."""
        return self._schedule

    @property
    def transitive(self) -> bool:
        """Whether this is the full (transitively closed) relation."""
        return self._transitive

    def depends_on(self, later: Operation, earlier: Operation) -> bool:
        """Whether ``later`` depends on ``earlier`` (paper's direction).

        Always ``False`` when ``earlier`` does not precede ``later`` in the
        schedule (dependency follows schedule order by construction).
        """
        p = self._schedule.position(earlier)
        q = self._schedule.position(later)
        if p >= q:
            return False
        return bool(self._reach[p] & (1 << q))

    def related(self, first: Operation, second: Operation) -> bool:
        """Whether a dependency exists in either direction."""
        return self.depends_on(first, second) or self.depends_on(second, first)

    def dependents_of(self, op: Operation) -> list[Operation]:
        """Every operation that depends on ``op``, in schedule order."""
        ops = self._schedule.operations
        bits = self._reach[self._schedule.position(op)]
        result: list[Operation] = []
        index = 0
        while bits:
            if bits & 1:
                result.append(ops[index])
            bits >>= 1
            index += 1
        return result

    def dependencies_of(self, op: Operation) -> list[Operation]:
        """Every operation that ``op`` depends on, in schedule order."""
        q = self._schedule.position(op)
        mask = 1 << q
        ops = self._schedule.operations
        return [ops[p] for p in range(q) if self._reach[p] & mask]

    def cross_transaction_pairs(self) -> Iterator[tuple[Operation, Operation]]:
        """Yield every pair ``(earlier, later)`` with ``later`` depending on
        ``earlier`` and the two in *different* transactions.

        These are exactly the D-arcs of the relative serialization graph
        (Definition 3, item 2).
        """
        ops = self._schedule.operations
        for p, earlier in enumerate(ops):
            bits = self._reach[p]
            index = 0
            while bits:
                if bits & 1 and ops[index].tx != earlier.tx:
                    yield earlier, ops[index]
                bits >>= 1
                index += 1

    def as_graph(self) -> DiGraph:
        """The relation as a digraph (edge ``a -> b`` iff ``b`` depends on
        ``a``), for inspection and DOT export."""
        graph = DiGraph()
        for op in self._schedule.operations:
            graph.add_node(op)
        for earlier, later in self.pairs():
            graph.add_edge(earlier, later)
        return graph

    def pairs(self) -> Iterator[tuple[Operation, Operation]]:
        """Yield every dependent pair ``(earlier, later)``, including
        same-transaction program-order pairs."""
        ops = self._schedule.operations
        for p, earlier in enumerate(ops):
            bits = self._reach[p]
            index = 0
            while bits:
                if bits & 1:
                    yield earlier, ops[index]
                bits >>= 1
                index += 1

    def __repr__(self) -> str:
        kind = "transitive" if self._transitive else "direct"
        return f"DependencyRelation({kind}, over {len(self._schedule)} ops)"
