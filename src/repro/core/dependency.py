"""The ``depends-on`` relation (Section 2 of the paper).

``o2`` *directly depends on* ``o1`` in a schedule ``S`` if ``o1`` precedes
``o2`` in ``S`` and either both belong to the same transaction or they
conflict.  ``depends on`` is the transitive closure of that relation.

Figure 2 of the paper shows why the closure matters: ``w2[y]`` affects
``r1[z]`` through ``T3`` (``w2[y] -> r3[y] -> w3[z] -> r1[z]``) even though
the two never conflict directly, so a correctness test built on direct
conflicts alone would wrongly accept the schedule ``S1``.

The closure is computed with integer bitsets over schedule positions: one
reverse sweep over the schedule, OR-ing successor reachability — compact
and fast enough to sit under every checker in the library.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.operations import OpType, Operation
from repro.core.schedules import Schedule
from repro.errors import InvalidScheduleError
from repro.graphs.digraph import DiGraph

__all__ = ["DependencyRelation"]


class DependencyRelation:
    """The ``depends-on`` relation of one schedule.

    Args:
        schedule: the schedule to analyze.
        transitive: when ``True`` (the paper's definition) the relation is
            the transitive closure of direct dependencies; ``False`` keeps
            only *direct* dependencies.  The ablation experiment (E2)
            uses ``False`` to demonstrate Figure 2's point that direct
            conflicts are not sufficient.
    """

    def __init__(self, schedule: Schedule, transitive: bool = True) -> None:
        self._schedule = schedule
        self._transitive = transitive
        ops = schedule.operations
        n = len(ops)
        # Hoist the per-operation fields into flat rows once, so the
        # O(n^2) pair loop compares local ints and strings instead of
        # touching Operation attributes, with the conflict test (same
        # object, at least one write; same-transaction pairs are
        # dependent regardless) inlined.
        txs = [0] * n
        objs = [""] * n
        writes = [False] * n
        for p, op in enumerate(ops):
            txs[p] = op.tx
            objs[p] = op.obj
            writes[p] = op.op_type is OpType.WRITE
        # _reach[p] has bit q set iff ops[q] depends on ops[p] (p < q).
        reach = [0] * n
        for p in range(n - 1, -1, -1):
            ptx = txs[p]
            pobj = objs[p]
            pwrite = writes[p]
            bits = 0
            for q in range(p + 1, n):
                if txs[q] == ptx or (
                    objs[q] == pobj and (pwrite or writes[q])
                ):
                    bits |= 1 << q
                    if transitive:
                        bits |= reach[q]
            reach[p] = bits
        self._reach = reach

    @classmethod
    def _from_state(
        cls, schedule: Schedule, reach: list[int], transitive: bool
    ) -> "DependencyRelation":
        """Adopt precomputed reachability bitsets (no O(n^2) rebuild).

        Used by the incremental RSG machinery, which maintains the
        closure operation by operation; ``reach`` must follow the
        constructor's convention and is adopted without copying.
        """
        relation = cls.__new__(cls)
        relation._schedule = schedule
        relation._transitive = transitive
        relation._reach = reach
        return relation

    def extended_with(self, schedule: Schedule) -> "DependencyRelation":
        """The relation for this schedule plus one appended operation.

        ``schedule`` must be this relation's schedule with exactly one
        operation appended; the closure is extended in O(n) bitset
        operations instead of recomputed from scratch, sharing every
        untouched row with the parent (rows are immutable ints).
        """
        ops = schedule.operations
        n = len(ops) - 1
        if len(self._schedule) != n or ops[:n] != self._schedule.operations:
            raise InvalidScheduleError(
                "extended_with needs the parent schedule plus one operation"
            )
        new_op = ops[n]
        new_tx = new_op.tx
        new_obj = new_op.obj
        new_write = new_op.op_type is OpType.WRITE
        direct = 0
        for p in range(n):
            earlier = ops[p]
            if earlier.tx == new_tx or (
                earlier.obj == new_obj
                and (new_write or earlier.op_type is OpType.WRITE)
            ):
                direct |= 1 << p
        bit = 1 << n
        reach = list(self._reach)
        if self._transitive:
            for p in range(n):
                if (direct >> p) & 1 or (reach[p] & direct):
                    reach[p] |= bit
        else:
            for p in range(n):
                if (direct >> p) & 1:
                    reach[p] |= bit
        reach.append(0)
        return DependencyRelation._from_state(schedule, reach, self._transitive)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> Schedule:
        """The schedule this relation was computed from."""
        return self._schedule

    @property
    def transitive(self) -> bool:
        """Whether this is the full (transitively closed) relation."""
        return self._transitive

    def depends_on(self, later: Operation, earlier: Operation) -> bool:
        """Whether ``later`` depends on ``earlier`` (paper's direction).

        Always ``False`` when ``earlier`` does not precede ``later`` in the
        schedule (dependency follows schedule order by construction).
        """
        p = self._schedule.position(earlier)
        q = self._schedule.position(later)
        if p >= q:
            return False
        return bool(self._reach[p] & (1 << q))

    def related(self, first: Operation, second: Operation) -> bool:
        """Whether a dependency exists in either direction."""
        return self.depends_on(first, second) or self.depends_on(second, first)

    def dependents_bits(self, position: int) -> int:
        """The raw dependents row: bit ``q`` is set iff the operation at
        schedule position ``q`` depends on the one at ``position``.

        This is the zero-copy interface the RSG arc builder iterates
        with low-bit extraction; everything else should prefer the
        operation-level queries.
        """
        return self._reach[position]

    def dependents_of(self, op: Operation) -> list[Operation]:
        """Every operation that depends on ``op``, in schedule order.

        Set bits are visited directly via low-bit extraction
        (``bits & -bits``) instead of shifting one position at a time,
        so sparse rows cost O(popcount) instead of O(n) big-int shifts.
        """
        ops = self._schedule.operations
        bits = self._reach[self._schedule.position(op)]
        result: list[Operation] = []
        while bits:
            low = bits & -bits
            result.append(ops[low.bit_length() - 1])
            bits ^= low
        return result

    def dependencies_of(self, op: Operation) -> list[Operation]:
        """Every operation that ``op`` depends on, in schedule order."""
        q = self._schedule.position(op)
        mask = 1 << q
        ops = self._schedule.operations
        return [ops[p] for p in range(q) if self._reach[p] & mask]

    def cross_transaction_pairs(self) -> Iterator[tuple[Operation, Operation]]:
        """Yield every pair ``(earlier, later)`` with ``later`` depending on
        ``earlier`` and the two in *different* transactions.

        These are exactly the D-arcs of the relative serialization graph
        (Definition 3, item 2).
        """
        ops = self._schedule.operations
        for p, earlier in enumerate(ops):
            bits = self._reach[p]
            tx = earlier.tx
            while bits:
                low = bits & -bits
                later = ops[low.bit_length() - 1]
                if later.tx != tx:
                    yield earlier, later
                bits ^= low

    def as_graph(self) -> DiGraph:
        """The relation as a digraph (edge ``a -> b`` iff ``b`` depends on
        ``a``), for inspection and DOT export."""
        graph = DiGraph()
        for op in self._schedule.operations:
            graph.add_node(op)
        for earlier, later in self.pairs():
            graph.add_edge(earlier, later)
        return graph

    def pairs(self) -> Iterator[tuple[Operation, Operation]]:
        """Yield every dependent pair ``(earlier, later)``, including
        same-transaction program-order pairs."""
        ops = self._schedule.operations
        for p, earlier in enumerate(ops):
            bits = self._reach[p]
            while bits:
                low = bits & -bits
                yield earlier, ops[low.bit_length() - 1]
                bits ^= low

    def __repr__(self) -> str:
        kind = "transitive" if self._transitive else "direct"
        return f"DependencyRelation({kind}, over {len(self._schedule)} ops)"
