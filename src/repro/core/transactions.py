"""Transactions: totally ordered sequences of read/write operations.

Following the paper (Section 2, footnote 2), a transaction is a *totally
ordered* sequence of operations.  Construction binds every operation to the
transaction id and its zero-based position, so operations double as vertex
ids in the relative serialization graph.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.operations import Operation, parse_operation
from repro.errors import InvalidTransactionError

__all__ = ["Transaction"]


class Transaction:
    """An immutable sequence of operations executed by one client.

    Operations may be given unbound (``read("x")``), bound to this
    transaction already, or as notation strings (``"r[x]"``); in every case
    the constructor (re)binds them to ``(tx_id, position)``.

    Args:
        tx_id: positive integer id of the transaction (``1`` for ``T1``).
        operations: the operation sequence, in program order.

    Raises:
        InvalidTransactionError: on an empty sequence, a non-positive id,
            or an operation pre-bound to a *different* transaction id.
    """

    def __init__(
        self, tx_id: int, operations: Iterable[Operation | str]
    ) -> None:
        if tx_id <= 0:
            raise InvalidTransactionError(
                f"transaction ids must be positive, got {tx_id}"
            )
        bound: list[Operation] = []
        for position, op in enumerate(operations):
            if isinstance(op, str):
                op = parse_operation(op)
            if op.tx is not None and op.tx != tx_id:
                raise InvalidTransactionError(
                    f"operation {op} already belongs to T{op.tx}, "
                    f"cannot bind it to T{tx_id}"
                )
            bound.append(op.bound_to(tx_id, position))
        if not bound:
            raise InvalidTransactionError(
                f"transaction T{tx_id} has no operations"
            )
        self._tx_id = tx_id
        self._operations: tuple[Operation, ...] = tuple(bound)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_notation(cls, tx_id: int, text: str) -> "Transaction":
        """Build a transaction from whitespace-separated notation.

        Example::

            Transaction.from_notation(1, "r[x] w[x] w[z] r[y]")

        Transaction ids inside the notation (``r1[x]``) are accepted as
        long as they match ``tx_id``.
        """
        tokens = text.split()
        if not tokens:
            raise InvalidTransactionError(
                f"transaction T{tx_id} has no operations"
            )
        return cls(tx_id, tokens)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def tx_id(self) -> int:
        """The transaction's id."""
        return self._tx_id

    @property
    def operations(self) -> tuple[Operation, ...]:
        """The operations in program order."""
        return self._operations

    @property
    def read_set(self) -> frozenset[str]:
        """Objects this transaction reads."""
        return frozenset(op.obj for op in self._operations if op.is_read)

    @property
    def write_set(self) -> frozenset[str]:
        """Objects this transaction writes."""
        return frozenset(op.obj for op in self._operations if op.is_write)

    @property
    def objects(self) -> frozenset[str]:
        """All objects this transaction accesses."""
        return frozenset(op.obj for op in self._operations)

    def operation(self, index: int) -> Operation:
        """The operation at zero-based program position ``index``."""
        return self._operations[index]

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index: int) -> Operation:
        return self._operations[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return (
            self._tx_id == other._tx_id
            and self._operations == other._operations
        )

    def __hash__(self) -> int:
        return hash((self._tx_id, self._operations))

    def __str__(self) -> str:
        body = " ".join(op.label for op in self._operations)
        return f"T{self._tx_id} = {body}"

    def __repr__(self) -> str:
        return f"Transaction(T{self._tx_id}, {len(self)} ops)"


def as_transaction_map(
    transactions: Sequence[Transaction],
) -> dict[int, Transaction]:
    """Index transactions by id, rejecting duplicates.

    A shared helper for :class:`~repro.core.schedules.Schedule` and the
    spec validators.
    """
    by_id: dict[int, Transaction] = {}
    for transaction in transactions:
        if transaction.tx_id in by_id:
            raise InvalidTransactionError(
                f"duplicate transaction id T{transaction.tx_id}"
            )
        by_id[transaction.tx_id] = transaction
    return by_id
