"""Classical recovery classes: recoverable, ACA, strict.

The paper studies scheduling correctness only, but a production
concurrency-control library needs the recovery side of the textbook
theory too (Bernstein–Hadzilacos–Goodman): which histories remain
correct when transactions can abort.

In this library's model a schedule contains only read/write operations
and every transaction commits; following the standard convention for
such histories, a transaction's *commit point* is the position of its
last operation.  With that convention:

* ``Tj`` **reads from** ``Ti`` (``i != j``) when ``Tj`` reads ``x`` and
  ``Ti`` is the last transaction that wrote ``x`` before that read;
* a schedule is **recoverable** (RC) when every reader commits after
  the writer it read from;
* it **avoids cascading aborts** (ACA) when transactions only read
  from committed writers;
* it is **strict** (ST) when no object is read *or overwritten* while
  its last writer is still uncommitted.

``ST ⊆ ACA ⊆ RC`` as usual, and the locking protocols in
:mod:`repro.protocols` that hold exclusive locks to commit produce
strict histories except across donated objects — which is exactly the
durability price of early release that [SGMA87] discusses for
altruistic locking; the analysis tooling makes that trade-off visible.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.operations import Operation
from repro.core.schedules import Schedule

__all__ = [
    "commit_position",
    "reads_from_pairs",
    "is_recoverable",
    "avoids_cascading_aborts",
    "is_strict",
    "recovery_profile",
]


def commit_position(schedule: Schedule, tx_id: int) -> int:
    """The commit point of ``T{tx_id}``: its last operation's position."""
    transaction = schedule.transactions[tx_id]
    return schedule.position(transaction[len(transaction) - 1])


def reads_from_pairs(
    schedule: Schedule,
) -> Iterator[tuple[Operation, Operation]]:
    """Yield ``(read, write)`` pairs where the read observes the write.

    The write is the latest write on the read's object by *another*
    transaction before the read, provided the reader's own transaction
    has not overwritten the object in between (reads of a transaction's
    own writes are internal and carry no recovery obligation).
    """
    last_writer: dict[str, Operation] = {}
    for op in schedule:
        if op.is_read:
            writer = last_writer.get(op.obj)
            if writer is not None and writer.tx != op.tx:
                yield op, writer
        else:
            last_writer[op.obj] = op


def is_recoverable(schedule: Schedule) -> bool:
    """RC: every reader commits after the writer it read from."""
    for read, write in reads_from_pairs(schedule):
        if commit_position(schedule, read.tx) < commit_position(
            schedule, write.tx
        ):
            return False
    return True


def avoids_cascading_aborts(schedule: Schedule) -> bool:
    """ACA: reads only observe writes of already-committed transactions."""
    for read, write in reads_from_pairs(schedule):
        if schedule.position(read) < commit_position(schedule, write.tx):
            return False
    return True


def is_strict(schedule: Schedule) -> bool:
    """ST: no read or overwrite of an uncommitted transaction's write."""
    last_writer: dict[str, Operation] = {}
    for op in schedule:
        writer = last_writer.get(op.obj)
        if (
            writer is not None
            and writer.tx != op.tx
            and schedule.position(op)
            < commit_position(schedule, writer.tx)
        ):
            return False
        if op.is_write:
            last_writer[op.obj] = op
    return True


def recovery_profile(schedule: Schedule) -> dict[str, bool]:
    """All three memberships at once (keys ``rc``/``aca``/``st``)."""
    return {
        "rc": is_recoverable(schedule),
        "aca": avoids_cascading_aborts(schedule),
        "st": is_strict(schedule),
    }
