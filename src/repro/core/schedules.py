"""Schedules: interleaved executions of a set of transactions.

A schedule over ``T = {T1, ..., Tn}`` is an interleaved sequence of *all*
operations of the transactions in ``T`` that preserves each transaction's
program order (Section 2 of the paper).  This module also implements the
conflict relation and conflict equivalence, the notions the whole
correctness theory is built on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.operations import Operation
from repro.core.transactions import Transaction, as_transaction_map
from repro.errors import InvalidScheduleError

__all__ = ["Schedule", "conflicts", "conflict_equivalent", "conflict_pairs"]


class Schedule:
    """A totally ordered interleaving of a transaction set's operations.

    Construction validates the two structural requirements from the paper:
    the schedule contains *exactly* the operations of the given
    transactions (each once), and operations of each transaction appear in
    program order.

    Args:
        transactions: the transaction set ``T``.
        order: the interleaved operation sequence.  Operations must be the
            bound operations of the given transactions (compare equal to
            them); notation strings such as ``"r1[x]"`` are also accepted
            and resolved against the transaction set by
            :meth:`from_notation`.
        complete: require every operation of every transaction to appear
            (the paper's definition).  :meth:`prefix` relaxes this to
            build growing prefixes for the incremental machinery.
    """

    def __init__(
        self,
        transactions: Sequence[Transaction],
        order: Iterable[Operation],
        *,
        complete: bool = True,
    ) -> None:
        self._transactions = as_transaction_map(transactions)
        self._order: tuple[Operation, ...] = tuple(order)
        self._position: dict[Operation, int] = {}
        self._complete = complete
        self._validate()

    def _validate(self) -> None:
        expected: set[Operation] = set()
        for transaction in self._transactions.values():
            expected.update(transaction.operations)

        next_index: dict[int, int] = {tx_id: 0 for tx_id in self._transactions}
        for position, op in enumerate(self._order):
            if op in self._position:
                raise InvalidScheduleError(
                    f"operation {op!r} appears twice in the schedule"
                )
            if op not in expected:
                raise InvalidScheduleError(
                    f"operation {op!r} does not belong to the transaction set"
                )
            if op.index != next_index[op.tx]:
                raise InvalidScheduleError(
                    f"operation {op!r} appears out of program order "
                    f"(expected index {next_index[op.tx]} of T{op.tx})"
                )
            next_index[op.tx] += 1
            self._position[op] = position

        if self._complete and len(self._order) != len(expected):
            missing = expected.difference(self._order)
            sample = ", ".join(sorted(op.label for op in missing)[:5])
            raise InvalidScheduleError(
                f"schedule is missing {len(missing)} operation(s): {sample}"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_notation(
        cls, transactions: Sequence[Transaction], text: str
    ) -> "Schedule":
        """Build a schedule from whitespace-separated ``r1[x]`` notation.

        Each token must name a transaction id; the operation's program
        index is inferred by matching the next unconsumed operation of that
        transaction (the paper's notation never repeats an identical
        operation ambiguously, and if a transaction does repeat an
        operation, program order disambiguates).

        Example::

            Schedule.from_notation(
                [t1, t2], "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] r1[y]"
            )
        """
        from repro.core.operations import parse_operation

        by_id = as_transaction_map(transactions)
        cursor = {tx_id: 0 for tx_id in by_id}
        order: list[Operation] = []
        for token in text.split():
            parsed = parse_operation(token)
            if parsed.tx is None:
                raise InvalidScheduleError(
                    f"schedule notation must carry transaction ids: {token!r}"
                )
            if parsed.tx not in by_id:
                raise InvalidScheduleError(
                    f"unknown transaction T{parsed.tx} in token {token!r}"
                )
            transaction = by_id[parsed.tx]
            index = cursor[parsed.tx]
            if index >= len(transaction):
                raise InvalidScheduleError(
                    f"too many operations for T{parsed.tx}: {token!r}"
                )
            expected = transaction[index]
            if expected.op_type != parsed.op_type or expected.obj != parsed.obj:
                raise InvalidScheduleError(
                    f"token {token!r} does not match the next operation of "
                    f"T{parsed.tx} (expected {expected.label})"
                )
            order.append(expected)
            cursor[parsed.tx] += 1
        return cls(transactions, order)

    @classmethod
    def serial(
        cls, transactions: Sequence[Transaction], tx_order: Sequence[int] | None = None
    ) -> "Schedule":
        """The serial schedule executing transactions in ``tx_order``.

        With ``tx_order=None``, transactions run in ascending id order.
        """
        by_id = as_transaction_map(transactions)
        if tx_order is None:
            tx_order = sorted(by_id)
        order: list[Operation] = []
        for tx_id in tx_order:
            if tx_id not in by_id:
                raise InvalidScheduleError(f"unknown transaction T{tx_id}")
            order.extend(by_id[tx_id].operations)
        return cls(transactions, order)

    @classmethod
    def prefix(
        cls, transactions: Sequence[Transaction], order: Iterable[Operation]
    ) -> "Schedule":
        """A schedule *prefix*: program order enforced, completeness not.

        Prefixes are what the online protocols and the incremental RSG
        machinery grow one granted operation at a time; every other
        schedule query (positions, projections, conflicts) works on
        them unchanged.
        """
        return cls(transactions, order, complete=False)

    def extended_with(self, op: Operation) -> "Schedule":
        """This schedule with ``op`` appended.

        The result is a complete :class:`Schedule` when ``op`` was the
        last missing operation, and a prefix otherwise.
        """
        order = self._order + (op,)
        total = sum(len(tx) for tx in self._transactions.values())
        return Schedule(
            list(self._transactions.values()),
            order,
            complete=len(order) == total,
        )

    def reordered(self, order: Iterable[Operation]) -> "Schedule":
        """A new schedule over the same transactions with a new order."""
        return Schedule(
            list(self._transactions.values()), order, complete=self._complete
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> dict[int, Transaction]:
        """The transaction set, indexed by id (do not mutate)."""
        return self._transactions

    @property
    def transaction_list(self) -> list[Transaction]:
        """The transactions in ascending id order."""
        return [self._transactions[tx_id] for tx_id in sorted(self._transactions)]

    @property
    def operations(self) -> tuple[Operation, ...]:
        """The operations in schedule order."""
        return self._order

    def position(self, op: Operation) -> int:
        """The zero-based schedule position of ``op``."""
        try:
            return self._position[op]
        except KeyError:
            raise InvalidScheduleError(f"operation {op!r} not in schedule") from None

    def precedes(self, first: Operation, second: Operation) -> bool:
        """Whether ``first`` occurs before ``second`` in this schedule."""
        return self.position(first) < self.position(second)

    def projection(self, tx_id: int) -> tuple[Operation, ...]:
        """The operations of ``T{tx_id}`` in schedule (= program) order."""
        if tx_id not in self._transactions:
            raise InvalidScheduleError(f"unknown transaction T{tx_id}")
        return tuple(op for op in self._order if op.tx == tx_id)

    @property
    def is_complete(self) -> bool:
        """Whether every operation of every transaction appears."""
        if self._complete:
            return True
        total = sum(len(tx) for tx in self._transactions.values())
        return len(self._order) == total

    @property
    def is_serial(self) -> bool:
        """Whether transactions run one after another without interleaving."""
        seen_complete: set[int] = set()
        current: int | None = None
        remaining = 0
        for op in self._order:
            if op.tx != current:
                if op.tx in seen_complete:
                    return False
                if current is not None and remaining != 0:
                    return False
                current = op.tx
                remaining = len(self._transactions[op.tx])
            remaining -= 1
            if remaining == 0:
                seen_complete.add(op.tx)
        return True

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._order)

    def __getitem__(self, position: int) -> Operation:
        return self._order[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._order == other._order

    def __hash__(self) -> int:
        return hash(self._order)

    def __str__(self) -> str:
        return " ".join(op.label for op in self._order)

    def __repr__(self) -> str:
        return f"Schedule({self!s})"


def conflicts(first: Operation, second: Operation) -> bool:
    """The paper's conflict relation (same object, different transactions,
    at least one write)."""
    return first.conflicts_with(second)


def conflict_pairs(schedule: Schedule) -> list[tuple[Operation, Operation]]:
    """All ordered conflicting pairs ``(a, b)`` with ``a`` before ``b``.

    Quadratic in schedule length, which is exactly the cost of the
    textbook definition; fine for the sizes the theory tools handle.
    """
    ops = schedule.operations
    pairs: list[tuple[Operation, Operation]] = []
    for i, first in enumerate(ops):
        for second in ops[i + 1:]:
            if conflicts(first, second):
                pairs.append((first, second))
    return pairs


def conflict_equivalent(first: Schedule, second: Schedule) -> bool:
    """Whether two schedules order every conflicting pair identically.

    The schedules must be over the same operations (hence the same
    transaction set); otherwise they are not comparable and ``False`` is
    returned.
    """
    if set(first.operations) != set(second.operations):
        return False
    for a, b in conflict_pairs(first):
        if not second.precedes(a, b):
            return False
    return True
