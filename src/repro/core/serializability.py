"""Classical conflict serializability (Papadimitriou 79, BSW 79).

The traditional theory the paper generalizes: the serialization graph
``SG(S)`` has transactions as nodes and an edge ``Ti -> Tk`` whenever an
operation of ``Ti`` conflicts with and precedes an operation of ``Tk``; a
schedule is conflict serializable iff ``SG(S)`` is acyclic.

Lemma 1 of the paper connects the two worlds: under absolute atomicity
specifications, relatively serializable == conflict serializable, and the
test suite checks that equivalence exhaustively.
"""

from __future__ import annotations

from repro.core.schedules import Schedule, conflict_pairs
from repro.errors import CycleError
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph
from repro.graphs.toposort import topological_sort

__all__ = [
    "serialization_graph",
    "is_conflict_serializable",
    "equivalent_serial_order",
    "equivalent_serial_schedule",
]


def serialization_graph(schedule: Schedule) -> DiGraph:
    """``SG(S)``: transaction-level conflict precedence graph."""
    graph = DiGraph()
    for tx_id in schedule.transactions:
        graph.add_node(tx_id)
    for earlier, later in conflict_pairs(schedule):
        if earlier.tx != later.tx:
            graph.add_edge(earlier.tx, later.tx)
    return graph


def is_conflict_serializable(schedule: Schedule) -> bool:
    """Whether ``SG(S)`` is acyclic (the classical correctness test)."""
    return find_cycle(serialization_graph(schedule)) is None


def equivalent_serial_order(schedule: Schedule) -> list[int]:
    """A serialization order of the transactions.

    Returns transaction ids in an order such that the serial schedule
    executing them in that order is conflict-equivalent to ``schedule``.

    Raises:
        CycleError: when the schedule is not conflict serializable.
    """
    graph = serialization_graph(schedule)
    cycle = find_cycle(graph)
    if cycle is not None:
        raise CycleError(
            "serialization graph is cyclic; schedule is not conflict "
            "serializable",
            cycle=cycle,
        )
    return topological_sort(graph, key=lambda tx_id: tx_id)


def equivalent_serial_schedule(schedule: Schedule) -> Schedule:
    """The serial schedule witnessing conflict serializability.

    Raises:
        CycleError: when the schedule is not conflict serializable.
    """
    order = equivalent_serial_order(schedule)
    return Schedule.serial(schedule.transaction_list, order)
