"""Read and write operations — the atoms of the transaction model.

The paper (Section 2) models a database as a set of objects accessed by
atomic ``read`` and ``write`` operations.  An operation is written
``ri[x]`` / ``wi[x]`` — a read/write by transaction ``Ti`` on object ``x``
— and ``oij`` denotes the *j*-th operation of ``Ti``.

Operations here are immutable value objects identified by
``(tx, index)``: two operations are the same vertex of a relative
serialization graph exactly when they are the same position of the same
transaction.  The index is assigned by :class:`~repro.core.transactions.
Transaction` construction, so user code usually writes ``read("x")`` /
``write("x")`` and lets the transaction number them.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.errors import NotationError

__all__ = ["OpType", "Operation", "read", "write", "parse_operation"]


class OpType(enum.Enum):
    """The two primitive access modes of the model."""

    READ = "r"
    WRITE = "w"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Operation:
    """A single read or write of a database object by a transaction.

    Attributes:
        op_type: :class:`OpType.READ` or :class:`OpType.WRITE`.
        obj: name of the database object accessed (``x`` in ``r1[x]``).
        tx: id of the owning transaction (``1`` in ``r1[x]``), or ``None``
            for a free-standing operation not yet bound to a transaction.
        index: zero-based position within the owning transaction, or
            ``None`` when unbound.
    """

    op_type: OpType
    obj: str
    tx: int | None = None
    index: int | None = None
    # Operations are the vertices of every graph in the library, so they
    # get hashed millions of times per run; the generated dataclass hash
    # re-hashes all four fields (including the enum) on every call.
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    #: The paper's notation for this operation, e.g. ``r1[x]``.  A cached
    #: slot, not a property: traced runs read it several times per
    #: granted operation (request, decision, and certification events),
    #: and re-rendering the f-string each time dominated the tracing
    #: overhead ``benchmarks/bench_obs.py`` gates.
    label: str = field(init=False, repr=False, compare=False, default="")

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((self.op_type.value, self.obj, self.tx, self.index)),
        )
        tx_part = "" if self.tx is None else str(self.tx)
        object.__setattr__(
            self, "label", f"{self.op_type.value}{tx_part}[{self.obj}]"
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def is_read(self) -> bool:
        """Whether this is a read operation."""
        return self.op_type is OpType.READ

    @property
    def is_write(self) -> bool:
        """Whether this is a write operation."""
        return self.op_type is OpType.WRITE

    @property
    def is_bound(self) -> bool:
        """Whether the operation is bound to a transaction position."""
        return self.tx is not None and self.index is not None

    def bound_to(self, tx: int, index: int) -> "Operation":
        """Return a copy bound to transaction ``tx`` at position ``index``."""
        return Operation(self.op_type, self.obj, tx, index)

    def conflicts_with(self, other: "Operation") -> bool:
        """Paper definition of conflict.

        Two operations *of different transactions* conflict when they access
        the same object and at least one is a write.
        """
        return (
            self.tx != other.tx
            and self.obj == other.obj
            and (self.is_write or other.is_write)
        )

    # ------------------------------------------------------------------
    # Notation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        if self.is_bound:
            return f"Operation({self.label} @{self.index})"
        return f"Operation({self.label})"


def read(obj: str) -> Operation:
    """An unbound read of ``obj`` (bound on transaction construction)."""
    return Operation(OpType.READ, obj)


def write(obj: str) -> Operation:
    """An unbound write of ``obj`` (bound on transaction construction)."""
    return Operation(OpType.WRITE, obj)


_OPERATION_RE = re.compile(
    r"""
    ^\s*
    (?P<type>[rw])            # access mode
    (?P<tx>\d*)               # optional transaction id
    \[
    (?P<obj>[^\[\]\s]+)       # object name: anything but brackets/space
    \]
    \s*$
    """,
    re.VERBOSE,
)


def parse_operation(text: str) -> Operation:
    """Parse the paper's ``r1[x]`` / ``w[x]`` notation into an operation.

    The transaction id is optional (``r[x]`` parses as an unbound read
    whose transaction will be assigned by context).  The operation index is
    never part of the notation; binding happens at transaction
    construction.

    Raises :class:`~repro.errors.NotationError` on malformed input.
    """
    match = _OPERATION_RE.match(text)
    if match is None:
        raise NotationError(f"cannot parse operation notation: {text!r}")
    op_type = OpType(match.group("type"))
    tx = int(match.group("tx")) if match.group("tx") else None
    return Operation(op_type, match.group("obj"), tx)
