"""The Relative Serialization Graph (Definition 3) and Theorem 1.

``RSG(S) = (V, E)`` has the schedule's operations as vertices and four
kinds of arcs:

* **I-arcs** — program order between consecutive operations of the same
  transaction,
* **D-arcs** — ``o -> o'`` whenever ``o'`` depends on ``o`` and the two
  belong to different transactions (these subsume conflicts),
* **F-arcs** (*push forward*) — for each D-arc ``o -> o'`` with ``o`` in
  ``Ti`` and ``o'`` in ``Tk``: ``PushForward(o, Tk) -> o'``, pushing ``o'``
  after the *last* operation of ``o``'s atomic unit relative to ``Tk``,
* **B-arcs** (*pull backward*) — for each D-arc ``o -> o'`` with ``o`` in
  ``Tk`` and ``o'`` in ``Ti``: ``o -> PullBackward(o', Tk)``, pulling
  ``o'``'s whole unit (relative to ``Tk``) after ``o``.

Theorem 1: ``S`` is relatively serializable **iff** ``RSG(S)`` is acyclic.
Both directions are executable here — :attr:`RelativeSerializationGraph.
is_acyclic` for the test, and :meth:`RelativeSerializationGraph.
equivalent_relatively_serial_schedule` for the constructive half (a
topological sort of an acyclic RSG is conflict-equivalent to the input and
relatively serial).

The ``include_*`` switches exist for the ablation experiments: Lynch and
Farrag–Özsu used push-forward only (no B-arcs), and Figure 2 of the paper
shows direct conflicts without transitive closure are unsound; both
weakened variants can be constructed and measured.
"""

from __future__ import annotations

import enum

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.dependency import DependencyRelation
from repro.core.operations import OpType, Operation
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import CycleError, GraphError, InvalidSpecError
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph
from repro.graphs.incremental import FlatBatch, FlatPkGraph, IncrementalDiGraph
from repro.graphs.toposort import topological_sort

__all__ = [
    "ArcKind",
    "IncrementalRsg",
    "RelativeSerializationGraph",
    "is_relatively_serializable",
]


class _Unset:
    """Sentinel type for "cycle not computed yet" (a proper sentinel
    instead of overloading ``False``, which type checkers conflate with
    ``bool`` and readers conflate with "acyclic")."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<cycle unset>"


_UNSET = _Unset()


class ArcKind(enum.Enum):
    """The four arc families of Definition 3."""

    INTERNAL = "I"
    DEPENDENCY = "D"
    PUSH_FORWARD = "F"
    PULL_BACKWARD = "B"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# Id-space label encoding for the arc-mask representation.
_I_BIT, _D_BIT, _F_BIT, _B_BIT = 1, 2, 4, 8
_BIT_KINDS = (
    (_I_BIT, ArcKind.INTERNAL),
    (_D_BIT, ArcKind.DEPENDENCY),
    (_F_BIT, ArcKind.PUSH_FORWARD),
    (_B_BIT, ArcKind.PULL_BACKWARD),
)


class RelativeSerializationGraph:
    """``RSG(S)`` for a schedule ``S`` under a relative atomicity spec.

    Args:
        schedule: the schedule ``S``.
        spec: the relative atomicity specification for ``S``'s
            transactions.
        include_f_arcs: include push-forward arcs (Definition 3, item 3).
        include_b_arcs: include pull-backward arcs (Definition 3, item 4).
            Disabling reproduces the Lynch / Farrag–Özsu style graph for
            the ablation experiment.
        transitive_dependencies: use the paper's transitively closed
            ``depends-on`` (``True``) or direct dependencies only
            (``False``, the unsound Figure 2 variant).
    """

    def __init__(
        self,
        schedule: Schedule,
        spec: RelativeAtomicitySpec,
        include_f_arcs: bool = True,
        include_b_arcs: bool = True,
        transitive_dependencies: bool = True,
    ) -> None:
        _check_spec_matches(schedule, spec)
        self._schedule = schedule
        self._spec = spec
        self._include_f_arcs = include_f_arcs
        self._include_b_arcs = include_b_arcs
        self._dependency = DependencyRelation(
            schedule, transitive=transitive_dependencies
        )
        self._ops_table, self._arc_masks = self._build_arcs(
            include_f_arcs, include_b_arcs
        )
        self._graph_cache: DiGraph | None = None
        self._graph_factory = None
        self._cycle: list[Operation] | None | _Unset = _UNSET

    @classmethod
    def _from_parts(
        cls,
        schedule: Schedule,
        spec: RelativeAtomicitySpec,
        dependency: DependencyRelation,
        graph: DiGraph | None,
        cycle: "list[Operation] | None | _Unset" = _UNSET,
        graph_factory=None,
    ) -> "RelativeSerializationGraph":
        """Assemble an RSG from already-computed parts (no rebuild).

        The incremental machinery (:class:`IncrementalRsg`,
        :meth:`extended_with`, the prefix-sharing enumerators) uses this
        to hand out RSG views without paying the O(n^2) closure and arc
        construction again.  ``graph`` is adopted, not copied; passing
        ``graph_factory`` instead defers even the adjacency
        materialization until :attr:`graph` is first touched, so views
        whose consumers only ask for acyclicity (``cycle`` is always
        supplied by those callers) never build a graph at all.
        """
        rsg = object.__new__(cls)
        rsg._schedule = schedule
        rsg._spec = spec
        rsg._include_f_arcs = True
        rsg._include_b_arcs = True
        rsg._dependency = dependency
        rsg._ops_table = []
        rsg._arc_masks = {}
        rsg._graph_cache = graph
        rsg._graph_factory = graph_factory
        rsg._cycle = cycle
        return rsg

    def _build_arcs(
        self, include_f_arcs: bool, include_b_arcs: bool
    ) -> tuple[list[Operation], dict[int, int]]:
        """Compute the arc set in integer id-space.

        Every operation of every transaction gets a dense integer id
        (``ops_table`` is the inverse map); an arc ``src -> dst`` is the
        key ``src_id * len(ops_table) + dst_id`` in ``arc_masks``, whose
        value ORs one bit per :class:`ArcKind` the arc carries.  Working
        on ints instead of :class:`Operation` objects removes object
        hashing from the O(n^2)-pair hot loop, and the mask dict dedups
        the (heavily colliding) D/F/B triples before any graph exists —
        the :class:`DiGraph` view is materialized lazily from this.
        """
        transactions = self._schedule.transactions
        ops_table: list[Operation] = []
        tx_base: dict[int, int] = {}
        for tx_id in sorted(transactions):
            tx_base[tx_id] = len(ops_table)
            ops_table.extend(transactions[tx_id].operations)
        total = len(ops_table)
        masks: dict[int, int] = {}
        # I-arcs: consecutive operations of each transaction.
        for tx_id, transaction in transactions.items():
            base = tx_base[tx_id]
            for offset in range(len(transaction) - 1):
                masks[(base + offset) * total + base + offset + 1] = _I_BIT
        # Schedule-position lookups (no Operation hashing below here).
        ops = self._schedule.operations
        n = len(ops)
        ids = [0] * n
        stx = [0] * n
        sidx = [0] * n
        txmask: dict[int, int] = dict.fromkeys(transactions, 0)
        for p, op in enumerate(ops):
            ids[p] = tx_base[op.tx] + op.index
            stx[p] = op.tx
            sidx[p] = op.index
            txmask[op.tx] |= 1 << p
        # D-arcs plus their induced F- and B-arcs, one observing
        # transaction at a time: all dependents of position p inside
        # transaction j share the same PushForward source and the same
        # PullBackward row, so both resolve once per (p, j).
        spec = self._spec
        dependency = self._dependency
        push_rows: dict[tuple[int, int], list[int]] = {}
        pull_rows: dict[tuple[int, int], list[int]] = {}
        tx_items = list(txmask.items())
        get = masks.get
        for p in range(n):
            bits = dependency.dependents_bits(p)
            if not bits:
                continue
            ptx = stx[p]
            pkey = ids[p] * total
            for j, jmask in tx_items:
                deps = bits & jmask
                if not deps or j == ptx:
                    continue
                if include_f_arcs:
                    row = push_rows.get((ptx, j))
                    if row is None:
                        row = push_rows[(ptx, j)] = _push_id_row(
                            spec, transactions[ptx], j, tx_base[ptx]
                        )
                    fkey = row[sidx[p]] * total
                if include_b_arcs:
                    brow = pull_rows.get((j, ptx))
                    if brow is None:
                        brow = pull_rows[(j, ptx)] = _pull_id_row(
                            spec, transactions[j], ptx, tx_base[j]
                        )
                while deps:
                    low = deps & -deps
                    deps ^= low
                    q = low.bit_length() - 1
                    qid = ids[q]
                    key = pkey + qid
                    masks[key] = get(key, 0) | _D_BIT
                    if include_f_arcs:
                        key = fkey + qid
                        masks[key] = get(key, 0) | _F_BIT
                    if include_b_arcs:
                        key = pkey + brow[sidx[q]]
                        masks[key] = get(key, 0) | _B_BIT
        return ops_table, masks

    def _materialize(self) -> DiGraph:
        """Expand the id-space arc masks into the labelled DiGraph."""
        graph = DiGraph()
        for op in self._schedule.operations:
            graph.add_node(op)
        table = self._ops_table
        total = len(table)
        arcs: list[tuple[Operation, Operation, ArcKind]] = []
        for key, mask in self._arc_masks.items():
            src = table[key // total]
            dst = table[key % total]
            for bit, kind in _BIT_KINDS:
                if mask & bit:
                    arcs.append((src, dst, kind))
        graph.add_labelled_edges(arcs)
        return graph

    def _cycle_from_masks(self) -> list[Operation] | None:
        """Three-colour DFS directly over the id-space arc set."""
        table = self._ops_table
        total = len(table)
        succ: list[list[int]] = [[] for _ in range(total)]
        for key in self._arc_masks:
            succ[key // total].append(key % total)
        colour = [0] * total  # 0 white, 1 grey, 2 black
        parent = [0] * total
        for root in range(total):
            if colour[root]:
                continue
            colour[root] = 1
            stack = [root]
            while stack:
                node = stack[-1]
                pending = succ[node]
                if pending:
                    child = pending.pop()
                    c = colour[child]
                    if c == 0:
                        colour[child] = 1
                        parent[child] = node
                        stack.append(child)
                    elif c == 1:
                        path = [node]
                        while path[-1] != child:
                            path.append(parent[path[-1]])
                        path.reverse()
                        path.append(child)
                        return [table[i] for i in path]
                else:
                    colour[node] = 2
                    stack.pop()
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> Schedule:
        """The schedule the graph was built from."""
        return self._schedule

    @property
    def spec(self) -> RelativeAtomicitySpec:
        """The relative atomicity specification used."""
        return self._spec

    @property
    def dependency(self) -> DependencyRelation:
        """The ``depends-on`` relation the D-arcs were derived from."""
        return self._dependency

    @property
    def graph(self) -> DiGraph:
        """The underlying digraph (arcs labelled with :class:`ArcKind`).

        Materialized lazily from the id-space arc masks on first
        access; the pure acyclicity test (:attr:`is_acyclic`) never
        needs it.
        """
        if self._graph_cache is None:
            factory = self._graph_factory
            if factory is not None:
                self._graph_cache = factory()
            else:
                self._graph_cache = self._materialize()
        return self._graph_cache

    @property
    def is_acyclic(self) -> bool:
        """Theorem 1's test: whether ``RSG(S)`` has no directed cycle."""
        return self.cycle is None

    @property
    def cycle(self) -> list[Operation] | None:
        """A witness cycle, or ``None`` when the graph is acyclic."""
        if self._cycle is _UNSET:
            if self._graph_cache is not None or self._graph_factory is not None:
                self._cycle = find_cycle(self.graph)
            else:
                self._cycle = self._cycle_from_masks()
        return self._cycle

    def arcs(self, kind: ArcKind | None = None) -> list[tuple[Operation, Operation]]:
        """All arcs, optionally restricted to one :class:`ArcKind`.

        An arc carrying several labels (e.g. both D and B, as in Figure 3)
        is reported under each of its kinds.
        """
        result: list[tuple[Operation, Operation]] = []
        for source, target, labels in self.graph.labelled_edges():
            if kind is None or kind in labels:
                result.append((source, target))
        return result

    def arc_kinds(self, source: Operation, target: Operation) -> frozenset[ArcKind]:
        """The set of kinds attached to the arc ``source -> target``."""
        return frozenset(self.graph.edge_labels(source, target))

    # ------------------------------------------------------------------
    # Theorem 1, constructive direction
    # ------------------------------------------------------------------
    def equivalent_relatively_serial_schedule(self) -> Schedule:
        """Extract a relatively serial schedule conflict-equivalent to ``S``.

        Topologically sorts the (acyclic) RSG, breaking ties by the
        operation's position in the original schedule so the result stays
        as close to ``S`` as the arcs allow.

        Raises:
            CycleError: when the RSG is cyclic (``S`` is not relatively
                serializable), carrying the witness cycle.
        """
        witness = self.cycle
        if witness is not None:
            raise CycleError(
                "RSG is cyclic; schedule is not relatively serializable",
                cycle=witness,
            )
        order = topological_sort(self.graph, key=self._schedule.position)
        return self._schedule.reordered(order)

    # ------------------------------------------------------------------
    # Prefix extension
    # ------------------------------------------------------------------
    def extended_with(self, op: Operation) -> "RelativeSerializationGraph":
        """The RSG of this schedule with ``op`` appended.

        Shares the dependency closure with the parent (extended in O(n)
        bitset work instead of recomputed) and derives only the new
        operation's D/F/B arcs; the parent is never mutated.  The
        adjacency structure is copied, which is the remaining O(V + E)
        term — for zero-copy sharing over many sibling extensions use
        :class:`IncrementalRsg` (what the prefix-sharing enumerators
        do).

        Only supported for the full graph (F- and B-arcs included,
        transitive dependencies) — the ablation variants have no
        incremental story.
        """
        if not (self._include_f_arcs and self._include_b_arcs):
            raise GraphError(
                "extended_with requires the full RSG (F- and B-arcs)"
            )
        if not self._dependency.transitive:
            raise GraphError(
                "extended_with requires transitive dependencies"
            )
        schedule = self._schedule.extended_with(op)
        dependency = self._dependency.extended_with(schedule)
        graph = self.graph.copy()
        spec = self._spec
        arcs: list[tuple[Operation, Operation, ArcKind]] = []
        for earlier in dependency.dependencies_of(op):
            if earlier.tx == op.tx:
                continue
            arcs.append((earlier, op, ArcKind.DEPENDENCY))
            push = spec.push_forward(earlier, observer=op.tx)
            arcs.append((push, op, ArcKind.PUSH_FORWARD))
            pull = spec.pull_backward(op, observer=earlier.tx)
            arcs.append((earlier, pull, ArcKind.PULL_BACKWARD))
        graph.add_labelled_edges(arcs)
        cycle: list[Operation] | None | _Unset = _UNSET
        if self._cycle is not _UNSET and self._cycle is not None:
            # Arcs only ever accumulate as the prefix grows, so a
            # parent's witness cycle survives in every extension.
            cycle = self._cycle
        return RelativeSerializationGraph._from_parts(
            schedule, spec, dependency, graph, cycle
        )

    def __repr__(self) -> str:
        return (
            f"RSG(|V|={self.graph.node_count}, |E|={self.graph.edge_count}, "
            f"{'acyclic' if self.is_acyclic else 'cyclic'})"
        )


def _push_id_row(
    spec: RelativeAtomicitySpec,
    transaction: Transaction,
    observer: int,
    base: int,
) -> list[int]:
    """:func:`_push_table` in id-space: ``base`` is the transaction's
    first operation id in the dense ops table."""
    view = spec.atomicity(transaction.tx_id, observer)
    row: list[int] = []
    for unit in view.units:
        row.extend([base + unit.end] * unit.size)
    return row


def _pull_id_row(
    spec: RelativeAtomicitySpec,
    transaction: Transaction,
    observer: int,
    base: int,
) -> list[int]:
    """:func:`_pull_table` in id-space."""
    view = spec.atomicity(transaction.tx_id, observer)
    row: list[int] = []
    for unit in view.units:
        row.extend([base + unit.start] * unit.size)
    return row


class IncrementalRsg:
    """The RSG over a granted prefix, maintained operation by operation.

    This is the engine under both the online certifier
    (:class:`~repro.protocols.certifier.RsgCertifier`) and the offline
    prefix-sharing enumerators: a stack of granted operations with

    * ``try_push`` — append one operation, deriving its D/F/B arcs from
      per-object trackers (O(#new-arcs), not O(history)) and inserting
      them into a :class:`~repro.graphs.incremental.FlatPkGraph` — an
      integer-id adjacency structure with bitmask arc kinds — that
      keeps an online topological order.  A cycle-closing push is
      refused with the graph left untouched.
    * ``push_uncertified`` — append an operation *without* its arcs,
      used by enumerators that must keep walking extensions of a prefix
      already known to be cyclic (arcs only accumulate, so every
      extension stays cyclic; the stored witness remains valid).
    * ``pop`` — undo the latest push in O(#its-arcs): edge removal can
      never invalidate a topological order, so no restoration pass.

    Per-operation ancestor bitsets double as the transitive
    ``depends-on`` closure, so a :class:`~repro.core.dependency.
    DependencyRelation` for the current prefix is available for free
    (``maintain_reach=True``).

    Internally everything lives in flat, integer-indexed state: every
    declared operation owns a node id in a :class:`FlatPkGraph`
    (freelisted and reused across :meth:`remove_transaction`), arcs are
    ``(u, v, kind-bit)`` triples written into one reusable flat buffer,
    undo batches and push records are recycled through freelists, and
    the labelled :class:`IncrementalDiGraph` view the diagnostics need
    is materialized on demand and cached per mutation epoch.  In the
    steady state a certify/forget cycle therefore allocates almost
    nothing.
    """

    def __init__(
        self,
        spec: RelativeAtomicitySpec,
        *,
        maintain_reach: bool = False,
    ) -> None:
        self._spec = spec
        self._flat = FlatPkGraph()
        # Node-id space: _ids[tx_id][index] is the flat node id of that
        # operation; _ops_of is the inverse (slot per node id, nulled
        # and overwritten as ids are released and reused).
        self._ids: dict[int, list[int]] = {}
        self._tx_order: list[int] = []
        self._ops_of: list[Operation | None] = []
        self._history: list[Operation] = []
        # _hist_ids[n] is the flat node id of history[n].
        self._hist_ids: list[int] = []
        # _closed[n] has bit p set iff history[n] depends on history[p]
        # OR p == n — the self-inclusive ancestor closure.  Storing it
        # closed means a new operation's ancestors are a plain OR of
        # the covering set's rows, with no per-member ``1 << p`` big-int
        # shifts on the hot path.  Rows pushed while the prefix is
        # cyclic are sentinel zeros unless ``maintain_reach`` is on:
        # try_push raises on a cyclic prefix and pops are LIFO, so a
        # zero row is gone before anything can read it (see
        # push_uncertified).
        self._closed: list[int] = []
        # _reach[p] has bit n set iff history[n] depends on history[p]
        # (the DependencyRelation convention); only kept when asked.
        self._maintain_reach = maintain_reach
        self._reach: list[int] = []
        # Per-push undo log: one (batch, prev_tx_pos, write_undo)
        # triple per push — the arc undo batch (None for uncertified
        # pushes), the tx's previous history position, and the
        # write-tracker undo pair.  A single list of tuples, not three
        # parallel lists: one append per push on the hot path.
        self._log: list[tuple] = []
        # Prebound appends for the per-push hot path (the four lists
        # are created here and never rebound — same trick as the trace
        # bus's prebound sink writes).
        self._hist_append = self._history.append
        self._hist_ids_append = self._hist_ids.append
        self._closed_append = self._closed.append
        self._log_append = self._log.append
        self._batch_pool: list[FlatBatch] = []
        self._arc_buf: list[int] = []
        # Per-object trackers: the covering set of direct dependencies.
        # A new operation's ancestors are exactly the union of
        # (position | anc[position]) over: the transaction's previous
        # operation, the object's last write, and (for writes) the
        # reads since that write — every other direct dependency is
        # already inside one of those closures.
        self._last_write: dict[str, int] = {}
        self._reads_since_write: dict[str, list[int]] = {}
        self._last_of_tx: dict[int, int] = {}
        # PushForward/PullBackward rows in node-id space, keyed
        # [subject tx][observer tx]; dropped when either tx is removed.
        self._push_rows: dict[int, dict[int, list[int]]] = {}
        self._pull_rows: dict[int, dict[int, list[int]]] = {}
        self._uncertified_from: int | None = None
        #: Whether the maintained prefix RSG is acyclic (always true
        #: until the first ``push_uncertified``).  A plain attribute
        #: mirroring ``_uncertified_from is None``, not a property: the
        #: certification loop reads it once per operation and the
        #: attribute read skips the descriptor call frame.
        self.acyclic: bool = True
        self._witness: list[Operation] | None = None
        self._rejection: list[Operation] | None = None
        self._rejection_ids: list[int] | None = None
        # Tentative arc triples of the most recent refused try_push:
        # they were rolled back before entering the graph, but the
        # rejection witness may ride on them, so labelling needs them.
        self._rejection_arcs: list[int] | None = None
        self._labelled_rejection_cache: (
            list[tuple[Operation, Operation, frozenset[ArcKind]]] | None
        ) = None
        # Materialized-view cache, invalidated by the mutation counter.
        self._mutations = 0
        self._graph_cache: IncrementalDiGraph | None = None
        self._graph_version = -1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> RelativeAtomicitySpec:
        """The relative atomicity specification in force."""
        return self._spec

    @property
    def graph(self) -> IncrementalDiGraph:
        """The maintained RSG (all declared vertices and I-arcs, plus
        D/F/B arcs of the certified prefix).

        A labelled :class:`IncrementalDiGraph` view materialized from
        the flat engine on first access and cached until the next
        mutation — diagnostics and tests pay O(V + E) per epoch, the
        certification hot path never builds it.
        """
        if self._graph_cache is None or self._graph_version != self._mutations:
            self._graph_cache = self._materialized_graph()
            self._graph_version = self._mutations
        return self._graph_cache

    @property
    def history(self) -> list[Operation]:
        """The pushed operations, in order (do not mutate)."""
        return self._history

    @property
    def witness(self) -> list[Operation] | None:
        """The cycle that doomed this prefix, when not acyclic."""
        return self._witness

    @property
    def last_rejected_cycle(self) -> list[Operation] | None:
        """Witness from the most recent refused ``try_push``."""
        return self._rejection

    @property
    def node_capacity(self) -> int:
        """Total node-id slots ever allocated (live + freelisted).

        Diagnostic for the boundedness claim: declare/remove churn must
        reuse freelisted ids, so capacity tracks the peak live set, not
        the cumulative number of declarations.
        """
        return self._flat.node_capacity

    @property
    def node_count(self) -> int:
        """Live node count (operations of currently-declared txs)."""
        return sum(len(ids) for ids in self._ids.values())

    def arc_census(self) -> dict[str, int]:
        """Live arc counts by kind, ``{"I": ..., "D": ..., ...}``.

        Walks the flat engine's collapsed arc masks (O(arcs), no graph
        materialization), counting each kind bit separately — an arc
        carrying both D and B counts once under each.  Sized for the
        ``inspect`` service verb, not the certification hot path.
        """
        census = dict.fromkeys(("I", "D", "F", "B"), 0)
        for _, mask in self._flat.edge_items():
            for bit, kind in _BIT_KINDS:
                if mask & bit:
                    census[kind.value] += 1
        return census

    def labelled_rejection(
        self,
    ) -> list[tuple[Operation, Operation, frozenset[ArcKind]]] | None:
        """The last rejection's witness with per-arc kind labels.

        Each consecutive cycle pair is labelled from the live graph
        where the arc survives, plus the refused push's tentative arcs
        (rolled back before entering the graph — the refused D/F/B arc
        that closed the cycle is always among these).  ``None`` when no
        rejection has happened.

        Memoized per rejection: the certifier asks once for the trace
        event and once for the Outcome's reason, and the labelling must
        reflect the graph at rejection time either way.
        """
        cycle_ids = self._rejection_ids
        if cycle_ids is None:
            return None
        if self._labelled_rejection_cache is not None:
            return self._labelled_rejection_cache
        tentative: dict[int, int] = {}
        arcs = self._rejection_arcs or []
        for i in range(0, len(arcs), 3):
            key = (arcs[i] << 32) | arcs[i + 1]
            tentative[key] = tentative.get(key, 0) | arcs[i + 2]
        flat = self._flat
        ops_of = self._ops_of
        labelled = []
        for u, v in zip(cycle_ids, cycle_ids[1:]):
            mask = flat.edge_mask(u, v) | tentative.get((u << 32) | v, 0)
            kinds = frozenset(
                kind for bit, kind in _BIT_KINDS if mask & bit
            )
            labelled.append((ops_of[u], ops_of[v], kinds))
        self._labelled_rejection_cache = labelled
        return labelled

    def __len__(self) -> int:
        return len(self._history)

    # ------------------------------------------------------------------
    # Growing
    # ------------------------------------------------------------------
    def add_transaction(self, transaction: Transaction) -> None:
        """Add a transaction's vertices and I-arcs to the graph.

        Idempotent for an already-declared transaction.  Node ids come
        from the flat graph's freelist, so declare/remove cycles reuse
        id slots instead of growing the arrays.
        """
        tx_id = transaction.tx_id
        if tx_id in self._ids:
            return
        flat = self._flat
        ops_of = self._ops_of
        ids: list[int] = []
        for op in transaction.operations:
            nid = flat.acquire_node()
            if nid == len(ops_of):
                ops_of.append(op)
            else:
                ops_of[nid] = op
            ids.append(nid)
        self._ids[tx_id] = ids
        self._tx_order.append(tx_id)
        if len(ids) > 1:
            buf = self._arc_buf
            del buf[:]
            for u, v in zip(ids, ids[1:]):
                buf.append(u)
                buf.append(v)
                buf.append(_I_BIT)
            batch = self._take_batch()
            if not flat.try_add_batch(buf, len(ids) - 1, batch):
                raise GraphError(  # pragma: no cover - fresh chain
                    "program-order arcs closed a cycle"
                )
            # I-arcs are permanent (never undone by pop), so the undo
            # batch goes straight back to the pool.
            self._batch_pool.append(batch)
        self._mutations += 1

    def remove_transaction(self, tx_id: int) -> None:
        """Undeclare a transaction with no operations in the history.

        Removes its vertices and I-arcs and returns the node ids to the
        flat graph's freelist (the next :meth:`add_transaction` reuses
        them).  D/F/B arcs always have both endpoints in transactions
        with history operations, so only I-arcs can be incident here.

        Raises:
            GraphError: when the transaction was never declared or
                still has pushed operations (pop or forget them first).
        """
        ids = self._ids.get(tx_id)
        if ids is None:
            raise GraphError(f"T{tx_id} was never declared")
        if tx_id in self._last_of_tx:
            raise GraphError(
                f"T{tx_id} still has operations in the history"
            )
        flat = self._flat
        for u, v in zip(ids, ids[1:]):
            flat.remove_edge(u, v)
        ops_of = self._ops_of
        for nid in ids:
            flat.release_node(nid)
            ops_of[nid] = None
        del self._ids[tx_id]
        self._tx_order.remove(tx_id)
        self._push_rows.pop(tx_id, None)
        for by_observer in self._push_rows.values():
            by_observer.pop(tx_id, None)
        self._pull_rows.pop(tx_id, None)
        for by_observer in self._pull_rows.values():
            by_observer.pop(tx_id, None)
        # Rejection diagnostics may reference the released ids.
        self._rejection = None
        self._rejection_ids = None
        self._rejection_arcs = None
        self._labelled_rejection_cache = None
        self._mutations += 1

    def try_push(self, op: Operation) -> bool:
        """Append ``op`` iff its arcs keep the RSG acyclic.

        Returns ``True`` (op recorded, arcs committed) or ``False``
        (nothing changed; the witness is in :attr:`last_rejected_cycle`).
        """
        if self._uncertified_from is not None:
            raise GraphError(
                "try_push on a cyclic prefix — use push_uncertified"
            )
        anc = self._ancestors_of(op)
        oid = self._ids[op.tx][op.index]
        buf = self._arc_buf
        count = self._fill_arcs(op, oid, anc, buf)
        batch = self._take_batch()
        if not self._flat.try_add_batch(buf, count, batch):
            self._batch_pool.append(batch)
            cycle_ids = self._flat.last_rejected_cycle or []
            ops_of = self._ops_of
            self._rejection_ids = cycle_ids
            self._rejection = [ops_of[i] for i in cycle_ids]
            self._rejection_arcs = buf[: 3 * count]
            self._labelled_rejection_cache = None
            return False
        self._record(op, oid, anc, batch)
        return True

    def push_uncertified(self, op: Operation) -> None:
        """Append ``op`` without adding its arcs to the graph.

        Marks the prefix cyclic from this point on (callers do this
        right after a refused :meth:`try_push`, whose witness is kept:
        arcs only accumulate as the prefix grows, so the refused
        operation's cycle exists in the full RSG of every extension).
        The per-object trackers keep growing so that a later
        :meth:`pop` restores exact state; the dependency closure only
        grows under ``maintain_reach=True`` (which materialized views
        require).  Without it, cyclic-era closure rows are sentinel
        zeros: they are provably never read — :meth:`try_push` raises
        while the prefix is cyclic, and pops are LIFO, so by the time
        the prefix is acyclic again every zero row (and every tracker
        entry pointing at one) has been removed.
        """
        if self._uncertified_from is None:
            self._uncertified_from = len(self._history)
            self.acyclic = False
            self._witness = self._rejection
        # Manually inlined _ancestors_of + _record: once a prefix goes
        # cyclic every remaining operation lands here, so this is as
        # hot as try_push and the two call frames are worth eliding.
        n = len(self._history)
        tx = op.tx
        obj = op.obj
        last_of_tx = self._last_of_tx
        reads_since_write = self._reads_since_write
        prev_tx_pos = last_of_tx.get(tx)
        last_of_tx[tx] = n
        w = self._last_write.get(obj)
        write_undo = None
        if op.op_type is OpType.WRITE:
            reads = reads_since_write.get(obj)
            write_undo = (w, reads)
            self._last_write[obj] = n
            reads_since_write[obj] = []
        else:
            reads = None
            since = reads_since_write.get(obj)
            if since is None:
                reads_since_write[obj] = [n]
            else:
                since.append(n)
        if self._maintain_reach:
            closed = self._closed
            anc = 0
            if prev_tx_pos is not None:
                anc = closed[prev_tx_pos]
            if w is not None:
                anc |= closed[w]
            if reads:
                for r in reads:
                    anc |= closed[r]
            reach = self._reach
            bit = 1 << n
            bits = anc
            while bits:
                low = bits & -bits
                reach[low.bit_length() - 1] |= bit
                bits ^= low
            reach.append(0)
            row = anc | bit
        else:
            row = 0
        self._hist_append(op)
        self._hist_ids_append(self._ids[tx][op.index])
        self._closed_append(row)
        self._log_append((None, prev_tx_pos, write_undo))
        self._mutations += 1

    def reset(self) -> None:
        """Pop the entire history, keeping every declared transaction.

        The warm-worker hook: a pooled engine is reset between tasks
        instead of rebuilt, so its flat graph's node ids, freelists,
        undo-batch pools, and arc buffers are reused across a whole
        sweep.  Equivalent to calling :meth:`pop` until empty, plus
        clearing rejection diagnostics from the previous task.
        """
        while self._history:
            self.pop()
        self._rejection = None
        self._rejection_ids = None
        self._rejection_arcs = None
        self._labelled_rejection_cache = None

    def pop(self) -> Operation:
        """Undo the most recent push and return its operation."""
        if not self._history:
            raise GraphError("pop from an empty prefix")
        op = self._history.pop()
        self._hist_ids.pop()
        n = len(self._history)
        closed = self._closed.pop()
        batch, prev_tx_pos, write_undo = self._log.pop()
        if batch is not None:
            self._flat.undo_batch(batch)
            self._batch_pool.append(batch)
        if self._uncertified_from is not None and self._uncertified_from >= n:
            self._uncertified_from = None
            self.acyclic = True
            self._witness = None
        if self._maintain_reach:
            self._reach.pop()
            mask = ~(1 << n)
            reach = self._reach
            bits = closed ^ (1 << n)
            while bits:
                low = bits & -bits
                reach[low.bit_length() - 1] &= mask
                bits ^= low
        # Per-object trackers.
        if prev_tx_pos is None:
            del self._last_of_tx[op.tx]
        else:
            self._last_of_tx[op.tx] = prev_tx_pos
        if write_undo is not None:
            prev_write, prev_reads = write_undo
            if prev_write is None:
                del self._last_write[op.obj]
            else:
                self._last_write[op.obj] = prev_write
            if prev_reads is None:
                self._reads_since_write.pop(op.obj, None)
            else:
                self._reads_since_write[op.obj] = prev_reads
        else:
            self._reads_since_write[op.obj].pop()
        self._mutations += 1
        return op

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def dependency_for(self, schedule: Schedule) -> DependencyRelation:
        """The ``depends-on`` relation of the current prefix, for free.

        ``schedule`` must be over exactly the pushed operations (the
        caller usually just built it from :attr:`history`).  Requires
        ``maintain_reach=True``.
        """
        if not self._maintain_reach:
            raise GraphError(
                "dependency_for requires maintain_reach=True"
            )
        return DependencyRelation._from_state(
            schedule, list(self._reach), transitive=True
        )

    def materialize(
        self, schedule: Schedule, *, copy_graph: bool = True
    ) -> RelativeSerializationGraph:
        """A :class:`RelativeSerializationGraph` view of the prefix.

        With ``copy_graph=False`` the view defers adjacency
        materialization entirely: the graph is only built (from this
        engine's state *at access time*) if the consumer touches
        ``.graph``, so it is valid until the next push/pop — exactly
        the lifetime the prefix-sharing enumerators need — and costs
        nothing for consumers that only test acyclicity.  For cyclic
        prefixes the view's graph carries the arcs up to the first
        uncertified operation plus the stored witness; acyclicity and
        the witness are exact, the remaining arcs are not materialized.
        """
        cycle: list[Operation] | None
        cycle = None if self._uncertified_from is None else self._witness
        dependency = self.dependency_for(schedule)
        if copy_graph:
            return RelativeSerializationGraph._from_parts(
                schedule, self._spec, dependency,
                self._materialized_graph(), cycle,
            )
        return RelativeSerializationGraph._from_parts(
            schedule, self._spec, dependency, None, cycle,
            graph_factory=self._materialized_view,
        )

    # ------------------------------------------------------------------
    # Arc derivation
    # ------------------------------------------------------------------
    def _ancestors_of(self, op: Operation) -> int:
        """Bitset of history positions ``op`` depends on."""
        closed = self._closed
        anc = 0
        p = self._last_of_tx.get(op.tx)
        if p is not None:
            anc = closed[p]
        w = self._last_write.get(op.obj)
        if w is not None:
            anc |= closed[w]
        if op.op_type is OpType.WRITE:
            reads = self._reads_since_write.get(op.obj)
            if reads:
                for r in reads:
                    anc |= closed[r]
        return anc

    def _fill_arcs(
        self, op: Operation, oid: int, anc: int, buf: list[int]
    ) -> int:
        """Write ``op``'s new D/F/B arcs into ``buf`` as flat
        ``(source id, target id, kind bit)`` triples — three per
        cross-transaction ancestor (Definition 3 items 2-4) — and
        return the triple count.  ``buf`` is the engine's reusable
        scratch buffer; nothing is allocated on the steady-state path
        (the PushForward/PullBackward id rows are computed once per
        transaction pair and cached)."""
        del buf[:]
        append = buf.append
        history = self._history
        hist_ids = self._hist_ids
        push_rows = self._push_rows
        pull_rows = self._pull_rows
        op_tx = op.tx
        op_index = op.index
        count = 0
        bits = anc
        while bits:
            low = bits & -bits
            bits ^= low
            p = low.bit_length() - 1
            earlier = history[p]
            etx = earlier.tx
            if etx == op_tx:
                continue
            eid = hist_ids[p]
            append(eid)
            append(oid)
            append(_D_BIT)
            by_observer = push_rows.get(etx)
            if by_observer is None:
                by_observer = push_rows[etx] = {}
            row = by_observer.get(op_tx)
            if row is None:
                row = by_observer[op_tx] = self._push_ids(etx, op_tx)
            append(row[earlier.index])
            append(oid)
            append(_F_BIT)
            by_observer = pull_rows.get(op_tx)
            if by_observer is None:
                by_observer = pull_rows[op_tx] = {}
            row = by_observer.get(etx)
            if row is None:
                row = by_observer[etx] = self._pull_ids(op_tx, etx)
            append(eid)
            append(row[op_index])
            append(_B_BIT)
            count += 3
        return count

    def _push_ids(self, tx_id: int, observer: int) -> list[int]:
        """``PushForward(op, observer)`` for every operation of
        ``tx_id``, as an index-addressed node-id row."""
        view = self._spec.atomicity(tx_id, observer)
        ids = self._ids[tx_id]
        row: list[int] = []
        for unit in view.units:
            row.extend([ids[unit.end]] * unit.size)
        return row

    def _pull_ids(self, tx_id: int, observer: int) -> list[int]:
        """``PullBackward(op, observer)`` in node-id space."""
        view = self._spec.atomicity(tx_id, observer)
        ids = self._ids[tx_id]
        row: list[int] = []
        for unit in view.units:
            row.extend([ids[unit.start]] * unit.size)
        return row

    def _take_batch(self) -> FlatBatch:
        pool = self._batch_pool
        return pool.pop() if pool else FlatBatch([], [])

    def _record(self, op: Operation, oid: int, anc: int, batch) -> None:
        n = len(self._history)
        last_of_tx = self._last_of_tx
        tx = op.tx
        obj = op.obj
        prev_tx_pos = last_of_tx.get(tx)
        last_of_tx[tx] = n
        write_undo = None
        if op.op_type is OpType.WRITE:
            write_undo = (
                self._last_write.get(obj),
                self._reads_since_write.get(obj),
            )
            self._last_write[obj] = n
            self._reads_since_write[obj] = []
        else:
            reads = self._reads_since_write.get(obj)
            if reads is None:
                self._reads_since_write[obj] = [n]
            else:
                reads.append(n)
        if self._maintain_reach:
            reach = self._reach
            bit = 1 << n
            bits = anc
            while bits:
                low = bits & -bits
                reach[low.bit_length() - 1] |= bit
                bits ^= low
            reach.append(0)
        self._hist_append(op)
        self._hist_ids_append(oid)
        self._closed_append(anc | (1 << n))
        self._log_append((batch, prev_tx_pos, write_undo))
        self._mutations += 1

    # ------------------------------------------------------------------
    # Materialized view
    # ------------------------------------------------------------------
    def _materialized_graph(self) -> IncrementalDiGraph:
        """Expand the flat engine into a labelled
        :class:`IncrementalDiGraph` (fresh object, safe to adopt or
        mutate), preserving the flat graph's topological order."""
        graph = IncrementalDiGraph()
        succ = graph._succ
        pred = graph._pred
        order = graph._ord
        labels = graph._labels
        flat = self._flat
        order_of = flat.order_index
        ops_of = self._ops_of
        for tx_id in self._tx_order:
            for nid in self._ids[tx_id]:
                op = ops_of[nid]
                succ[op] = set()
                pred[op] = set()
                order[op] = order_of(nid)
        graph._next_index = flat._next_index
        for key, mask in flat.edge_items():
            source = ops_of[key >> 32]
            target = ops_of[key & 0xFFFFFFFF]
            succ[source].add(target)
            pred[target].add(source)
            labels[(source, target)] = {
                kind for bit, kind in _BIT_KINDS if mask & bit
            }
        return graph

    def _materialized_view(self) -> IncrementalDiGraph:
        """Graph factory handed to borrowed RSG views (uses the
        per-epoch cache, so sibling views within one epoch share)."""
        return self.graph


def is_relatively_serializable(
    schedule: Schedule, spec: RelativeAtomicitySpec
) -> bool:
    """Theorem 1: whether ``schedule`` is conflict-equivalent to some
    relatively serial schedule, decided by RSG acyclicity."""
    return RelativeSerializationGraph(schedule, spec).is_acyclic


def _check_spec_matches(schedule: Schedule, spec: RelativeAtomicitySpec) -> None:
    """Ensure the spec covers exactly the schedule's transactions."""
    schedule_ids = set(schedule.transactions)
    spec_ids = set(spec.transactions)
    if schedule_ids != spec_ids:
        raise InvalidSpecError(
            "spec transactions do not match schedule transactions: "
            f"schedule has {sorted(schedule_ids)}, spec has {sorted(spec_ids)}"
        )
    for tx_id in schedule_ids:
        if schedule.transactions[tx_id] != spec.transactions[tx_id]:
            raise InvalidSpecError(
                f"T{tx_id} differs between schedule and spec"
            )
