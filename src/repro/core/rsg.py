"""The Relative Serialization Graph (Definition 3) and Theorem 1.

``RSG(S) = (V, E)`` has the schedule's operations as vertices and four
kinds of arcs:

* **I-arcs** — program order between consecutive operations of the same
  transaction,
* **D-arcs** — ``o -> o'`` whenever ``o'`` depends on ``o`` and the two
  belong to different transactions (these subsume conflicts),
* **F-arcs** (*push forward*) — for each D-arc ``o -> o'`` with ``o`` in
  ``Ti`` and ``o'`` in ``Tk``: ``PushForward(o, Tk) -> o'``, pushing ``o'``
  after the *last* operation of ``o``'s atomic unit relative to ``Tk``,
* **B-arcs** (*pull backward*) — for each D-arc ``o -> o'`` with ``o`` in
  ``Tk`` and ``o'`` in ``Ti``: ``o -> PullBackward(o', Tk)``, pulling
  ``o'``'s whole unit (relative to ``Tk``) after ``o``.

Theorem 1: ``S`` is relatively serializable **iff** ``RSG(S)`` is acyclic.
Both directions are executable here — :attr:`RelativeSerializationGraph.
is_acyclic` for the test, and :meth:`RelativeSerializationGraph.
equivalent_relatively_serial_schedule` for the constructive half (a
topological sort of an acyclic RSG is conflict-equivalent to the input and
relatively serial).

The ``include_*`` switches exist for the ablation experiments: Lynch and
Farrag–Özsu used push-forward only (no B-arcs), and Figure 2 of the paper
shows direct conflicts without transitive closure are unsound; both
weakened variants can be constructed and measured.
"""

from __future__ import annotations

import enum

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.dependency import DependencyRelation
from repro.core.operations import Operation
from repro.core.schedules import Schedule
from repro.errors import CycleError, InvalidSpecError
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph
from repro.graphs.toposort import topological_sort

__all__ = ["ArcKind", "RelativeSerializationGraph", "is_relatively_serializable"]


class ArcKind(enum.Enum):
    """The four arc families of Definition 3."""

    INTERNAL = "I"
    DEPENDENCY = "D"
    PUSH_FORWARD = "F"
    PULL_BACKWARD = "B"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class RelativeSerializationGraph:
    """``RSG(S)`` for a schedule ``S`` under a relative atomicity spec.

    Args:
        schedule: the schedule ``S``.
        spec: the relative atomicity specification for ``S``'s
            transactions.
        include_f_arcs: include push-forward arcs (Definition 3, item 3).
        include_b_arcs: include pull-backward arcs (Definition 3, item 4).
            Disabling reproduces the Lynch / Farrag–Özsu style graph for
            the ablation experiment.
        transitive_dependencies: use the paper's transitively closed
            ``depends-on`` (``True``) or direct dependencies only
            (``False``, the unsound Figure 2 variant).
    """

    def __init__(
        self,
        schedule: Schedule,
        spec: RelativeAtomicitySpec,
        include_f_arcs: bool = True,
        include_b_arcs: bool = True,
        transitive_dependencies: bool = True,
    ) -> None:
        _check_spec_matches(schedule, spec)
        self._schedule = schedule
        self._spec = spec
        self._dependency = DependencyRelation(
            schedule, transitive=transitive_dependencies
        )
        self._graph = self._build(include_f_arcs, include_b_arcs)
        self._cycle: list[Operation] | None | bool = False  # False = unknown

    def _build(self, include_f_arcs: bool, include_b_arcs: bool) -> DiGraph:
        graph = DiGraph()
        # Vertices: every operation of every transaction.
        for op in self._schedule.operations:
            graph.add_node(op)
        # I-arcs: consecutive operations of each transaction.
        for transaction in self._schedule.transactions.values():
            ops = transaction.operations
            for first, second in zip(ops, ops[1:]):
                graph.add_edge(first, second, label=ArcKind.INTERNAL)
        # D-arcs plus their induced F- and B-arcs.
        for earlier, later in self._dependency.cross_transaction_pairs():
            graph.add_edge(earlier, later, label=ArcKind.DEPENDENCY)
            if include_f_arcs:
                push = self._spec.push_forward(earlier, observer=later.tx)
                graph.add_edge(push, later, label=ArcKind.PUSH_FORWARD)
            if include_b_arcs:
                pull = self._spec.pull_backward(later, observer=earlier.tx)
                graph.add_edge(earlier, pull, label=ArcKind.PULL_BACKWARD)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> Schedule:
        """The schedule the graph was built from."""
        return self._schedule

    @property
    def spec(self) -> RelativeAtomicitySpec:
        """The relative atomicity specification used."""
        return self._spec

    @property
    def dependency(self) -> DependencyRelation:
        """The ``depends-on`` relation the D-arcs were derived from."""
        return self._dependency

    @property
    def graph(self) -> DiGraph:
        """The underlying digraph (arcs labelled with :class:`ArcKind`)."""
        return self._graph

    @property
    def is_acyclic(self) -> bool:
        """Theorem 1's test: whether ``RSG(S)`` has no directed cycle."""
        return self.cycle is None

    @property
    def cycle(self) -> list[Operation] | None:
        """A witness cycle, or ``None`` when the graph is acyclic."""
        if self._cycle is False:
            self._cycle = find_cycle(self._graph)
        return self._cycle

    def arcs(self, kind: ArcKind | None = None) -> list[tuple[Operation, Operation]]:
        """All arcs, optionally restricted to one :class:`ArcKind`.

        An arc carrying several labels (e.g. both D and B, as in Figure 3)
        is reported under each of its kinds.
        """
        result: list[tuple[Operation, Operation]] = []
        for source, target, labels in self._graph.labelled_edges():
            if kind is None or kind in labels:
                result.append((source, target))
        return result

    def arc_kinds(self, source: Operation, target: Operation) -> frozenset[ArcKind]:
        """The set of kinds attached to the arc ``source -> target``."""
        return frozenset(self._graph.edge_labels(source, target))

    # ------------------------------------------------------------------
    # Theorem 1, constructive direction
    # ------------------------------------------------------------------
    def equivalent_relatively_serial_schedule(self) -> Schedule:
        """Extract a relatively serial schedule conflict-equivalent to ``S``.

        Topologically sorts the (acyclic) RSG, breaking ties by the
        operation's position in the original schedule so the result stays
        as close to ``S`` as the arcs allow.

        Raises:
            CycleError: when the RSG is cyclic (``S`` is not relatively
                serializable), carrying the witness cycle.
        """
        witness = self.cycle
        if witness is not None:
            raise CycleError(
                "RSG is cyclic; schedule is not relatively serializable",
                cycle=witness,
            )
        order = topological_sort(self._graph, key=self._schedule.position)
        return self._schedule.reordered(order)

    def __repr__(self) -> str:
        return (
            f"RSG(|V|={self._graph.node_count}, |E|={self._graph.edge_count}, "
            f"{'acyclic' if self.is_acyclic else 'cyclic'})"
        )


def is_relatively_serializable(
    schedule: Schedule, spec: RelativeAtomicitySpec
) -> bool:
    """Theorem 1: whether ``schedule`` is conflict-equivalent to some
    relatively serial schedule, decided by RSG acyclicity."""
    return RelativeSerializationGraph(schedule, spec).is_acyclic


def _check_spec_matches(schedule: Schedule, spec: RelativeAtomicitySpec) -> None:
    """Ensure the spec covers exactly the schedule's transactions."""
    schedule_ids = set(schedule.transactions)
    spec_ids = set(spec.transactions)
    if schedule_ids != spec_ids:
        raise InvalidSpecError(
            "spec transactions do not match schedule transactions: "
            f"schedule has {sorted(schedule_ids)}, spec has {sorted(spec_ids)}"
        )
    for tx_id in schedule_ids:
        if schedule.transactions[tx_id] != spec.transactions[tx_id]:
            raise InvalidSpecError(
                f"T{tx_id} differs between schedule and spec"
            )
