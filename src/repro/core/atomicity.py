"""Relative atomicity specifications (Section 2 of the paper).

An *atomic unit* of ``Ti`` relative to ``Tj`` is a sequence of consecutive
operations of ``Ti`` inside which no operation of ``Tj`` may execute.
``Atomicity(Ti, Tj)`` is the ordered sequence of atomic units of ``Ti``
relative to ``Tj`` — a partition of ``Ti``'s operations into consecutive
blocks.  A full :class:`RelativeAtomicitySpec` holds one such view for
every ordered pair of distinct transactions.

Representation: a view is stored as a frozen set of *breakpoints* — cut
positions ``p`` in ``1..len(Ti)-1`` meaning "``Tj`` may interleave between
operation ``p-1`` and operation ``p`` of ``Ti``" (this is exactly the
breakpoint formulation of Farrag & Özsu that the paper cites as an
equivalent way to write specifications).  Units, ``PushForward`` and
``PullBackward`` (Section 3) are derived.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.operations import Operation, parse_operation
from repro.core.transactions import Transaction, as_transaction_map
from repro.errors import InvalidSpecError, MissingSpecError

__all__ = ["AtomicUnit", "Atomicity", "RelativeAtomicitySpec"]


@dataclass(frozen=True, slots=True)
class AtomicUnit:
    """One atomic unit: operations ``start..end`` (inclusive) of ``T{tx}``.

    ``ordinal`` is the unit's one-based rank inside its view, matching the
    paper's ``AtomicUnit(k, Ti, Tj)`` notation.
    """

    tx: int
    ordinal: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise InvalidSpecError(
                f"atomic unit of T{self.tx} has start {self.start} > end {self.end}"
            )

    def contains_index(self, index: int) -> bool:
        """Whether program position ``index`` of ``T{tx}`` is in this unit."""
        return self.start <= index <= self.end

    def contains(self, op: Operation) -> bool:
        """Whether ``op`` (an operation of ``T{tx}``) is in this unit."""
        return op.tx == self.tx and op.index is not None and self.contains_index(op.index)

    def operations(self, transaction: Transaction) -> tuple[Operation, ...]:
        """The unit's operations, given its owning transaction."""
        if transaction.tx_id != self.tx:
            raise InvalidSpecError(
                f"unit belongs to T{self.tx}, not T{transaction.tx_id}"
            )
        return transaction.operations[self.start:self.end + 1]

    @property
    def size(self) -> int:
        """Number of operations in the unit."""
        return self.end - self.start + 1

    def __str__(self) -> str:
        return f"unit#{self.ordinal}(T{self.tx}[{self.start}..{self.end}])"


class Atomicity:
    """``Atomicity(Ti, Tj)``: how ``Ti`` partitions into units seen by ``Tj``.

    Args:
        tx: id of the transaction being partitioned (``Ti``).
        observer: id of the transaction the view is relative to (``Tj``).
        length: number of operations of ``Ti``.
        breakpoints: cut positions, each in ``1..length-1``.  The empty set
            is absolute atomicity (one unit); the full set is the finest
            view (every operation its own unit).
    """

    def __init__(
        self,
        tx: int,
        observer: int,
        length: int,
        breakpoints: Iterable[int] = (),
    ) -> None:
        if tx == observer:
            raise InvalidSpecError(
                f"Atomicity(T{tx}, T{observer}) is not defined for a "
                "transaction relative to itself"
            )
        if length <= 0:
            raise InvalidSpecError(
                f"Atomicity(T{tx}, T{observer}) needs a positive length"
            )
        cuts = frozenset(breakpoints)
        for cut in cuts:
            if not 1 <= cut <= length - 1:
                raise InvalidSpecError(
                    f"breakpoint {cut} of Atomicity(T{tx}, T{observer}) is "
                    f"outside 1..{length - 1}"
                )
        self._tx = tx
        self._observer = observer
        self._length = length
        self._breakpoints = cuts
        self._units = self._build_units()
        # Unit lookup by operation index, precomputed once.
        self._unit_of_index: list[AtomicUnit] = []
        for unit in self._units:
            self._unit_of_index.extend([unit] * unit.size)

    def _build_units(self) -> tuple[AtomicUnit, ...]:
        cuts = sorted(self._breakpoints)
        starts = [0] + cuts
        ends = [cut - 1 for cut in cuts] + [self._length - 1]
        return tuple(
            AtomicUnit(self._tx, ordinal + 1, start, end)
            for ordinal, (start, end) in enumerate(zip(starts, ends))
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def tx(self) -> int:
        """Id of the partitioned transaction (``Ti``)."""
        return self._tx

    @property
    def observer(self) -> int:
        """Id of the observing transaction (``Tj``)."""
        return self._observer

    @property
    def length(self) -> int:
        """Number of operations of ``Ti``."""
        return self._length

    @property
    def breakpoints(self) -> frozenset[int]:
        """The cut positions."""
        return self._breakpoints

    @property
    def units(self) -> tuple[AtomicUnit, ...]:
        """The atomic units in order (``AtomicUnit(k, Ti, Tj)`` is
        ``units[k-1]``)."""
        return self._units

    @property
    def is_absolute(self) -> bool:
        """Whether the whole transaction is one atomic unit."""
        return not self._breakpoints

    @property
    def is_finest(self) -> bool:
        """Whether every operation is its own atomic unit."""
        return len(self._breakpoints) == self._length - 1

    def unit(self, ordinal: int) -> AtomicUnit:
        """``AtomicUnit(ordinal, Ti, Tj)`` — one-based, as in the paper."""
        if not 1 <= ordinal <= len(self._units):
            raise InvalidSpecError(
                f"Atomicity(T{self._tx}, T{self._observer}) has "
                f"{len(self._units)} units, no unit #{ordinal}"
            )
        return self._units[ordinal - 1]

    def unit_of(self, index: int) -> AtomicUnit:
        """The unit containing program position ``index`` of ``Ti``."""
        if not 0 <= index < self._length:
            raise InvalidSpecError(
                f"T{self._tx} has no operation index {index}"
            )
        return self._unit_of_index[index]

    def push_forward_index(self, index: int) -> int:
        """``PushForward``: the index of the *last* operation of the unit
        containing ``index`` (Section 3)."""
        return self.unit_of(index).end

    def pull_backward_index(self, index: int) -> int:
        """``PullBackward``: the index of the *first* operation of the unit
        containing ``index`` (Section 3)."""
        return self.unit_of(index).start

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, transaction: Transaction) -> str:
        """The paper's boxed-units notation, with ``|`` as unit separator.

        Example: ``r1[x] w1[x] | w1[z] r1[y]``.
        """
        if transaction.tx_id != self._tx or len(transaction) != self._length:
            raise InvalidSpecError(
                f"transaction does not match Atomicity(T{self._tx}, "
                f"T{self._observer})"
            )
        parts = [
            " ".join(op.label for op in unit.operations(transaction))
            for unit in self._units
        ]
        return " | ".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atomicity):
            return NotImplemented
        return (
            self._tx == other._tx
            and self._observer == other._observer
            and self._length == other._length
            and self._breakpoints == other._breakpoints
        )

    def __hash__(self) -> int:
        return hash((self._tx, self._observer, self._length, self._breakpoints))

    def __repr__(self) -> str:
        cuts = sorted(self._breakpoints)
        return (
            f"Atomicity(T{self._tx} rel T{self._observer}, "
            f"len={self._length}, cuts={cuts})"
        )


class RelativeAtomicitySpec:
    """A full relative atomicity specification over a transaction set.

    Holds ``Atomicity(Ti, Tj)`` for every ordered pair ``i != j``.  Pairs
    not explicitly given default to *absolute* atomicity (one unit), which
    matches the safe, traditional behaviour and makes the classical model a
    trivial special case.

    Args:
        transactions: the transaction set.
        views: mapping from ``(tx, observer)`` pairs to either an
            :class:`Atomicity`, an iterable of breakpoint positions, or a
            unit-notation string such as ``"r[x] w[x] | w[z] r[y]"``.
    """

    def __init__(
        self,
        transactions: Sequence[Transaction],
        views: Mapping[tuple[int, int], "Atomicity | Iterable[int] | str"] | None = None,
    ) -> None:
        self._transactions = as_transaction_map(transactions)
        self._views: dict[tuple[int, int], Atomicity] = {}
        # Per-transaction breakpoint sets recorded by declare_transaction
        # (the service's interactive growth path); used to materialize
        # views against observers that arrive later.
        self._declared_cuts: dict[int, tuple[int, ...]] = {}
        for (tx, observer), value in (views or {}).items():
            self._set_view(tx, observer, value)

    def declare_transaction(
        self, transaction: Transaction, cuts: Iterable[int] = ()
    ) -> None:
        """Grow the spec with one transaction arriving interactively.

        This is the transaction service's admission path: clients declare
        their program (and optionally the breakpoints they expose) at
        ``begin`` time, long after the spec object was created.  The new
        transaction's ``cuts`` become its atomicity relative to *every*
        other transaction — current and future: cut sets recorded here
        are replayed against observers declared later, so the pairwise
        views are independent of arrival order.

        Pairs left untouched keep the lazy default (absolute atomicity),
        exactly as with construction-time views.

        Raises:
            InvalidSpecError: on a duplicate id or an out-of-range cut.
        """
        tx_id = transaction.tx_id
        if tx_id in self._transactions:
            raise InvalidSpecError(
                f"transaction T{tx_id} is already declared in the spec"
            )
        cut_list = tuple(sorted(set(cuts)))
        for cut in cut_list:
            if not 1 <= cut <= len(transaction) - 1:
                raise InvalidSpecError(
                    f"breakpoint {cut} of T{tx_id} is outside "
                    f"1..{len(transaction) - 1}"
                )
        others = list(self._transactions)
        self._transactions[tx_id] = transaction
        self._declared_cuts[tx_id] = cut_list
        for other in others:
            if cut_list:
                self._set_view(tx_id, other, cut_list)
            other_cuts = self._declared_cuts.get(other)
            if other_cuts:
                self._set_view(other, tx_id, other_cuts)

    def declared_cuts(self, tx_id: int) -> tuple[int, ...]:
        """The breakpoints recorded for ``T{tx_id}`` at declaration
        (empty for construction-time or absolute transactions)."""
        return self._declared_cuts.get(tx_id, ())

    def _set_view(
        self, tx: int, observer: int, value: "Atomicity | Iterable[int] | str"
    ) -> None:
        if tx not in self._transactions:
            raise InvalidSpecError(f"unknown transaction T{tx} in spec")
        if observer not in self._transactions:
            raise InvalidSpecError(f"unknown observer T{observer} in spec")
        if tx == observer:
            raise InvalidSpecError(
                f"Atomicity(T{tx}, T{observer}) relative to itself is invalid"
            )
        transaction = self._transactions[tx]
        if isinstance(value, Atomicity):
            view = value
            if (
                view.tx != tx
                or view.observer != observer
                or view.length != len(transaction)
            ):
                raise InvalidSpecError(
                    f"Atomicity object does not match pair (T{tx}, T{observer})"
                )
        elif isinstance(value, str):
            view = _parse_view(transaction, observer, value)
        else:
            view = Atomicity(tx, observer, len(transaction), value)
        self._views[(tx, observer)] = view

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> dict[int, Transaction]:
        """The transaction set, indexed by id (do not mutate)."""
        return self._transactions

    @property
    def transaction_list(self) -> list[Transaction]:
        """The transactions in ascending id order."""
        return [self._transactions[tx_id] for tx_id in sorted(self._transactions)]

    def atomicity(self, tx: int, observer: int) -> Atomicity:
        """``Atomicity(T{tx}, T{observer})`` (defaulting to absolute)."""
        if tx == observer:
            raise InvalidSpecError(
                f"Atomicity(T{tx}, T{observer}) relative to itself is invalid"
            )
        if tx not in self._transactions:
            raise MissingSpecError(f"unknown transaction T{tx}")
        if observer not in self._transactions:
            raise MissingSpecError(f"unknown observer T{observer}")
        view = self._views.get((tx, observer))
        if view is None:
            view = Atomicity(tx, observer, len(self._transactions[tx]))
            self._views[(tx, observer)] = view
        return view

    def units(self, tx: int, observer: int) -> tuple[AtomicUnit, ...]:
        """The atomic units of ``T{tx}`` relative to ``T{observer}``."""
        return self.atomicity(tx, observer).units

    def unit_of(self, op: Operation, observer: int) -> AtomicUnit:
        """The unit of ``op``'s transaction (relative to ``observer``)
        containing ``op``."""
        if op.tx is None or op.index is None:
            raise InvalidSpecError(f"operation {op!r} is not bound")
        return self.atomicity(op.tx, observer).unit_of(op.index)

    def push_forward(self, op: Operation, observer: int) -> Operation:
        """``PushForward(op, T{observer})``: last operation of ``op``'s
        atomic unit relative to the observer (Section 3)."""
        unit = self.unit_of(op, observer)
        return self._transactions[op.tx][unit.end]

    def pull_backward(self, op: Operation, observer: int) -> Operation:
        """``PullBackward(op, T{observer})``: first operation of ``op``'s
        atomic unit relative to the observer (Section 3)."""
        unit = self.unit_of(op, observer)
        return self._transactions[op.tx][unit.start]

    def pairs(self) -> list[tuple[int, int]]:
        """Every ordered pair ``(tx, observer)`` with ``tx != observer``."""
        ids = sorted(self._transactions)
        return [(i, j) for i in ids for j in ids if i != j]

    def restricted_to(self, tx_ids: Iterable[int]) -> "RelativeAtomicitySpec":
        """The spec induced on a subset of the transactions.

        Views between surviving pairs are kept verbatim; views involving
        a dropped transaction disappear with it.  This is how the fault
        campaigns certify a *committed projection*: the survivors'
        mutual atomicity requirements are unchanged by other
        transactions' aborts.
        """
        keep = set(tx_ids)
        unknown = keep.difference(self._transactions)
        if unknown:
            raise InvalidSpecError(
                f"cannot restrict to unknown transactions "
                f"{sorted(unknown)}"
            )
        transactions = [self._transactions[tx_id] for tx_id in sorted(keep)]
        views = {
            (tx, observer): view
            for (tx, observer), view in self._views.items()
            if tx in keep and observer in keep
        }
        return RelativeAtomicitySpec(transactions, views)

    @property
    def is_absolute(self) -> bool:
        """Whether every view is absolute (the traditional model)."""
        return all(
            self.atomicity(tx, observer).is_absolute
            for tx, observer in self.pairs()
        )

    def render(self) -> str:
        """All views in the paper's notation, one per line."""
        lines = []
        for tx, observer in self.pairs():
            view = self.atomicity(tx, observer)
            rendered = view.render(self._transactions[tx])
            lines.append(f"Atomicity(T{tx}, T{observer}): {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RelativeAtomicitySpec({len(self._transactions)} transactions, "
            f"{len(self._views)} explicit views)"
        )


def _parse_view(transaction: Transaction, observer: int, text: str) -> Atomicity:
    """Parse ``"r[x] w[x] | w[z] r[y]"`` into an :class:`Atomicity`.

    The operations listed must match the transaction's program, in order;
    ``|`` marks unit boundaries.  Raises
    :class:`~repro.errors.InvalidSpecError` on any mismatch.
    """
    breakpoints: list[int] = []
    cursor = 0
    for token in text.split():
        if token == "|":
            if cursor == 0 or cursor >= len(transaction):
                raise InvalidSpecError(
                    f"misplaced unit separator in view of T{transaction.tx_id}: "
                    f"{text!r}"
                )
            breakpoints.append(cursor)
            continue
        parsed = parse_operation(token)
        if parsed.tx is not None and parsed.tx != transaction.tx_id:
            raise InvalidSpecError(
                f"view of T{transaction.tx_id} mentions T{parsed.tx}: {token!r}"
            )
        if cursor >= len(transaction):
            raise InvalidSpecError(
                f"view lists too many operations for T{transaction.tx_id}: "
                f"{text!r}"
            )
        expected = transaction[cursor]
        if expected.op_type != parsed.op_type or expected.obj != parsed.obj:
            raise InvalidSpecError(
                f"view token {token!r} does not match operation "
                f"{expected.label} of T{transaction.tx_id}"
            )
        cursor += 1
    if cursor != len(transaction):
        raise InvalidSpecError(
            f"view lists only {cursor} of {len(transaction)} operations of "
            f"T{transaction.tx_id}: {text!r}"
        )
    return Atomicity(transaction.tx_id, observer, len(transaction), breakpoints)
