"""The Farrag–Özsu class: *relatively consistent* schedules.

A schedule is relatively consistent when it is conflict-equivalent to some
*relatively atomic* schedule (Definition 1).  Recognizing this class is
NP-complete [KB92], and this module implements the honest exponential
baseline the paper argues against: a backtracking search over the
conflict-equivalent linear extensions of the schedule, pruning any prefix
that has already broken a foreign atomic unit.

Why this search is correct:

* Two schedules are conflict-equivalent iff one is a linear extension of
  the other's *precedence order* — program order plus the order of every
  conflicting pair.
* A completed extension is relatively atomic iff no operation of ``Tj``
  lands strictly between two operations of an atomic unit of ``Tl``
  relative to ``Tj``.  Because a unit's operations are consecutive in
  program order, every violation is witnessed between two *consecutive*
  operations of ``Tl``, so it can be detected (and pruned) the moment the
  second of the two is placed.

The search also powers :func:`find_equivalent_relatively_atomic`, which
returns the witness schedule — used by the analysis tooling and the tests
that reproduce Figure 4 (a relatively serial schedule with *no* such
witness).
"""

from __future__ import annotations

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.schedules import Schedule, conflicts
from repro.errors import ReproError

__all__ = [
    "is_relatively_consistent",
    "find_equivalent_relatively_atomic",
    "SearchBudgetExceeded",
]


class SearchBudgetExceeded(ReproError):
    """The backtracking search hit its step budget before deciding.

    The relative-consistency test is NP-complete, so callers running it on
    non-trivial inputs (e.g. the complexity benchmark) set a budget and
    treat this as "too expensive" rather than hanging.
    """


def is_relatively_consistent(
    schedule: Schedule,
    spec: RelativeAtomicitySpec,
    max_steps: int | None = None,
) -> bool:
    """Whether ``schedule`` is conflict-equivalent to a relatively atomic
    schedule (the Farrag–Özsu "relatively consistent" class).

    Args:
        schedule: the schedule to test.
        spec: the relative atomicity specification.
        max_steps: optional cap on search node expansions; when exceeded a
            :class:`SearchBudgetExceeded` is raised.
    """
    return (
        find_equivalent_relatively_atomic(schedule, spec, max_steps)
        is not None
    )


def find_equivalent_relatively_atomic(
    schedule: Schedule,
    spec: RelativeAtomicitySpec,
    max_steps: int | None = None,
) -> Schedule | None:
    """Search for a relatively atomic schedule conflict-equivalent to
    ``schedule``; return it, or ``None`` when none exists.

    See the module docstring for the search strategy; worst-case
    exponential, as the class's NP-completeness demands.
    """
    searcher = _Searcher(schedule, spec, max_steps)
    order = searcher.run()
    if order is None:
        return None
    return schedule.reordered(order)


class _Searcher:
    """Backtracking enumeration of conflict-equivalent linear extensions."""

    def __init__(
        self,
        schedule: Schedule,
        spec: RelativeAtomicitySpec,
        max_steps: int | None,
    ) -> None:
        self._schedule = schedule
        self._spec = spec
        self._max_steps = max_steps
        self._steps = 0

        self._tx_ids = sorted(schedule.transactions)
        self._programs = {
            tx_id: schedule.transactions[tx_id].operations
            for tx_id in self._tx_ids
        }
        # Cross-transaction conflict predecessors of every operation,
        # derived once from the input schedule (the precedence order).
        self._conflict_preds: dict[Operation, list[Operation]] = {}
        ops = schedule.operations
        for i, later in enumerate(ops):
            preds = [
                earlier
                for earlier in ops[:i]
                if conflicts(earlier, later)
            ]
            self._conflict_preds[later] = preds
        # For pruning: does placing consecutive ops (index-1, index) of tx
        # close a unit with respect to observer?  same_unit[tx][index] is
        # the set of observers for which ops index-1 and index share a unit.
        self._same_unit: dict[int, list[frozenset[int]]] = {}
        for tx_id in self._tx_ids:
            length = len(self._programs[tx_id])
            shared: list[frozenset[int]] = [frozenset()] * length
            for index in range(1, length):
                observers = set()
                for observer in self._tx_ids:
                    if observer == tx_id:
                        continue
                    view = spec.atomicity(tx_id, observer)
                    if view.unit_of(index - 1) is view.unit_of(index):
                        observers.add(observer)
                shared[index] = frozenset(observers)
            self._same_unit[tx_id] = shared

    def run(self) -> list[Operation] | None:
        total = len(self._schedule)
        cursor = {tx_id: 0 for tx_id in self._tx_ids}
        placed_count: dict[Operation, bool] = {}
        # Position at which each transaction's latest op was placed, and
        # the global tick, to detect foreign interleavings cheaply.
        last_pos = {tx_id: -1 for tx_id in self._tx_ids}
        prefix: list[Operation] = []

        def candidates() -> list[int]:
            ready: list[int] = []
            for tx_id in self._tx_ids:
                index = cursor[tx_id]
                program = self._programs[tx_id]
                if index >= len(program):
                    continue
                op = program[index]
                if all(p in placed_count for p in self._conflict_preds[op]):
                    ready.append(tx_id)
            return ready

        def violates(tx_id: int) -> bool:
            index = cursor[tx_id]
            if index == 0:
                return False
            observers = self._same_unit[tx_id][index]
            if not observers:
                return False
            boundary = last_pos[tx_id]
            return any(last_pos[obs] > boundary for obs in observers)

        def extend() -> bool:
            if len(prefix) == total:
                return True
            self._steps += 1
            if self._max_steps is not None and self._steps > self._max_steps:
                raise SearchBudgetExceeded(
                    f"relative-consistency search exceeded {self._max_steps} "
                    "steps"
                )
            for tx_id in candidates():
                if violates(tx_id):
                    continue
                op = self._programs[tx_id][cursor[tx_id]]
                saved_last = last_pos[tx_id]
                prefix.append(op)
                placed_count[op] = True
                last_pos[tx_id] = len(prefix) - 1
                cursor[tx_id] += 1
                if extend():
                    return True
                cursor[tx_id] -= 1
                last_pos[tx_id] = saved_last
                del placed_count[op]
                prefix.pop()
            return False

        if extend():
            return list(prefix)
        return None
