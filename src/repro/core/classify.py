"""Classify a schedule into the Figure 5 hierarchy.

Figure 5 of the paper relates five classes::

    serial ⊆ relatively atomic ⊆ relatively serial   ⊆ relatively serializable
                              ⊆ relatively consistent ⊆ relatively serializable

(relatively serial and relatively consistent are incomparable with each
other — Figure 4 exhibits a relatively serial schedule that is not
relatively consistent).

:func:`classify` computes the full membership profile of one schedule;
:class:`ScheduleClass` names the classes.  The cheap polynomial tests
always run; the NP-complete relative-consistency test runs only when a
budget is provided or the instance is small.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.checkers import is_relatively_atomic, is_relatively_serial
from repro.core.consistent import SearchBudgetExceeded, is_relatively_consistent
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.serializability import is_conflict_serializable

__all__ = ["ScheduleClass", "ClassificationReport", "classify"]


class ScheduleClass(enum.Enum):
    """The schedule classes of the paper's Figure 5 (plus the classical
    ones they generalize)."""

    SERIAL = "serial"
    CONFLICT_SERIALIZABLE = "conflict serializable"
    RELATIVELY_ATOMIC = "relatively atomic"
    RELATIVELY_SERIAL = "relatively serial"
    RELATIVELY_CONSISTENT = "relatively consistent"
    RELATIVELY_SERIALIZABLE = "relatively serializable"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class ClassificationReport:
    """Membership profile of one schedule under one spec.

    ``relatively_consistent`` is ``None`` when the NP-complete test was
    skipped (budget exhausted or not requested).
    """

    serial: bool
    conflict_serializable: bool
    relatively_atomic: bool
    relatively_serial: bool
    relatively_serializable: bool
    relatively_consistent: bool | None

    @property
    def memberships(self) -> frozenset[ScheduleClass]:
        """The set of classes the schedule belongs to."""
        members = set()
        if self.serial:
            members.add(ScheduleClass.SERIAL)
        if self.conflict_serializable:
            members.add(ScheduleClass.CONFLICT_SERIALIZABLE)
        if self.relatively_atomic:
            members.add(ScheduleClass.RELATIVELY_ATOMIC)
        if self.relatively_serial:
            members.add(ScheduleClass.RELATIVELY_SERIAL)
        if self.relatively_serializable:
            members.add(ScheduleClass.RELATIVELY_SERIALIZABLE)
        if self.relatively_consistent:
            members.add(ScheduleClass.RELATIVELY_CONSISTENT)
        return frozenset(members)

    def describe(self) -> str:
        """One line per class, human readable."""
        rows = [
            ("serial", self.serial),
            ("conflict serializable", self.conflict_serializable),
            ("relatively atomic", self.relatively_atomic),
            ("relatively serial", self.relatively_serial),
            ("relatively consistent", self.relatively_consistent),
            ("relatively serializable", self.relatively_serializable),
        ]
        lines = []
        for name, value in rows:
            mark = "?" if value is None else ("yes" if value else "no")
            lines.append(f"{name:<26}{mark}")
        return "\n".join(lines)


def classify(
    schedule: Schedule,
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
) -> ClassificationReport:
    """Compute the full class-membership profile of ``schedule``.

    Args:
        schedule: the schedule to classify.
        spec: the relative atomicity specification.
        consistency_budget: step budget for the NP-complete
            relative-consistency search; ``None`` disables that test
            entirely (reported as ``None``), any integer caps it (budget
            exhaustion also reports ``None``).
    """
    rsg = RelativeSerializationGraph(schedule, spec)
    relatively_consistent: bool | None
    if consistency_budget is None:
        relatively_consistent = None
    else:
        try:
            relatively_consistent = is_relatively_consistent(
                schedule, spec, max_steps=consistency_budget
            )
        except SearchBudgetExceeded:
            relatively_consistent = None
    return ClassificationReport(
        serial=schedule.is_serial,
        conflict_serializable=is_conflict_serializable(schedule),
        relatively_atomic=is_relatively_atomic(schedule, spec),
        relatively_serial=is_relatively_serial(
            schedule, spec, rsg.dependency
        ),
        relatively_serializable=rsg.is_acyclic,
        relatively_consistent=relatively_consistent,
    )
