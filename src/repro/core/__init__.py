"""The paper's primary contribution: the relative serializability theory.

Modules:

* :mod:`~repro.core.operations` / :mod:`~repro.core.transactions` /
  :mod:`~repro.core.schedules` — the read/write transaction model of
  Section 2 (totally ordered transactions and schedules, conflicts,
  conflict equivalence).
* :mod:`~repro.core.atomicity` — atomic units, ``Atomicity(Ti, Tj)``
  views, and full relative atomicity specifications.
* :mod:`~repro.core.dependency` — the ``depends-on`` relation.
* :mod:`~repro.core.rsg` — the Relative Serialization Graph
  (Definition 3), its acyclicity test, and the constructive extraction of
  an equivalent relatively serial schedule (Theorem 1).
* :mod:`~repro.core.checkers` — definition-based membership tests for
  serial / relatively atomic / relatively serial schedules.
* :mod:`~repro.core.serializability` — classical conflict serializability
  (serialization graph, Lemma 1 machinery).
* :mod:`~repro.core.consistent` — the exponential Farrag–Özsu
  relative-consistency baseline.
* :mod:`~repro.core.brute` — brute-force relative serializability, used as
  ground truth for Theorem 1 cross-validation.
* :mod:`~repro.core.classify` — classify a schedule into the Figure 5
  hierarchy.
* :mod:`~repro.core.recovery` — the classical recovery classes
  (recoverable / ACA / strict), quantifying what early visibility costs.
"""

from repro.core.atomicity import Atomicity, AtomicUnit, RelativeAtomicitySpec
from repro.core.checkers import (
    interleaved_operations,
    is_relatively_atomic,
    is_relatively_serial,
    is_serial,
)
from repro.core.classify import ScheduleClass, classify
from repro.core.consistent import is_relatively_consistent
from repro.core.dependency import DependencyRelation
from repro.core.operations import Operation, OpType, read, write
from repro.core.recovery import (
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
    recovery_profile,
)
from repro.core.rsg import ArcKind, RelativeSerializationGraph, is_relatively_serializable
from repro.core.schedules import Schedule, conflict_equivalent, conflicts
from repro.core.serializability import (
    equivalent_serial_order,
    is_conflict_serializable,
    serialization_graph,
)
from repro.core.transactions import Transaction

__all__ = [
    "Operation",
    "OpType",
    "read",
    "write",
    "Transaction",
    "Schedule",
    "conflicts",
    "conflict_equivalent",
    "AtomicUnit",
    "Atomicity",
    "RelativeAtomicitySpec",
    "DependencyRelation",
    "ArcKind",
    "RelativeSerializationGraph",
    "is_relatively_serializable",
    "is_serial",
    "is_relatively_atomic",
    "is_relatively_serial",
    "interleaved_operations",
    "is_relatively_consistent",
    "is_recoverable",
    "avoids_cascading_aborts",
    "is_strict",
    "recovery_profile",
    "serialization_graph",
    "is_conflict_serializable",
    "equivalent_serial_order",
    "ScheduleClass",
    "classify",
]
