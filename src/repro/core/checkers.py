"""Definition-based membership tests for the paper's schedule classes.

These implement Definitions 1 and 2 *literally* (no graphs): a schedule is
relatively atomic when no operation is interleaved with a foreign atomic
unit, and relatively serial when every such interleaving is dependency-free
in both directions.  They serve as executable ground truth against which
the RSG machinery is validated (Theorem 1 cross-checks in the test suite),
and as the acceptance criteria inside the exponential baselines.

A note on "interleaved": operation ``o`` of ``Tj`` is interleaved with
``AtomicUnit(k, Ti, Tj)`` when some unit operation precedes ``o`` and some
unit operation follows ``o`` in the schedule.  Because schedules preserve
program order, a unit's operations occupy increasing positions, so this is
exactly "``o``'s position lies strictly between the unit's first and last
positions".
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.atomicity import AtomicUnit, RelativeAtomicitySpec
from repro.core.dependency import DependencyRelation
from repro.core.operations import Operation
from repro.core.schedules import Schedule

__all__ = [
    "is_serial",
    "is_relatively_atomic",
    "is_relatively_serial",
    "interleaved_operations",
    "relative_serial_violations",
]


def is_serial(schedule: Schedule) -> bool:
    """Whether transactions execute one after another (no interleaving)."""
    return schedule.is_serial


def interleaved_operations(
    schedule: Schedule, spec: RelativeAtomicitySpec
) -> Iterator[tuple[Operation, AtomicUnit]]:
    """Yield every ``(op, unit)`` pair where ``op`` is interleaved with a
    foreign atomic unit ``AtomicUnit(k, Tl, T_op.tx)``.

    An empty result means the schedule is relatively atomic
    (Definition 1).
    """
    transactions = schedule.transactions
    for owner_id, owner in transactions.items():
        for observer_id in transactions:
            if observer_id == owner_id:
                continue
            view = spec.atomicity(owner_id, observer_id)
            for unit in view.units:
                if unit.size < 2:
                    continue  # a singleton unit cannot enclose anything
                first = owner[unit.start]
                last = owner[unit.end]
                span_start = schedule.position(first)
                span_end = schedule.position(last)
                if span_end - span_start == unit.size - 1:
                    continue  # unit is contiguous in the schedule
                for op in schedule.operations[span_start + 1:span_end]:
                    if op.tx == observer_id:
                        yield op, unit


def is_relatively_atomic(schedule: Schedule, spec: RelativeAtomicitySpec) -> bool:
    """Definition 1: no operation of any ``Ti`` is interleaved with any
    atomic unit of any ``Tl`` relative to ``Ti``."""
    return next(interleaved_operations(schedule, spec), None) is None


def relative_serial_violations(
    schedule: Schedule,
    spec: RelativeAtomicitySpec,
    dependency: DependencyRelation | None = None,
) -> Iterator[tuple[Operation, AtomicUnit, Operation]]:
    """Yield Definition 2 violations as ``(op, unit, unit_op)`` triples.

    A triple means: ``op`` is interleaved with ``unit`` (an atomic unit of
    another transaction relative to ``op``'s transaction) and a dependency
    exists between ``op`` and ``unit_op`` (a member of the unit) in one
    direction or the other.  An empty result means the schedule is
    relatively serial.
    """
    if dependency is None:
        dependency = DependencyRelation(schedule)
    owner_by_id = schedule.transactions
    for op, unit in interleaved_operations(schedule, spec):
        owner = owner_by_id[unit.tx]
        for unit_op in unit.operations(owner):
            if dependency.related(op, unit_op):
                yield op, unit, unit_op


def is_relatively_serial(
    schedule: Schedule,
    spec: RelativeAtomicitySpec,
    dependency: DependencyRelation | None = None,
) -> bool:
    """Definition 2: interleavings inside foreign atomic units are allowed
    only between dependency-free operations (in both directions)."""
    return (
        next(relative_serial_violations(schedule, spec, dependency), None)
        is None
    )
