"""repro — Relative Serializability for relaxed transaction atomicity.

A full reproduction of *"Relative Serializability: An Approach for
Relaxing the Atomicity of Transactions"* (D. Agrawal, J. L. Bruno,
A. El Abbadi, V. Krishnaswamy — PODS 1994).

Quick tour::

    from repro import (
        Transaction, Schedule, RelativeAtomicitySpec,
        RelativeSerializationGraph, is_relatively_serializable, classify,
    )

    t1 = Transaction.from_notation(1, "r[x] w[x] w[z] r[y]")
    t2 = Transaction.from_notation(2, "r[y] w[y] r[x]")
    spec = RelativeAtomicitySpec([t1, t2], {
        (1, 2): "r[x] w[x] | w[z] r[y]",   # "|" = atomic-unit boundary
        (2, 1): "r[y] | w[y] r[x]",
    })
    s = Schedule.from_notation([t1, t2],
                               "r2[y] r1[x] w1[x] w2[y] r2[x] w1[z] r1[y]")
    is_relatively_serializable(s, spec)        # Theorem 1 (RSG acyclicity)
    RelativeSerializationGraph(s, spec).equivalent_relatively_serial_schedule()

Layers:

* :mod:`repro.core` — the theory (model, specs, depends-on, RSG,
  checkers, classifier);
* :mod:`repro.specs` — spec builders (absolute / finest / breakpoints /
  Garcia-Molina compatibility sets / Lynch multilevel atomicity);
* :mod:`repro.paper` — the paper's Figures 1-4 as fixtures;
* :mod:`repro.protocols` + :mod:`repro.sim` — online schedulers (2PL,
  SGT, RSGT, altruistic locking) and the simulator that drives them;
* :mod:`repro.engine` — a transactional key-value store + executor;
* :mod:`repro.workloads` / :mod:`repro.analysis` — scenario generators
  and the experiment harnesses;
* :mod:`repro.io` — notation parser, JSON, DOT export.
"""

from repro.core.atomicity import Atomicity, AtomicUnit, RelativeAtomicitySpec
from repro.core.checkers import (
    is_relatively_atomic,
    is_relatively_serial,
    is_serial,
)
from repro.core.classify import ClassificationReport, ScheduleClass, classify
from repro.core.consistent import is_relatively_consistent
from repro.core.dependency import DependencyRelation
from repro.core.operations import Operation, OpType, read, write
from repro.core.recovery import (
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
    recovery_profile,
)
from repro.core.rsg import (
    ArcKind,
    IncrementalRsg,
    RelativeSerializationGraph,
    is_relatively_serializable,
)
from repro.core.schedules import Schedule, conflict_equivalent, conflicts
from repro.core.serializability import (
    equivalent_serial_schedule,
    is_conflict_serializable,
    serialization_graph,
)
from repro.core.transactions import Transaction
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Operation",
    "OpType",
    "read",
    "write",
    "Transaction",
    "Schedule",
    "conflicts",
    "conflict_equivalent",
    "AtomicUnit",
    "Atomicity",
    "RelativeAtomicitySpec",
    "DependencyRelation",
    "ArcKind",
    "IncrementalRsg",
    "RelativeSerializationGraph",
    "is_relatively_serializable",
    "is_serial",
    "is_relatively_atomic",
    "is_relatively_serial",
    "is_relatively_consistent",
    "is_conflict_serializable",
    "is_recoverable",
    "avoids_cascading_aborts",
    "is_strict",
    "recovery_profile",
    "serialization_graph",
    "equivalent_serial_schedule",
    "ScheduleClass",
    "ClassificationReport",
    "classify",
]
