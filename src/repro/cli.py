"""Command-line interface (``relser`` / ``python -m repro``).

Subcommands:

* ``classify FILE [--schedule NAME]`` — classify the schedules of a
  problem file into the Figure 5 hierarchy;
* ``rsg FILE --schedule NAME [--dot]`` — build the relative
  serialization graph, report acyclicity and the arc census, optionally
  emitting Graphviz DOT;
* ``witness FILE --schedule NAME`` — extract the equivalent relatively
  serial schedule (Theorem 1's constructive half);
* ``demo [--figure N]`` — replay the paper's figures end to end;
* ``census FILE`` — exhaustive class census over all interleavings of
  the file's transactions (small inputs only);
* ``simulate FILE --protocol NAME`` — drive the file's transactions
  through an online protocol (2pl / sgt / altruistic / rel-locking /
  rsgt) and report the committed history, metrics, and the offline
  verification verdict;
* ``infer FILE`` — compute the minimal relative atomicity relaxation
  under which every schedule in the file is relatively serial, printed
  as ``atomicity`` lines ready to paste back into a problem file;
* ``chop FILE`` — compute a finest correct transaction chopping
  [SSV92] of the file's transactions and print it as ``atomicity``
  lines (the chopping embedded into the relative model);
* ``faults --seed N --runs K --protocol NAME`` — run a seeded,
  deterministic fault-injection campaign (aborts, stalls, kills, store
  crashes) and check the certified-survivor invariants on every run;
  exits 0 only if each committed projection certifies relatively
  serializable and the recovered store state matches a fault-free
  execution of exactly the committed transactions;
* ``trace FILE --protocol NAME [--format jsonl|chrome|spans|spans-chrome]``
  — simulate with tracing enabled and emit the run's event trace
  (native JSONL, the ``chrome://tracing`` timeline format, or the
  folded request-lifecycle spans in either flavour);
* ``explain FILE --schedule NAME [--json | --dot]`` — replay a schedule
  against the file's spec and explain the verdict: the labelled RSG
  witness cycle on rejection, the equivalent relatively serial schedule
  on admission;
* ``serve [--port N] [--protocol NAME] [--chaos]
  [--flight-recorder DIR]`` — run the long-running transaction service
  (NDJSON over TCP, multi-tenant, admission-controlled,
  SIGTERM-drained; see :mod:`repro.service`);
* ``top --connect HOST PORT [--tenant NAME] [--interval S | --once]``
  — live wait-for/donation/RSG view of a running server, refreshed
  from the ``inspect`` verb;
* ``dump --connect HOST PORT [-o FILE]`` — fetch a flight-recorder
  dump (last-N events per tenant) from a running server as JSONL;
* ``chaos [--connect HOST PORT] --clients N --seed S`` — act out a
  seeded fault plan against a live server (or a self-hosted one) and
  certify the survivor invariant; exits 0 only if it holds.

``simulate`` and ``faults`` additionally accept ``--trace FILE`` and
``--metrics FILE`` (``census``: ``--metrics FILE``) to write the
deterministic JSONL trace / metrics report alongside their normal
output; ``faults --flight-recorder DIR`` replays every run's trace
through a flight recorder and writes the triggered dumps there.

The problem-file format is documented in :mod:`repro.io.notation`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.classes import census_exhaustive
from repro.analysis.tables import format_table
from repro.core.recovery import recovery_profile
from repro.core.classify import classify
from repro.core.rsg import ArcKind, RelativeSerializationGraph
from repro.errors import CycleError, ReproError
from repro.io.dot import rsg_to_dot
from repro.io.notation import Problem, parse_problem
from repro.paper import figure1, figure2, figure3, figure4
from repro.workloads.enumerate import count_interleavings

__all__ = ["main", "build_parser"]

_FIGURES = {1: figure1, 2: figure2, 3: figure3, 4: figure4}


def _make_protocol(name, spec):
    from repro.protocols import make_scheduler

    return make_scheduler(name, spec)


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative (0 = one per CPU core), got {jobs}"
        )
    return jobs


_PROTOCOLS = ("2pl", "sgt", "altruistic", "rel-locking", "rsgt")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="relser",
        description=(
            "Relative serializability tools (Agrawal et al., PODS 1994)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser(
        "classify", help="classify schedules of a problem file"
    )
    classify_cmd.add_argument("file", type=Path)
    classify_cmd.add_argument(
        "--schedule", help="classify only this named schedule"
    )
    classify_cmd.add_argument(
        "--budget",
        type=int,
        default=200_000,
        help="step budget for the NP-complete relative-consistency test",
    )

    rsg_cmd = commands.add_parser(
        "rsg", help="build and inspect a relative serialization graph"
    )
    rsg_cmd.add_argument("file", type=Path)
    rsg_cmd.add_argument("--schedule", required=True)
    rsg_cmd.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT instead"
    )

    witness_cmd = commands.add_parser(
        "witness",
        help="extract the equivalent relatively serial schedule",
    )
    witness_cmd.add_argument("file", type=Path)
    witness_cmd.add_argument("--schedule", required=True)

    demo_cmd = commands.add_parser(
        "demo", help="replay the paper's figures"
    )
    demo_cmd.add_argument(
        "--figure", type=int, choices=sorted(_FIGURES), default=None
    )

    census_cmd = commands.add_parser(
        "census",
        help="exhaustive class census over all interleavings (small inputs)",
    )
    census_cmd.add_argument("file", type=Path)
    census_cmd.add_argument(
        "--limit",
        type=int,
        default=50_000,
        help="refuse to enumerate more interleavings than this",
    )
    census_cmd.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help=(
            "worker processes for the sweep (0 = one per CPU core; "
            "results are identical at any job count)"
        ),
    )
    census_cmd.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help="write the census counters as a deterministic JSON report",
    )

    simulate_cmd = commands.add_parser(
        "simulate",
        help="drive the transactions through an online protocol",
    )
    simulate_cmd.add_argument("file", type=Path)
    simulate_cmd.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOLS),
        default="rsgt",
    )
    simulate_cmd.add_argument(
        "--backoff", type=int, default=2, help="restart backoff base"
    )
    simulate_cmd.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="write the run's JSONL event trace to this file",
    )
    simulate_cmd.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help="write the run's deterministic metrics report to this file",
    )

    infer_cmd = commands.add_parser(
        "infer",
        help="infer the minimal spec legalizing the file's schedules",
    )
    infer_cmd.add_argument("file", type=Path)

    chop_cmd = commands.add_parser(
        "chop",
        help="finest correct transaction chopping [SSV92], as a spec",
    )
    chop_cmd.add_argument("file", type=Path)

    faults_cmd = commands.add_parser(
        "faults",
        help="seeded fault-injection campaign with invariant checks",
    )
    faults_cmd.add_argument(
        "--seed", type=int, default=0, help="campaign base seed"
    )
    faults_cmd.add_argument(
        "--runs", type=int, default=20, help="independent runs"
    )
    faults_cmd.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOLS),
        default="rsgt",
    )
    faults_cmd.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help=(
            "worker processes (0 = one per CPU core; reports are "
            "byte-identical at any job count)"
        ),
    )
    faults_cmd.add_argument(
        "--abort-rate", type=float, default=0.3, dest="abort_rate"
    )
    faults_cmd.add_argument(
        "--stall-rate", type=float, default=0.3, dest="stall_rate"
    )
    faults_cmd.add_argument(
        "--kill-rate", type=float, default=0.15, dest="kill_rate"
    )
    faults_cmd.add_argument(
        "--crash-rate", type=float, default=0.25, dest="crash_rate"
    )
    faults_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the full byte-stable JSON report instead of the summary",
    )
    faults_cmd.add_argument(
        "--trace",
        type=Path,
        default=None,
        help=(
            "collect per-run traces and write the campaign's JSONL "
            "trace to this file (byte-identical at any --jobs count)"
        ),
    )
    faults_cmd.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help=(
            "collect per-run metrics and write the merged deterministic "
            "report to this file"
        ),
    )
    faults_cmd.add_argument(
        "--flight-recorder",
        type=Path,
        default=None,
        dest="flight_recorder",
        help=(
            "replay every run's trace through a flight recorder keyed "
            "per run and write the triggered dumps (crash/watchdog/"
            "livelock) plus a final campaign dump into this directory"
        ),
    )

    trace_cmd = commands.add_parser(
        "trace",
        help="simulate with tracing enabled and emit the event trace",
    )
    trace_cmd.add_argument("file", type=Path)
    trace_cmd.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOLS),
        default="rsgt",
    )
    trace_cmd.add_argument(
        "--backoff", type=int, default=2, help="restart backoff base"
    )
    trace_cmd.add_argument(
        "--format",
        choices=("jsonl", "chrome", "spans", "spans-chrome"),
        default="jsonl",
        help=(
            "native JSONL, the chrome://tracing timeline format, or "
            "the folded request-lifecycle spans (JSONL / chrome slices)"
        ),
    )
    trace_cmd.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="write the trace to this file instead of stdout",
    )

    explain_cmd = commands.add_parser(
        "explain",
        help="explain a schedule's verdict (witness cycle or serial witness)",
    )
    explain_cmd.add_argument("file", type=Path)
    explain_cmd.add_argument("--schedule", required=True)
    explain_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the explanation as byte-stable JSON",
    )
    explain_cmd.add_argument(
        "--dot",
        action="store_true",
        help="emit the witness cycle as Graphviz DOT (rejections only)",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="run the long-running RSR transaction service",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 = OS-assigned; see --port-file)",
    )
    serve_cmd.add_argument(
        "--protocol",
        choices=sorted(_PROTOCOLS),
        default="rsgt",
        help="protocol for implicitly created tenants",
    )
    serve_cmd.add_argument(
        "--max-sessions",
        type=int,
        default=256,
        help="in-flight session budget (begins beyond it are shed)",
    )
    serve_cmd.add_argument(
        "--session-timeout",
        type=float,
        default=30.0,
        help="per-session deadline in seconds",
    )
    serve_cmd.add_argument(
        "--op-timeout",
        type=float,
        default=10.0,
        help="per-operation deadline in seconds (includes WAIT retries)",
    )
    serve_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="grace window for in-flight sessions on SIGTERM",
    )
    serve_cmd.add_argument(
        "--chaos",
        action="store_true",
        help="enable the destructive crash verb (chaos testing only)",
    )
    serve_cmd.add_argument(
        "--seed", type=int, default=0, help="jitter seed"
    )
    serve_cmd.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write 'host port' here once the listener is bound",
    )
    serve_cmd.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help="write the final metrics report to this file on drain",
    )
    serve_cmd.add_argument(
        "--flight-recorder",
        type=Path,
        default=None,
        dest="flight_recorder",
        help=(
            "directory for flight-recorder dumps (written automatically "
            "on store crash / watchdog / livelock and on drain)"
        ),
    )
    serve_cmd.add_argument(
        "--flight-capacity",
        type=int,
        default=256,
        dest="flight_capacity",
        help="events kept per tenant ring in the flight recorder",
    )

    top_cmd = commands.add_parser(
        "top",
        help="live wait-for/donation/RSG view of a running server",
    )
    top_cmd.add_argument(
        "--connect",
        nargs=2,
        metavar=("HOST", "PORT"),
        required=True,
        help="target server (see serve --port-file)",
    )
    top_cmd.add_argument(
        "--tenant", default=None, help="show only this tenant"
    )
    top_cmd.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh period in seconds",
    )
    top_cmd.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (no refresh loop)",
    )

    dump_cmd = commands.add_parser(
        "dump",
        help="fetch a flight-recorder dump from a running server",
    )
    dump_cmd.add_argument(
        "--connect",
        nargs=2,
        metavar=("HOST", "PORT"),
        required=True,
        help="target server",
    )
    dump_cmd.add_argument(
        "--cause",
        default=None,
        help="cause label stamped into the dump header",
    )
    dump_cmd.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="write the JSONL dump here instead of stdout",
    )

    chaos_cmd = commands.add_parser(
        "chaos",
        help="replay a seeded fault plan against a live server and "
        "certify the survivor invariant",
    )
    chaos_cmd.add_argument(
        "--connect",
        nargs=2,
        metavar=("HOST", "PORT"),
        default=None,
        help="target a running server; omit to self-host one in-process",
    )
    chaos_cmd.add_argument("--clients", type=int, default=50)
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument(
        "--protocol", choices=sorted(_PROTOCOLS), default="rsgt"
    )
    chaos_cmd.add_argument("--objects", type=int, default=8)
    chaos_cmd.add_argument("--abort-rate", type=float, default=0.05)
    chaos_cmd.add_argument("--stall-rate", type=float, default=0.10)
    chaos_cmd.add_argument("--kill-rate", type=float, default=0.05)
    chaos_cmd.add_argument(
        "--crash-at",
        type=int,
        default=None,
        help="store-crash trigger (global granted-op count)",
    )
    chaos_cmd.add_argument(
        "--max-sessions",
        type=int,
        default=256,
        help="admission budget of the self-hosted server",
    )
    chaos_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the chaos report as JSON",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "classify":
            return _cmd_classify(args)
        if args.command == "rsg":
            return _cmd_rsg(args)
        if args.command == "witness":
            return _cmd_witness(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "census":
            return _cmd_census(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "infer":
            return _cmd_infer(args)
        if args.command == "chop":
            return _cmd_chop(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "dump":
            return _cmd_dump(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


def _load(path: Path) -> Problem:
    return parse_problem(path.read_text())


def _cmd_classify(args: argparse.Namespace) -> int:
    problem = _load(args.file)
    names = [args.schedule] if args.schedule else sorted(problem.schedules)
    for name in names:
        schedule = problem.schedule(name)
        report = classify(
            schedule, problem.spec, consistency_budget=args.budget
        )
        print(f"schedule {name}: {schedule}")
        print(report.describe())
        print()
    return 0


def _cmd_rsg(args: argparse.Namespace) -> int:
    problem = _load(args.file)
    schedule = problem.schedule(args.schedule)
    rsg = RelativeSerializationGraph(schedule, problem.spec)
    if args.dot:
        print(rsg_to_dot(rsg), end="")
        return 0
    print(f"schedule: {schedule}")
    print(f"vertices: {rsg.graph.node_count}")
    for kind in ArcKind:
        print(f"{kind.name.lower():>14} arcs: {len(rsg.arcs(kind))}")
    if rsg.is_acyclic:
        print("acyclic: yes (relatively serializable)")
    else:
        cycle = " -> ".join(op.label for op in rsg.cycle)
        print(f"acyclic: no (cycle: {cycle})")
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    problem = _load(args.file)
    schedule = problem.schedule(args.schedule)
    rsg = RelativeSerializationGraph(schedule, problem.spec)
    try:
        witness = rsg.equivalent_relatively_serial_schedule()
    except CycleError as exc:
        cycle = " -> ".join(op.label for op in exc.cycle or [])
        print(
            "not relatively serializable "
            f"(RSG cycle: {cycle})",
            file=sys.stderr,
        )
        return 1
    print(witness)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    numbers = [args.figure] if args.figure else sorted(_FIGURES)
    for number in numbers:
        figure = _FIGURES[number]()
        print(f"=== {figure.name} ===")
        for transaction in figure.transactions:
            print(transaction)
        print(figure.spec.render())
        for name, schedule in figure.schedules.items():
            print(f"\nschedule {name}: {schedule}")
            print(classify(schedule, figure.spec).describe())
        print()
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    problem = _load(args.file)
    total = count_interleavings(problem.transactions)
    if total > args.limit:
        print(
            f"error: {total} interleavings exceed --limit {args.limit}",
            file=sys.stderr,
        )
        return 2
    result = census_exhaustive(
        problem.transactions, problem.spec, jobs=args.jobs
    )
    rows = [(name, count, rate) for name, count, rate in result.as_rows()]
    print(
        format_table(
            ["class", "schedules", "fraction"],
            rows,
            title=f"census over {result.total} interleavings",
        )
    )
    if result.undecided_consistent:
        print(
            f"(relative consistency undecided for "
            f"{result.undecided_consistent} schedules)"
        )
    if args.metrics is not None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for name, count, _rate in result.as_rows():
            registry.inc("census.schedules", count, cls=name)
        registry.gauge("census.total", result.total)
        args.metrics.write_text(registry.to_json() + "\n", encoding="utf-8")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.rsg import is_relatively_serializable
    from repro.core.serializability import is_conflict_serializable
    from repro.obs.bus import RingBufferSink, TraceBus
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.runner import simulate

    problem = _load(args.file)
    scheduler = _make_protocol(args.protocol, problem.spec)
    sink = RingBufferSink() if args.trace is not None else None
    bus = TraceBus(sink) if sink is not None else None
    metrics = MetricsRegistry() if args.metrics is not None else None
    result = simulate(
        problem.transactions,
        scheduler,
        backoff=args.backoff,
        bus=bus,
        metrics=metrics,
    )
    if sink is not None:
        args.trace.write_text(sink.text(), encoding="utf-8")
    if metrics is not None:
        args.metrics.write_text(metrics.to_json() + "\n", encoding="utf-8")
    print(f"protocol: {result.protocol}")
    print(f"committed history: {result.schedule}")
    rows = [
        [
            outcome.tx_id,
            outcome.arrival,
            outcome.commit_tick,
            outcome.response_time,
            outcome.restarts,
            outcome.waits,
        ]
        for outcome in result.outcomes.values()
    ]
    print(
        format_table(
            ["tx", "arrival", "commit", "response", "restarts", "waits"],
            rows,
        )
    )
    print(
        f"makespan {result.makespan}, throughput "
        f"{result.throughput:.3f} tx/tick"
    )
    if args.protocol in ("rsgt", "rel-locking"):
        verified = is_relatively_serializable(result.schedule, problem.spec)
        print(f"relatively serializable (offline RSG test): "
              f"{'yes' if verified else 'NO'}")
    else:
        verified = is_conflict_serializable(result.schedule)
        print(f"conflict serializable (offline SG test): "
              f"{'yes' if verified else 'NO'}")
    profile = recovery_profile(result.schedule)
    print(
        "recovery: "
        f"recoverable={'yes' if profile['rc'] else 'no'}, "
        f"aca={'yes' if profile['aca'] else 'no'}, "
        f"strict={'yes' if profile['st'] else 'no'}"
    )
    return 0 if verified else 1


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.analysis.inference import infer_spec

    problem = _load(args.file)
    if not problem.schedules:
        print("error: the file declares no schedules", file=sys.stderr)
        return 2
    spec = infer_spec(
        problem.transactions, list(problem.schedules.values())
    )
    print(f"# inferred from {len(problem.schedules)} schedule(s); "
          "absolute pairs omitted")
    emitted = 0
    for tx, observer in spec.pairs():
        view = spec.atomicity(tx, observer)
        if view.is_absolute:
            continue
        rendered = view.render(spec.transactions[tx])
        print(f"atomicity T{tx}/T{observer}: {rendered}")
        emitted += 1
    if not emitted:
        print("# (absolute atomicity already suffices)")
    return 0


def _cmd_chop(args: argparse.Namespace) -> int:
    from repro.specs.chopping import (
        chopping_to_spec,
        finest_correct_chopping,
    )

    problem = _load(args.file)
    chopping = finest_correct_chopping(problem.transactions)
    spec = chopping_to_spec(chopping)
    print(
        f"# finest correct chopping: {chopping.piece_count()} pieces "
        f"across {len(problem.transactions)} transactions"
    )
    emitted = 0
    for tx, observer in spec.pairs():
        view = spec.atomicity(tx, observer)
        if view.is_absolute:
            continue
        rendered = view.render(spec.transactions[tx])
        print(f"atomicity T{tx}/T{observer}: {rendered}")
        emitted += 1
    if not emitted:
        print("# (no transaction can be chopped: SC-cycles everywhere)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import CampaignConfig, run_campaign

    config = CampaignConfig(
        protocol=args.protocol,
        runs=args.runs,
        seed=args.seed,
        abort_rate=args.abort_rate,
        stall_rate=args.stall_rate,
        kill_rate=args.kill_rate,
        crash_rate=args.crash_rate,
        trace=(
            args.trace is not None
            or args.metrics is not None
            or args.flight_recorder is not None
        ),
    )
    report = run_campaign(config, jobs=args.jobs)
    if args.flight_recorder is not None:
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(directory=args.flight_recorder)
        for record in report.records:
            recorder.replay_jsonl(record.trace, key=f"run{record.index}")
        final = recorder.dump("campaign-end")
        print(
            f"flight recorder: {len(recorder.dumped)} dump(s) in "
            f"{args.flight_recorder} (final: {final.name})"
        )
    if args.trace is not None:
        args.trace.write_text(report.trace_jsonl(), encoding="utf-8")
    if args.metrics is not None:
        args.metrics.write_text(
            report.metrics_json() + "\n", encoding="utf-8"
        )
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
        for record in report.records:
            survivors = ",".join(f"T{tx}" for tx in record.survivors)
            print(
                f"  run {record.index:>3} seed={record.seed}: "
                f"committed={record.committed} aborted={record.aborted} "
                f"survivors=[{survivors}] "
                f"certified={'yes' if record.certified else 'NO'} "
                f"state={'ok' if record.state_ok else 'MISMATCH'}"
            )
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.bus import RingBufferSink, TraceBus
    from repro.obs.trace import chrome_trace_json
    from repro.sim.runner import simulate

    problem = _load(args.file)
    scheduler = _make_protocol(args.protocol, problem.spec)
    sink = RingBufferSink()
    simulate(
        problem.transactions,
        scheduler,
        backoff=args.backoff,
        bus=TraceBus(sink),
    )
    if args.format == "chrome":
        text = chrome_trace_json(sink.events) + "\n"
    elif args.format in ("spans", "spans-chrome"):
        import json

        from repro.obs.spans import (
            spans_from_events,
            spans_jsonl,
            spans_to_chrome,
        )

        spans = spans_from_events(sink.events)
        if args.format == "spans":
            text = spans_jsonl(spans)
        else:
            text = json.dumps(spans_to_chrome(spans), sort_keys=True) + "\n"
    else:
        text = sink.text()
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
    else:
        print(text, end="")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.io.dot import witness_to_dot
    from repro.obs.explain import explain_schedule

    problem = _load(args.file)
    schedule = problem.schedule(args.schedule)
    explanation = explain_schedule(schedule, problem.spec)
    if args.dot:
        if explanation.witness is None:
            print(
                "admissible: no witness cycle to render",
                file=sys.stderr,
            )
            return 0
        print(witness_to_dot(explanation.witness), end="")
        return 0
    if args.json:
        print(json.dumps(explanation.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"schedule {args.schedule}: {schedule}")
    print(explanation.format())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import RsrServer, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        default_protocol=args.protocol,
        max_sessions=args.max_sessions,
        session_timeout_s=args.session_timeout,
        op_timeout_s=args.op_timeout,
        drain_timeout_s=args.drain_timeout,
        jitter_seed=args.seed,
        chaos=args.chaos,
        flight_dir=args.flight_recorder,
        flight_capacity=args.flight_capacity,
    )

    async def _serve() -> int:
        server = RsrServer(config)
        host, port = await server.start()
        if args.port_file is not None:
            args.port_file.write_text(f"{host} {port}\n")
        server.install_signal_handlers()
        print(f"serving on {host}:{port} (protocol {args.protocol})")
        sys.stdout.flush()
        await server._stopped.wait()
        exit_code = server.exit_code
        report = server.drain_report or {}
        print(
            f"drained ({report.get('cause', '?')}): "
            f"forced_aborts={report.get('forced_aborts', 0)} "
            f"ok={report.get('ok')}"
        )
        if args.metrics is not None:
            args.metrics.write_text(server.metrics.to_json() + "\n")
        return exit_code

    return asyncio.run(_serve())


def _render_top(response: dict) -> str:
    """One ``inspect`` snapshot as a compact text screen.

    Pure function of the response payload, so the rendering is as
    deterministic as the snapshot itself (handy for --once in tests).
    """
    rings = response.get("flight_rings") or {}
    ring_txt = ",".join(f"{k}:{v}" for k, v in sorted(rings.items()))
    lines = [
        f"rsr service: {response.get('status')}  "
        f"inflight={response.get('inflight')} shed={response.get('shed')}  "
        f"open-spans={response.get('open_spans')}  "
        f"flight-rings[{ring_txt}]"
    ]
    for name, snap in sorted((response.get("tenants") or {}).items()):
        lines.append(
            f"tenant {name} ({snap.get('protocol')}): "
            f"admitted={snap.get('admitted')} live={snap.get('live')} "
            f"committed={snap.get('committed')} "
            f"watchdog={snap.get('watchdog_fires')}"
        )
        lines.append(
            f"  sessions open={snap.get('open_sessions')} "
            f"waiting={snap.get('waiting_sessions')}"
        )
        waits = snap.get("waits_for") or {}
        if waits:
            edges = "; ".join(
                f"T{waiter} -> " + ",".join(f"T{b}" for b in blockers)
                for waiter, blockers in sorted(
                    waits.items(), key=lambda kv: int(kv[0])
                )
            )
            lines.append(f"  waits-for {edges}")
        donations = snap.get("donations") or []
        if donations:
            rendered = "; ".join(
                f"T{d['donor']} gives {d['obj']}"
                + (f" to T{d['to']}" if d.get("to") is not None else "")
                for d in donations
            )
            lines.append(f"  donations {rendered}")
        rsg = snap.get("rsg")
        if rsg:
            arcs = rsg.get("arcs") or {}
            arc_txt = " ".join(
                f"{kind}={arcs.get(kind, 0)}" for kind in ("I", "D", "F", "B")
            )
            lines.append(
                f"  rsg nodes={rsg.get('nodes')} arcs[{arc_txt}] "
                f"history={rsg.get('history')} "
                f"certified={rsg.get('certified')} "
                f"rejected={rsg.get('rejected')}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.client import ServiceClient

    host, port = args.connect[0], int(args.connect[1])

    async def _run() -> int:
        client = await ServiceClient.connect(host, port)
        try:
            while True:
                response = await client.inspect(args.tenant)
                if not args.once:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(_render_top(response))
                sys.stdout.flush()
                if args.once:
                    return 0
                await asyncio.sleep(args.interval)
        finally:
            await client.close()

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print()
        return 0
    except OSError as exc:
        print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 2


def _cmd_dump(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.client import ServiceClient

    host, port = args.connect[0], int(args.connect[1])

    async def _run() -> int:
        client = await ServiceClient.connect(host, port)
        try:
            response = await client.dump(args.cause)
        finally:
            await client.close()
        text = response.get("dump", "")
        if args.output is not None:
            args.output.write_text(text, encoding="utf-8")
            rings = response.get("rings") or {}
            print(
                f"wrote {sum(rings.values())} event(s) across "
                f"{len(rings)} ring(s) to {args.output}"
            )
        else:
            print(text, end="")
        return 0

    try:
        return asyncio.run(_run())
    except OSError as exc:
        print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
        return 2


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service import ChaosConfig, run_chaos

    chaos_config = ChaosConfig(
        clients=args.clients,
        seed=args.seed,
        protocol=args.protocol,
        n_objects=args.objects,
        abort_rate=args.abort_rate,
        stall_rate=args.stall_rate,
        kill_rate=args.kill_rate,
        crash_at=args.crash_at,
    )

    async def _run() -> int:
        if args.connect is not None:
            host, port = args.connect[0], int(args.connect[1])
            report = await run_chaos(chaos_config, host, port)
        else:
            from repro.service import RsrServer, ServiceConfig

            server = RsrServer(
                ServiceConfig(
                    max_sessions=args.max_sessions,
                    chaos=True,
                    jitter_seed=args.seed,
                )
            )
            host, port = await server.start()
            try:
                report = await run_chaos(chaos_config, host, port)
            finally:
                drain = await server.drain("chaos-done")
            if not drain.get("ok", False):
                print("error: drain certification failed", file=sys.stderr)
                return 1
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.describe())
        return 0 if report.ok else 1

    return asyncio.run(_run())


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    raise SystemExit(main())
