"""A small labelled directed graph.

This is deliberately minimal: hashable nodes, adjacency sets in both
directions, and an optional set of labels per edge.  The relative
serialization graph uses labels to record *why* an arc exists (``I``, ``D``,
``F``, ``B`` arcs in the paper's Definition 3); the classical serialization
graph and the waits-for graphs use unlabelled edges.

The implementation favours explicitness over cleverness (per the project
style guide): no operator overloading beyond ``len``/``contains``/``iter``,
and every mutation goes through a named method.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import GraphError

__all__ = ["DiGraph"]

Node = Hashable


class DiGraph:
    """A directed graph with hashable nodes and label sets on edges.

    Parallel edges are collapsed: adding an edge that already exists merges
    the new labels into the existing label set.  Self-loops are allowed
    (they make the graph trivially cyclic, which the cycle detector
    reports).
    """

    def __init__(self) -> None:
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        self._labels: dict[tuple[Node, Node], set[Any]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Node, Node]]) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls()
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    def copy(self) -> "DiGraph":
        """Return an independent copy of this graph."""
        clone = DiGraph()
        clone._succ = {node: set(adj) for node, adj in self._succ.items()}
        clone._pred = {node: set(adj) for node, adj in self._pred.items()}
        clone._labels = {edge: set(labels) for edge, labels in self._labels.items()}
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (a no-op if already present)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, source: Node, target: Node, label: Any = None) -> None:
        """Add the edge ``source -> target``, optionally tagged with ``label``.

        Both endpoints are added to the graph if absent.  Re-adding an
        existing edge merges labels rather than duplicating the edge.
        """
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)
        if label is not None:
            self._labels.setdefault((source, target), set()).add(label)

    def add_labelled_edges(
        self, edges: Iterable[tuple[Node, Node, Any]]
    ) -> None:
        """Add many ``(source, target, label)`` edges in one call.

        Semantically identical to looping over :meth:`add_edge`, but with
        the dictionary lookups hoisted out of the loop — this sits on the
        hot path of RSG construction, where a schedule produces tens of
        thousands of arcs.
        """
        succ = self._succ
        pred = self._pred
        labels = self._labels
        for source, target, label in edges:
            adj = succ.get(source)
            if adj is None:
                adj = succ[source] = set()
                pred[source] = set()
            if target not in succ:
                succ[target] = set()
                pred[target] = set()
            adj.add(target)
            pred[target].add(source)
            if label is not None:
                key = (source, target)
                bucket = labels.get(key)
                if bucket is None:
                    labels[key] = {label}
                else:
                    bucket.add(label)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every edge incident to it."""
        if node not in self._succ:
            raise GraphError(f"node {node!r} not in graph")
        for target in self._succ.pop(node):
            self._pred[target].discard(node)
            self._labels.pop((node, target), None)
        for source in self._pred.pop(node):
            self._succ[source].discard(node)
            self._labels.pop((source, node), None)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target`` (and its labels)."""
        if not self.has_edge(source, target):
            raise GraphError(f"edge {source!r} -> {target!r} not in graph")
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._labels.pop((source, target), None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._succ

    def has_edge(self, source: Node, target: Node) -> bool:
        """Return whether the edge ``source -> target`` is in the graph."""
        return source in self._succ and target in self._succ[source]

    def successors(self, node: Node) -> frozenset[Node]:
        """Return the set of direct successors of ``node``."""
        if node not in self._succ:
            raise GraphError(f"node {node!r} not in graph")
        return frozenset(self._succ[node])

    def predecessors(self, node: Node) -> frozenset[Node]:
        """Return the set of direct predecessors of ``node``."""
        if node not in self._pred:
            raise GraphError(f"node {node!r} not in graph")
        return frozenset(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Return the number of direct successors of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: Node) -> int:
        """Return the number of direct predecessors of ``node``."""
        return len(self.predecessors(node))

    def edge_labels(self, source: Node, target: Node) -> frozenset[Any]:
        """Return the labels attached to the edge ``source -> target``."""
        if not self.has_edge(source, target):
            raise GraphError(f"edge {source!r} -> {target!r} not in graph")
        return frozenset(self._labels.get((source, target), ()))

    def nodes(self) -> list[Node]:
        """Return the nodes in insertion order."""
        return list(self._succ)

    def edges(self) -> list[tuple[Node, Node]]:
        """Return all edges as ``(source, target)`` pairs."""
        return [
            (source, target)
            for source, adj in self._succ.items()
            for target in adj
        ]

    def labelled_edges(self) -> list[tuple[Node, Node, frozenset[Any]]]:
        """Return all edges with their (possibly empty) label sets."""
        return [
            (source, target, frozenset(self._labels.get((source, target), ())))
            for source, adj in self._succ.items()
            for target in adj
        ]

    @property
    def node_count(self) -> int:
        """Number of nodes in the graph."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of (collapsed) edges in the graph."""
        return sum(len(adj) for adj in self._succ.values())

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return self.node_count

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __repr__(self) -> str:
        return (
            f"DiGraph(nodes={self.node_count}, edges={self.edge_count})"
        )
