"""Topological sorting for :class:`~repro.graphs.digraph.DiGraph`.

The constructive half of Theorem 1 turns an acyclic relative serialization
graph into an *equivalent relatively serial schedule* by topologically
sorting its operations.  Any topological order works for the theorem; for
reproducibility this module lets the caller supply a ``key`` so ties are
broken deterministically (the RSG code passes the operation's position in
the original schedule, producing the equivalent schedule "closest" to the
input).

:func:`all_topological_sorts` enumerates every linear extension — only used
by the exponential baseline checkers and the exhaustive test harnesses on
small graphs.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Iterator

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph

__all__ = ["topological_sort", "all_topological_sorts"]

Node = Hashable


def topological_sort(
    graph: DiGraph,
    key: Callable[[Node], object] | None = None,
) -> list[Node]:
    """Return the nodes of ``graph`` in topological order.

    Kahn's algorithm with a priority queue: among all nodes whose
    predecessors have been emitted, the one minimizing ``key`` is emitted
    next.  With ``key=None`` ties are broken by ``repr`` for determinism.

    Raises :class:`~repro.errors.CycleError` if the graph is cyclic.
    """
    if key is None:
        key = repr
    in_degree = {node: graph.in_degree(node) for node in graph}
    # The counter breaks ties between equal keys so heapq never has to
    # compare the (possibly unorderable) nodes themselves.
    counter = 0
    ready: list[tuple[object, int, Node]] = []
    for node, degree in in_degree.items():
        if degree == 0:
            ready.append((key(node), counter, node))
            counter += 1
    heapq.heapify(ready)

    order: list[Node] = []
    while ready:
        _, _, node = heapq.heappop(ready)
        order.append(node)
        for succ in graph.successors(node):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                heapq.heappush(ready, (key(succ), counter, succ))
                counter += 1

    if len(order) != graph.node_count:
        raise CycleError(
            "graph is cyclic; no topological order exists "
            f"({graph.node_count - len(order)} nodes unreachable)"
        )
    return order


def all_topological_sorts(graph: DiGraph) -> Iterator[list[Node]]:
    """Yield every topological order (linear extension) of ``graph``.

    This is exponential in general; it exists to power the brute-force
    baselines (Farrag–Özsu relative consistency and the definition-based
    relative serializability check) on *small* instances and the property
    tests that cross-validate Theorem 1.

    Raises :class:`~repro.errors.CycleError` if the graph is cyclic.
    """
    in_degree = {node: graph.in_degree(node) for node in graph}
    ready = sorted(
        (node for node, degree in in_degree.items() if degree == 0), key=repr
    )
    if not ready and graph.node_count:
        raise CycleError("graph is cyclic; no topological order exists")

    prefix: list[Node] = []

    def _extend() -> Iterator[list[Node]]:
        if len(prefix) == graph.node_count:
            yield list(prefix)
            return
        if not ready:
            # Dead end: remaining nodes all have unmet predecessors, which
            # can only happen on cyclic graphs (caught above on entry).
            raise CycleError("graph is cyclic; no topological order exists")
        # Iterate over a snapshot: ``ready`` mutates inside the loop.
        for node in list(ready):
            ready.remove(node)
            prefix.append(node)
            newly_ready = []
            for succ in graph.successors(node):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    newly_ready.append(succ)
            ready.extend(newly_ready)
            yield from _extend()
            for succ in graph.successors(node):
                in_degree[succ] += 1
            for succ in newly_ready:
                ready.remove(succ)
            prefix.pop()
            ready.append(node)

    yield from _extend()
