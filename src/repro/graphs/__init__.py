"""Directed-graph substrate used throughout the library.

The paper's central tool is a directed graph (the relative serialization
graph) whose acyclicity must be tested; the classical serialization graph
and the protocols' waits-for graphs are digraphs too.  This subpackage
provides a small, dependency-free digraph implementation with exactly the
algorithms the rest of the library needs:

* :class:`~repro.graphs.digraph.DiGraph` — adjacency-set digraph with
  labelled edges,
* :func:`~repro.graphs.cycles.find_cycle` /
  :func:`~repro.graphs.cycles.is_acyclic` — iterative DFS cycle detection,
* :func:`~repro.graphs.toposort.topological_sort` — deterministic Kahn
  topological sort with a caller-supplied tie-break,
* :class:`~repro.graphs.incremental.IncrementalDiGraph` — online cycle
  detection via Pearce–Kelly incremental topological ordering,
* :func:`~repro.graphs.closure.transitive_closure` — bitset reachability,
* :func:`~repro.graphs.scc.strongly_connected_components` — Tarjan SCCs,
* :func:`~repro.graphs.nx.to_networkx` — optional bridge to networkx.
"""

from repro.graphs.closure import descendants, transitive_closure
from repro.graphs.cycles import find_cycle, is_acyclic
from repro.graphs.digraph import DiGraph
from repro.graphs.incremental import (
    EdgeBatch,
    FlatBatch,
    FlatPkGraph,
    IncrementalDiGraph,
)
from repro.graphs.scc import condensation, strongly_connected_components
from repro.graphs.toposort import all_topological_sorts, topological_sort

__all__ = [
    "DiGraph",
    "EdgeBatch",
    "FlatBatch",
    "FlatPkGraph",
    "IncrementalDiGraph",
    "find_cycle",
    "is_acyclic",
    "topological_sort",
    "all_topological_sorts",
    "transitive_closure",
    "descendants",
    "strongly_connected_components",
    "condensation",
]
