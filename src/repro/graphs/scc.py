"""Strongly connected components (iterative Tarjan).

Used by the protocols for diagnostics (when an online test finds a cycle,
the SCC tells us the full set of mutually blocking operations, from which
the victim-selection policy picks a transaction to abort) and by the
analysis toolkit to summarize how "tangled" a rejected schedule is.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.digraph import DiGraph

__all__ = ["strongly_connected_components", "condensation"]

Node = Hashable


def strongly_connected_components(graph: DiGraph) -> list[list[Node]]:
    """Return the SCCs of ``graph`` in reverse topological order.

    Iterative Tarjan: no recursion, so graph depth is bounded only by
    memory.  Each component is a list of nodes; singleton components are
    included (a node with no self-loop is its own trivial SCC).
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph:
        if root in index_of:
            continue
        work: list[tuple[Node, list[Node]]] = [(root, list(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            node, succ = work[-1]
            if succ:
                child = succ.pop()
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, list(graph.successors(child))))
                elif child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: list[Node] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def condensation(graph: DiGraph) -> tuple[DiGraph, dict[Node, int]]:
    """Return the condensation DAG and the node -> component-id mapping.

    Component ids index into the list returned by
    :func:`strongly_connected_components` for the same graph.
    """
    components = strongly_connected_components(graph)
    component_of: dict[Node, int] = {}
    for component_id, members in enumerate(components):
        for node in members:
            component_of[node] = component_id

    dag = DiGraph()
    for component_id in range(len(components)):
        dag.add_node(component_id)
    for source, target in graph.edges():
        source_id = component_of[source]
        target_id = component_of[target]
        if source_id != target_id:
            dag.add_edge(source_id, target_id)
    return dag, component_of
