"""Online cycle detection via incremental topological ordering.

The online protocols certify one operation at a time against a graph
that only ever grows at the end of the granted history.  The seed
implementation paid O(V + E) per granted operation: copy the whole RSG,
add the tentative arcs, run a full DFS.  This module replaces that with
the dynamic topological sort of Pearce & Kelly ("A Dynamic Topological
Sort Algorithm for Directed Acyclic Graphs", JEA 2006): the graph
maintains a valid topological order at all times, and inserting an arc
``u -> v`` costs

* O(1) when ``ord(u) < ord(v)`` — the order already proves no cycle
  through the new arc (the overwhelmingly common case here, because
  operations append in roughly topological order);
* otherwise a DFS bounded to the *affected region* — the nodes whose
  order index lies in ``(ord(v), ord(u))`` — followed by a local
  reindexing of just those nodes;
* when the bounded forward search reaches ``u``, the arc closes a cycle:
  the insert is refused, the graph is left untouched, and the witness
  cycle (the discovered path ``v -> ... -> u`` plus the refused arc) is
  reported.

Deleting arcs or nodes never invalidates a topological order, so
removals are O(degree) with no restoration work — which is what makes
the certifier's ``forget`` (restart a victim) cheap.

:class:`IncrementalDiGraph` is a drop-in :class:`~repro.graphs.digraph.
DiGraph`: all queries, iteration, and label bookkeeping behave
identically, so existing diagnostics (DOT export, networkx bridge,
tests comparing ``labelled_edges``) keep working.

:class:`FlatPkGraph` is the same algorithm stripped to integer node ids
for the certification hot path: adjacency is list-of-int-lists, an arc's
kind set is a bitmask in a dict keyed by the packed int ``(u << 32) | v``
(presence test, dedup, and labelling collapse into one int-keyed lookup),
DFS visit marks live in a shared ``bytearray``, and released node ids go
to a freelist so a steady certify/forget/re-declare cycle reuses slots
instead of growing.  It is not a :class:`~repro.graphs.digraph.DiGraph`;
:class:`~repro.core.rsg.IncrementalRsg` materializes a labelled
:class:`IncrementalDiGraph` view from it on demand.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any

from repro.errors import CycleError, GraphError
from repro.graphs.digraph import DiGraph

__all__ = ["EdgeBatch", "FlatBatch", "FlatPkGraph", "IncrementalDiGraph"]

Node = Hashable


class EdgeBatch:
    """Record of one successful :meth:`IncrementalDiGraph.try_add_edges`.

    Remembers exactly which edges (and which labels on pre-existing
    edges) the batch created, so the caller can undo the batch later in
    O(#new-arcs) — the certifier keeps one batch per granted operation
    and replays/retracts them during restarts.
    """

    __slots__ = ("new_edges", "new_labels")

    def __init__(
        self,
        new_edges: list[tuple[Node, Node]],
        new_labels: list[tuple[Node, Node, Any]],
    ) -> None:
        self.new_edges = new_edges
        self.new_labels = new_labels


class IncrementalDiGraph(DiGraph):
    """A :class:`DiGraph` that maintains an online topological order.

    Invariant: for every edge ``u -> v`` currently in the graph,
    ``order_index(u) < order_index(v)``.  The invariant is restored
    after every mutation; an :meth:`add_edge` that cannot restore it
    (the edge closes a cycle) raises :class:`~repro.errors.CycleError`
    and leaves the graph unchanged.  :meth:`try_add_edges` offers the
    same protection with return-value semantics and batch rollback.
    """

    def __init__(self) -> None:
        super().__init__()
        self._ord: dict[Node, int] = {}
        self._next_index = 0
        self._last_cycle: list[Node] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def copy(self) -> "IncrementalDiGraph":
        """Independent copy, preserving the maintained order."""
        clone = IncrementalDiGraph()
        clone._succ = {node: set(adj) for node, adj in self._succ.items()}
        clone._pred = {node: set(adj) for node, adj in self._pred.items()}
        clone._labels = {
            edge: set(labels) for edge, labels in self._labels.items()
        }
        clone._ord = dict(self._ord)
        clone._next_index = self._next_index
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node``, assigning it the next (largest) order index."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()
            self._ord[node] = self._next_index
            self._next_index += 1

    def add_edge(self, source: Node, target: Node, label: Any = None) -> None:
        """Add ``source -> target`` and restore the topological order.

        Raises:
            CycleError: when the edge would close a directed cycle.  The
                graph is left exactly as it was (strengthening the base
                class contract, which has no failure mode).
        """
        result = self.try_add_edges([(source, target, label)])
        if result is None:
            raise CycleError(
                f"edge {source!r} -> {target!r} closes a cycle",
                cycle=self._last_cycle,
            )

    def try_add_edges(
        self, arcs: Iterable[tuple[Node, Node, Any]]
    ) -> EdgeBatch | None:
        """Insert a batch of labelled arcs, all or nothing.

        Returns an :class:`EdgeBatch` describing what was actually new
        (arcs already present merge labels, as in the base class), or
        ``None`` when some arc would close a cycle — in which case every
        arc of the batch has been rolled back and the graph is
        unchanged.  After a ``None`` return the witness cycle is
        available as :attr:`last_rejected_cycle`.
        """
        new_edges: list[tuple[Node, Node]] = []
        new_labels: list[tuple[Node, Node, Any]] = []
        new_nodes: list[Node] = []
        succ = self._succ
        labels = self._labels
        for source, target, label in arcs:
            if source not in succ:
                self.add_node(source)
                new_nodes.append(source)
            if target not in succ:
                self.add_node(target)
                new_nodes.append(target)
            if target in succ[source]:
                if label is not None:
                    edge_labels = labels.setdefault((source, target), set())
                    if label not in edge_labels:
                        edge_labels.add(label)
                        new_labels.append((source, target, label))
                continue
            cycle = self._insert_arc(source, target)
            if cycle is not None:
                self._rollback(new_edges, new_labels)
                for node in reversed(new_nodes):
                    self.remove_node(node)
                self._last_cycle = cycle
                return None
            new_edges.append((source, target))
            if label is not None:
                labels.setdefault((source, target), set()).add(label)
        return EdgeBatch(new_edges, new_labels)

    def add_labelled_edges(
        self, edges: Iterable[tuple[Node, Node, Any]]
    ) -> None:
        """Bulk insertion through the order-maintaining path.

        The base class implementation manipulates adjacency dicts
        directly, which would bypass order-index assignment; here every
        arc goes through the incremental machinery instead.

        Raises:
            CycleError: when some arc would close a cycle; the whole
                batch is rolled back (all-or-nothing, unlike the base
                class's loop semantics).
        """
        if self.try_add_edges(edges) is None:
            raise CycleError(
                "edge batch closes a cycle", cycle=self._last_cycle
            )

    def undo_batch(self, batch: EdgeBatch) -> None:
        """Remove exactly what ``batch`` added (edges and merged labels).

        Edge removal can never invalidate a topological order, so this
        is O(#new-arcs) with no restoration pass.  Only meaningful for
        the *most recent* batches touching these edges (label sets are
        not reference counted).
        """
        self._rollback(batch.new_edges, batch.new_labels)

    def remove_node(self, node: Node) -> None:
        super().remove_node(node)
        del self._ord[node]

    # ------------------------------------------------------------------
    # Order queries
    # ------------------------------------------------------------------
    @property
    def last_rejected_cycle(self) -> list[Node] | None:
        """Witness from the most recent refused insertion, if any."""
        return self._last_cycle

    def order_index(self, node: Node) -> int:
        """The node's current index in the maintained topological order.

        Indices are strictly increasing along every edge but not dense:
        reorderings and removals leave gaps.
        """
        return self._ord[node]

    def topological_order(self) -> list[Node]:
        """All nodes, sorted by the maintained order."""
        return sorted(self._succ, key=self._ord.__getitem__)

    def check_order_invariant(self) -> bool:
        """Whether every edge goes from a lower to a higher index.

        Diagnostic only — the invariant is maintained by construction;
        the certifier uses this as the trigger for its defensive
        rebuild fallback.
        """
        ord_ = self._ord
        return all(
            ord_[source] < ord_[target]
            for source, adj in self._succ.items()
            for target in adj
        )

    # ------------------------------------------------------------------
    # Pearce–Kelly internals
    # ------------------------------------------------------------------
    def _insert_arc(self, source: Node, target: Node) -> list[Node] | None:
        """Structurally add the arc and restore the order.

        Returns ``None`` on success, or the witness cycle (arc not
        added) when the arc closes one.
        """
        if source == target:
            return [source, source]
        ord_ = self._ord
        lower = ord_[target]
        upper = ord_[source]
        if lower > upper:  # already consistent — the common case
            self._succ[source].add(target)
            self._pred[target].add(source)
            return None
        # Affected region: order indices in [lower, upper].  Find the
        # nodes reachable forward from target inside the region; if the
        # search meets source, the arc closes a cycle.
        forward: list[Node] = []
        parent: dict[Node, Node] = {}
        seen = {target}
        stack = [target]
        succ = self._succ
        while stack:
            node = stack.pop()
            forward.append(node)
            for child in succ[node]:
                if child == source:
                    parent[child] = node
                    return self._witness(source, target, parent)
                if child not in seen and ord_[child] < upper:
                    seen.add(child)
                    parent[child] = node
                    stack.append(child)
        # No cycle: find the nodes reaching source inside the region.
        backward: list[Node] = []
        seen_b = {source}
        stack = [source]
        pred = self._pred
        while stack:
            node = stack.pop()
            backward.append(node)
            for above in pred[node]:
                if above not in seen_b and ord_[above] > lower:
                    seen_b.add(above)
                    stack.append(above)
        # Local reorder: everything that reaches source shifts below
        # everything reachable from target, reusing the same index pool.
        backward.sort(key=ord_.__getitem__)
        forward.sort(key=ord_.__getitem__)
        pool = sorted(ord_[node] for node in backward + forward)
        for node, index in zip(backward + forward, pool):
            ord_[node] = index
        succ[source].add(target)
        pred[target].add(source)
        return None

    def _witness(
        self, source: Node, target: Node, parent: dict[Node, Node]
    ) -> list[Node]:
        """The cycle closed by ``source -> target``: the discovered path
        ``target -> ... -> source`` plus the refused arc."""
        path = [source]
        while path[-1] != target:
            path.append(parent[path[-1]])
        path.reverse()
        path.append(target)
        return path

    def _rollback(
        self,
        new_edges: list[tuple[Node, Node]],
        new_labels: list[tuple[Node, Node, Any]],
    ) -> None:
        for source, target, label in new_labels:
            edge_labels = self._labels.get((source, target))
            if edge_labels is not None:
                edge_labels.discard(label)
                if not edge_labels:
                    del self._labels[(source, target)]
        for source, target in new_edges:
            self._succ[source].discard(target)
            self._pred[target].discard(source)
            self._labels.pop((source, target), None)


class FlatBatch:
    """Undo record of one successful :meth:`FlatPkGraph.try_add_batch`.

    ``new_edges`` is a flat ``[u0, v0, u1, v1, ...]`` list of the arcs
    the batch structurally created; ``mask_undo`` is a flat
    ``[key0, prev0, ...]`` list of packed edge keys whose kind mask the
    batch widened, with the mask to restore.  Instances are reused by
    the engine's record pool, so hold no other state.
    """

    __slots__ = ("new_edges", "mask_undo")

    def __init__(self, new_edges: list[int], mask_undo: list[int]) -> None:
        self.new_edges = new_edges
        self.mask_undo = mask_undo


class FlatPkGraph:
    """Pearce–Kelly order maintenance over integer node ids.

    The same incremental topological-sort algorithm as
    :class:`IncrementalDiGraph`, rebuilt on flat state for the
    certification hot path:

    * nodes are dense ints handed out by :meth:`acquire_node` (released
      ids go to a freelist and are reused, so a long-running certifier
      that forgets and re-declares transactions stays bounded);
    * adjacency is list-of-``list[int]`` indexed by node id — no
      hashing of vertex objects anywhere on the insert path;
    * an arc and its kind set are one entry in an int-keyed dict:
      ``masks[(u << 32) | v]`` holds the OR of the caller's kind bits,
      so presence check, dedup, and label merging are a single lookup;
    * DFS visit marks are a shared ``bytearray`` cleared via the
      just-visited lists, never reallocated.

    Cycle refusal semantics match :class:`IncrementalDiGraph`: a batch
    that would close a cycle is rolled back completely, the graph is
    unchanged, and :attr:`last_rejected_cycle` holds the witness path
    as node ids (first == last).
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_masks",
        "_ord",
        "_parent",
        "_free",
        "_seen",
        "_next_index",
        "_last_cycle",
    )

    def __init__(self) -> None:
        self._succ: list[list[int]] = []
        self._pred: list[list[int]] = []
        self._masks: dict[int, int] = {}
        self._ord: list[int] = []
        self._parent: list[int] = []
        self._free: list[int] = []
        self._seen = bytearray()
        self._next_index = 0
        self._last_cycle: list[int] | None = None

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def acquire_node(self) -> int:
        """Allocate a node id (freelist first), at the largest order."""
        free = self._free
        if free:
            nid = free.pop()
            self._ord[nid] = self._next_index
        else:
            nid = len(self._succ)
            self._succ.append([])
            self._pred.append([])
            self._ord.append(self._next_index)
            self._parent.append(-1)
            self._seen.append(0)
        self._next_index += 1
        return nid

    def release_node(self, nid: int) -> None:
        """Return an isolated node id to the freelist for reuse."""
        if self._succ[nid] or self._pred[nid]:
            raise GraphError(
                f"cannot release node {nid}: incident edges remain"
            )
        self._free.append(nid)

    @property
    def node_capacity(self) -> int:
        """Total id slots ever allocated (live + freelisted)."""
        return len(self._succ)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def last_rejected_cycle(self) -> list[int] | None:
        """Witness (node ids, first == last) of the last refused batch."""
        return self._last_cycle

    def edge_mask(self, source: int, target: int) -> int:
        """The arc's kind bitmask, or 0 when the arc is absent."""
        return self._masks.get((source << 32) | target, 0)

    def order_index(self, nid: int) -> int:
        """The node's index in the maintained topological order."""
        return self._ord[nid]

    def edge_items(self):
        """Iterate ``(packed_key, mask)`` pairs of every arc (live view)."""
        return self._masks.items()

    @property
    def edge_count(self) -> int:
        """Number of (collapsed) arcs."""
        return len(self._masks)

    def check_order_invariant(self) -> bool:
        """Whether every arc goes from a lower to a higher order index.

        Diagnostic only, mirroring
        :meth:`IncrementalDiGraph.check_order_invariant`.
        """
        ord_ = self._ord
        return all(
            ord_[key >> 32] < ord_[key & 0xFFFFFFFF] for key in self._masks
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def try_add_batch(
        self, buf: list[int], count: int, batch: FlatBatch
    ) -> bool:
        """Insert ``count`` arcs from the flat triple buffer, all or nothing.

        ``buf`` holds ``[u0, v0, bits0, u1, v1, bits1, ...]`` (at least
        ``3 * count`` entries; the caller reuses one buffer across
        pushes).  ``batch`` is the undo record to fill — its lists are
        cleared first, so pooled instances can be passed back in.

        Returns ``True`` with ``batch`` describing what was new, or
        ``False`` when some arc would close a cycle — every arc of the
        batch has then been rolled back and the witness is in
        :attr:`last_rejected_cycle`.
        """
        masks = self._masks
        new_edges = batch.new_edges
        mask_undo = batch.mask_undo
        del new_edges[:]
        del mask_undo[:]
        i = 0
        end = 3 * count
        while i < end:
            u = buf[i]
            v = buf[i + 1]
            bits = buf[i + 2]
            i += 3
            key = (u << 32) | v
            mask = masks.get(key)
            if mask is not None:
                merged = mask | bits
                if merged != mask:
                    masks[key] = merged
                    mask_undo.append(key)
                    mask_undo.append(mask)
                continue
            cycle = self._insert_arc(u, v)
            if cycle is not None:
                self.undo_batch(batch)
                self._last_cycle = cycle
                return False
            masks[key] = bits
            new_edges.append(u)
            new_edges.append(v)
        return True

    def undo_batch(self, batch: FlatBatch) -> None:
        """Remove exactly what ``batch`` added (arcs and widened masks).

        Arc removal never invalidates a topological order, so this is
        O(#new-arcs) with no restoration pass.  Only meaningful for the
        most recent batches touching these arcs (masks are not
        reference counted).
        """
        masks = self._masks
        mask_undo = batch.mask_undo
        # Replay newest-first: an edge widened twice in one batch has two
        # snapshots, and only the oldest is its true pre-batch mask.
        for i in range(len(mask_undo) - 2, -2, -2):
            masks[mask_undo[i]] = mask_undo[i + 1]
        new_edges = batch.new_edges
        for i in range(0, len(new_edges), 2):
            u = new_edges[i]
            v = new_edges[i + 1]
            del masks[(u << 32) | v]
            self._succ[u].remove(v)
            self._pred[v].remove(u)

    def remove_edge(self, source: int, target: int) -> None:
        """Remove one arc (used when releasing a declared transaction)."""
        key = (source << 32) | target
        if key not in self._masks:
            raise GraphError(f"arc {source} -> {target} not in graph")
        del self._masks[key]
        self._succ[source].remove(target)
        self._pred[target].remove(source)

    # ------------------------------------------------------------------
    # Pearce–Kelly internals (int-indexed)
    # ------------------------------------------------------------------
    def _insert_arc(self, source: int, target: int) -> list[int] | None:
        """Structurally add the arc and restore the order.

        Returns ``None`` on success, or the witness cycle (arc not
        added) when the arc closes one.  Identical to
        :meth:`IncrementalDiGraph._insert_arc` modulo representation.
        """
        if source == target:
            return [source, source]
        ord_ = self._ord
        lower = ord_[target]
        upper = ord_[source]
        succ = self._succ
        pred = self._pred
        if lower > upper:  # already consistent — the common case
            succ[source].append(target)
            pred[target].append(source)
            return None
        seen = self._seen
        parent = self._parent
        forward = [target]
        seen[target] = 1
        stack = [target]
        while stack:
            node = stack.pop()
            for child in succ[node]:
                if child == source:
                    parent[child] = node
                    for visited in forward:
                        seen[visited] = 0
                    return self._witness(source, target)
                if not seen[child] and ord_[child] < upper:
                    seen[child] = 1
                    parent[child] = node
                    forward.append(child)
                    stack.append(child)
        # No cycle: find the nodes reaching source inside the region.
        # Forward (ord < upper, reachable from target) and backward
        # (ord > lower, reaching source) sets are disjoint — overlap
        # would be the cycle just excluded — so the marks are shared.
        backward = [source]
        seen[source] = 1
        stack = [source]
        while stack:
            node = stack.pop()
            for above in pred[node]:
                if not seen[above] and ord_[above] > lower:
                    seen[above] = 1
                    backward.append(above)
                    stack.append(above)
        for visited in forward:
            seen[visited] = 0
        for visited in backward:
            seen[visited] = 0
        # Local reorder: everything that reaches source shifts below
        # everything reachable from target, reusing the same index pool.
        backward.sort(key=ord_.__getitem__)
        forward.sort(key=ord_.__getitem__)
        combined = backward + forward
        pool = sorted(ord_[node] for node in combined)
        for node, index in zip(combined, pool):
            ord_[node] = index
        succ[source].append(target)
        pred[target].append(source)
        return None

    def _witness(self, source: int, target: int) -> list[int]:
        """The cycle closed by ``source -> target``: the discovered path
        ``target -> ... -> source`` plus the refused arc.  Parent links
        were written by the just-finished forward search, so every node
        on the path is fresh."""
        parent = self._parent
        path = [source]
        while path[-1] != target:
            path.append(parent[path[-1]])
        path.reverse()
        path.append(target)
        return path
