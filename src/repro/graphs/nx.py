"""Optional bridge between :class:`~repro.graphs.digraph.DiGraph` and networkx.

The library is self-contained (its own digraph + algorithms), but users who
already live in the networkx ecosystem — e.g. to draw a relative
serialization graph — can convert in either direction.  networkx is an
*optional* dependency; importing this module without it raises a clear
error only when the conversion functions are actually called.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph

__all__ = ["to_networkx", "from_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - networkx present in CI
        raise GraphError(
            "networkx is required for this conversion; install repro[nx]"
        ) from exc
    return networkx


def to_networkx(graph: DiGraph):
    """Convert a :class:`DiGraph` to a ``networkx.DiGraph``.

    Edge label sets are stored under the ``labels`` edge attribute (as a
    frozenset), matching how the RSG tags arcs with their kinds.
    """
    networkx = _require_networkx()
    result = networkx.DiGraph()
    result.add_nodes_from(graph.nodes())
    for source, target, labels in graph.labelled_edges():
        result.add_edge(source, target, labels=labels)
    return result


def from_networkx(nx_graph) -> DiGraph:
    """Convert a ``networkx.DiGraph`` to a :class:`DiGraph`.

    A ``labels`` edge attribute, if present, is expected to be an iterable
    of labels and is preserved.
    """
    _require_networkx()
    result = DiGraph()
    for node in nx_graph.nodes():
        result.add_node(node)
    for source, target, data in nx_graph.edges(data=True):
        labels = data.get("labels") or ()
        if labels:
            for label in labels:
                result.add_edge(source, target, label=label)
        else:
            result.add_edge(source, target)
    return result
