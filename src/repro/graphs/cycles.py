"""Cycle detection for :class:`~repro.graphs.digraph.DiGraph`.

Theorem 1 of the paper reduces recognizing relatively serializable
schedules to an acyclicity test, so this module is on the hot path of the
whole library.  The detector is an iterative three-colour DFS (no recursion,
so very deep graphs cannot hit Python's recursion limit) that returns an
explicit witness cycle when one exists — useful both for diagnostics and for
the online protocols, which need to know *which* transaction to abort.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.digraph import DiGraph

__all__ = ["find_cycle", "is_acyclic", "has_path"]

Node = Hashable

_WHITE, _GREY, _BLACK = 0, 1, 2


def find_cycle(graph: DiGraph) -> list[Node] | None:
    """Return one cycle of ``graph`` as a node list, or ``None`` if acyclic.

    The returned list ``[n0, n1, ..., nk]`` satisfies ``n0 == nk`` and each
    consecutive pair is an edge of the graph.  Which cycle is returned is
    deterministic for a given insertion order.
    """
    colour: dict[Node, int] = {node: _WHITE for node in graph}
    parent: dict[Node, Node] = {}

    for root in graph:
        if colour[root] != _WHITE:
            continue
        # Each stack entry is (node, iterator over its successors).
        stack: list[tuple[Node, list[Node]]] = [(root, sorted_succ(graph, root))]
        colour[root] = _GREY
        while stack:
            node, succ = stack[-1]
            if succ:
                child = succ.pop()
                if colour[child] == _WHITE:
                    colour[child] = _GREY
                    parent[child] = node
                    stack.append((child, sorted_succ(graph, child)))
                elif colour[child] == _GREY:
                    return _extract_cycle(node, child, parent)
            else:
                colour[node] = _BLACK
                stack.pop()
    return None


def is_acyclic(graph: DiGraph) -> bool:
    """Return whether ``graph`` has no directed cycle."""
    return find_cycle(graph) is None


def has_path(graph: DiGraph, source: Node, target: Node) -> bool:
    """Return whether a directed path ``source -> ... -> target`` exists.

    ``source == target`` counts as a path only if a genuine cycle through
    the node exists (i.e., the trivial empty path does not count).
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return False
    seen: set[Node] = set()
    frontier: list[Node] = list(graph.successors(source))
    while frontier:
        node = frontier.pop()
        if node == target:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.successors(node))
    return False


def sorted_succ(graph: DiGraph, node: Node) -> list[Node]:
    """Successors of ``node`` in a deterministic order (for stable output)."""
    try:
        return sorted(graph.successors(node), key=repr, reverse=True)
    except TypeError:  # pragma: no cover - unorderable reprs never occur here
        return list(graph.successors(node))


def _extract_cycle(node: Node, child: Node, parent: dict[Node, Node]) -> list[Node]:
    """Rebuild the cycle closed by the back edge ``node -> child``."""
    path = [node]
    while path[-1] != child:
        path.append(parent[path[-1]])
    path.reverse()
    path.append(child)
    return path
