"""Transitive closure / reachability over directed graphs.

The paper's ``depends-on`` relation is the transitive closure of the
"directly depends on" relation, so closure computation sits under every
correctness checker in :mod:`repro.core`.  Because the graphs we close are
DAG-shaped (edges always point forward in schedule order), the closure is
computed with one reverse-topological sweep using Python integers as
bitsets — O(V·E/word) and allocation-light.

For general (possibly cyclic) graphs :func:`descendants` falls back to a
plain DFS.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.toposort import topological_sort

__all__ = ["transitive_closure", "descendants", "reachability_bitsets"]

Node = Hashable


def descendants(graph: DiGraph, source: Node) -> set[Node]:
    """Return every node reachable from ``source`` by a non-empty path."""
    seen: set[Node] = set()
    frontier = list(graph.successors(source))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.successors(node))
    return seen


def reachability_bitsets(
    graph: DiGraph,
    order: list[Node] | None = None,
) -> tuple[list[Node], dict[Node, int]]:
    """Compute DAG reachability as integer bitsets.

    Returns ``(order, reach)`` where ``order`` is a topological order of the
    graph and ``reach[node]`` is an integer whose bit ``i`` is set iff
    ``order[i]`` is reachable from ``node`` by a non-empty path.

    Raises :class:`~repro.errors.CycleError` on cyclic input.
    """
    if order is None:
        order = topological_sort(graph)
    elif len(order) != graph.node_count:
        raise CycleError("supplied order does not cover the graph")
    position = {node: i for i, node in enumerate(order)}
    reach: dict[Node, int] = {}
    for node in reversed(order):
        bits = 0
        for succ in graph.successors(node):
            bits |= 1 << position[succ]
            bits |= reach[succ]
        reach[node] = bits
    return order, reach


def transitive_closure(graph: DiGraph) -> DiGraph:
    """Return a new graph with an edge ``u -> v`` for every non-empty path.

    Works on DAGs (which is all the library ever closes); cyclic input
    raises :class:`~repro.errors.CycleError`.
    """
    order, reach = reachability_bitsets(graph)
    closure = DiGraph()
    for node in order:
        closure.add_node(node)
    for node in order:
        bits = reach[node]
        index = 0
        while bits:
            if bits & 1:
                closure.add_edge(node, order[index])
            bits >>= 1
            index += 1
    return closure
