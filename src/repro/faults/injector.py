"""The fault injector: a transparent scheduler wrapper that fires plans.

:class:`FaultInjector` sits between the simulator and any
:class:`~repro.protocols.base.Scheduler`.  The wrapped protocol keeps
making its own decisions; the injector overrides them only at the
plan's trigger points:

* **stall** — the victim's requests in the window come back WAIT without
  reaching the protocol (the transaction looks slow, not wrong);
* **abort** — the victim's request comes back ``ABORT(victim)``; the
  simulator restarts it like any protocol-initiated abort;
* **kill** — as abort, but the victim's id is also added to
  :attr:`FaultInjector.killed`, which the simulator treats as permanent
  (no re-admission — the long-lived client that never comes back);
* **crash** — the attached :class:`~repro.engine.kvstore.KVStore` is
  crashed and immediately recovered (rolling every in-flight write back
  from before-images), and every in-flight transaction is reported as an
  abort victim so the simulator restarts them as fresh incarnations.

Everything else — including attribute access such as ``scheduler.spec``,
which the verification pipeline sniffs for — delegates to the wrapped
scheduler, so an injected protocol is drop-in wherever a bare one is
accepted.
"""

from __future__ import annotations

from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.engine.kvstore import KVStore
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.obs.bus import TraceBus
from repro.obs.events import EventKind, Reason
from repro.protocols.base import Decision, Outcome, Scheduler

__all__ = ["FaultInjector"]


class FaultInjector:
    """Wrap ``scheduler`` and fire ``plan`` against it.

    Args:
        scheduler: the protocol to wrap (any :class:`Scheduler`).
        plan: the fault plan to execute (events fire at most once).
        store: optional key-value store; when given, crash events drive
            its :meth:`~repro.engine.kvstore.KVStore.crash` /
            :meth:`~repro.engine.kvstore.KVStore.recover` cycle so the
            in-flight rollback happens through the WAL, not through
            per-victim aborts.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        plan: FaultPlan,
        store: KVStore | None = None,
    ) -> None:
        self._inner = scheduler
        self._plan = plan
        self._store = store
        self._requests: dict[int, int] = {}
        self._grants = 0
        self._killed: set[int] = set()
        self._fired: set[FaultEvent] = set()
        self.injected_aborts = 0
        self.injected_stalls = 0  # WAITs returned, not stall events
        self.injected_kills = 0
        self.injected_crashes = 0
        self.crash_rollbacks = 0  # transactions rolled back by crashes

    # ------------------------------------------------------------------
    # Injector introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"faulty({self._inner.name})"

    @property
    def inner(self) -> Scheduler:
        """The wrapped scheduler."""
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        """The plan being executed."""
        return self._plan

    @property
    def killed(self) -> frozenset[int]:
        """Ids of permanently killed transactions (the simulator polls
        this to decide which abort victims never come back)."""
        return frozenset(self._killed)

    @property
    def bus(self) -> TraceBus:
        """The wrapped scheduler's trace bus (shared with the injector).

        An explicit property because ``__getattr__`` only covers reads:
        assigning through plain delegation would shadow the inner bus
        with an injector-local attribute.
        """
        return self._inner.bus

    @bus.setter
    def bus(self, bus: TraceBus) -> None:
        self._inner.bus = bus

    def counters(self) -> dict[str, int]:
        """All injection counters, keyed for campaign reports."""
        return {
            "aborts": self.injected_aborts,
            "stall_waits": self.injected_stalls,
            "kills": self.injected_kills,
            "crashes": self.injected_crashes,
            "crash_rollbacks": self.crash_rollbacks,
        }

    # ------------------------------------------------------------------
    # Scheduler interface (the simulator's contract)
    # ------------------------------------------------------------------
    def admit(self, transaction: Transaction) -> None:
        self._requests.setdefault(transaction.tx_id, 0)
        self._inner.admit(transaction)

    def request(self, op: Operation) -> Outcome:
        tx_id = op.tx
        self._requests[tx_id] = self._requests.get(tx_id, 0) + 1
        count = self._requests[tx_id]
        bus = self.bus

        for event in self._plan.for_tx(tx_id):
            if event.kind is FaultKind.STALL:
                if event.at <= count < event.at + event.duration:
                    self.injected_stalls += 1
                    reason = Reason(
                        "fault-stall",
                        detail=(
                            f"stall window [{event.at}, "
                            f"{event.at + event.duration}) at request "
                            f"{count}"
                        ),
                    )
                    self._emit_fault(bus, op, "stall", reason)
                    return Outcome.wait(reason)
            elif event not in self._fired and count >= event.at:
                self._fired.add(event)
                if event.kind is FaultKind.KILL:
                    self._killed.add(tx_id)
                    self.injected_kills += 1
                    reason = Reason(
                        "fault-kill",
                        blockers=(tx_id,),
                        detail=f"killed at request {count}",
                    )
                    self._emit_fault(bus, op, "kill", reason)
                else:
                    self.injected_aborts += 1
                    reason = Reason(
                        "fault-abort",
                        blockers=(tx_id,),
                        detail=f"aborted at request {count}",
                    )
                    self._emit_fault(bus, op, "abort", reason)
                return Outcome.abort(tx_id, reason=reason)

        for event in self._plan.of_kind(FaultKind.CRASH):
            if event not in self._fired and self._grants >= event.at:
                self._fired.add(event)
                self.injected_crashes += 1
                victims = self._in_flight()
                if bus.active:
                    bus.emit(
                        EventKind.CRASH,
                        protocol=self.name,
                        extra=(("victims", list(victims)),),
                    )
                if self._store is not None:
                    self._store.crash()
                    rolled_back = self._store.recover()
                    self.crash_rollbacks += len(rolled_back)
                else:
                    self.crash_rollbacks += len(victims)
                if bus.active:
                    bus.emit(
                        EventKind.RECOVER,
                        protocol=self.name,
                        extra=(("rolled_back", len(victims)),),
                    )
                if victims:
                    return Outcome.abort(
                        *victims,
                        reason=Reason(
                            "fault-crash",
                            blockers=victims,
                            detail=(
                                f"crash after {self._grants} grants "
                                "rolled back every in-flight transaction"
                            ),
                        ),
                    )

        outcome = self._inner.request(op)
        if outcome.decision is Decision.GRANT:
            self._grants += 1
        return outcome

    def _emit_fault(
        self, bus: TraceBus, op: Operation, kind: str, reason: Reason
    ) -> None:
        if bus.active:
            bus.emit(
                EventKind.FAULT,
                tx=op.tx,
                op=op.label,
                protocol=self.name,
                reason=reason,
                extra=(("fault", kind),),
            )

    def finish(self, tx_id: int) -> None:
        self._inner.finish(tx_id)

    def remove(self, tx_id: int) -> None:
        self._inner.remove(tx_id)

    @property
    def history(self) -> tuple[Operation, ...]:
        return self._inner.history

    def _in_flight(self) -> tuple[int, ...]:
        """Uncommitted transactions with granted operations, ascending
        (the rollback set of a crash)."""
        return tuple(
            sorted(
                tx_id
                for tx_id in self._inner.admitted_ids
                if not self._inner.is_committed(tx_id)
                and self._inner.progress(tx_id) > 0
            )
        )

    def __getattr__(self, attribute: str):
        # Transparent delegation (spec, progress, admitted_ids, ...);
        # only called for attributes not defined on the injector.
        return getattr(self._inner, attribute)

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self._inner!r}, {len(self._plan)} events, "
            f"{len(self._fired)} fired)"
        )
