"""Fault plans: what goes wrong, where, deterministically.

A :class:`FaultPlan` is a finite set of one-shot :class:`FaultEvent`\\ s.
Triggers are *counts*, not wall-clock times: per-transaction faults fire
on the victim's ``at``-th operation request (cumulative across
incarnations, so a restarted transaction can be hit again later), and
store crashes fire once the whole system has granted ``at`` operations.
Because the simulator's tick loop is deterministic, a (workload, plan,
protocol) triple replays to the byte — which is what lets campaign
reports be golden-tested and lets any failure be re-run under a debugger
with nothing more than its seed.

Plans are value objects (frozen dataclasses of ints), so they pickle
across :class:`~repro.parallel.ParallelExecutor` process boundaries
unchanged.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.transactions import Transaction
from repro.errors import FaultPlanError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "random_plan"]


class FaultKind(enum.Enum):
    """The four injectable fault families."""

    #: Abort the transaction (it restarts, budget permitting).
    ABORT = "abort"
    #: Return WAIT for a window of the transaction's requests.
    STALL = "stall"
    #: Permanently kill the transaction (no re-admission, ever).
    KILL = "kill"
    #: Crash the store: every in-flight transaction rolls back.
    CRASH = "crash"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FaultEvent:
    """One one-shot fault.

    Attributes:
        kind: the fault family.
        at: the trigger — the victim's cumulative request count for the
            per-transaction kinds, the global granted-operation count for
            :attr:`FaultKind.CRASH`.  At least 1.
        tx_id: the victim (required for per-transaction kinds, forbidden
            for crashes).
        duration: for stalls, how many consecutive requests (from the
            trigger on) return WAIT; ignored otherwise.
    """

    kind: FaultKind
    at: int
    tx_id: int | None = None
    duration: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise FaultPlanError(
                f"fault trigger must be >= 1, got {self.at}"
            )
        if self.kind is FaultKind.CRASH:
            if self.tx_id is not None:
                raise FaultPlanError(
                    "crash faults hit the whole store; tx_id must be None"
                )
        elif self.tx_id is None:
            raise FaultPlanError(
                f"{self.kind.value} faults need a victim transaction id"
            )
        if self.kind is FaultKind.STALL and self.duration < 1:
            raise FaultPlanError(
                f"stall duration must be >= 1, got {self.duration}"
            )

    @property
    def targets_store(self) -> bool:
        """Whether the event hits the whole store rather than one
        transaction (the split the live chaos harness drives on: store
        faults go to the server, per-transaction faults to clients)."""
        return self.kind is FaultKind.CRASH

    def describe(self) -> str:
        """One-line human-readable rendering."""
        if self.kind is FaultKind.CRASH:
            return f"crash after {self.at} granted ops"
        if self.kind is FaultKind.STALL:
            return (
                f"stall T{self.tx_id} for {self.duration} requests "
                f"from its request #{self.at}"
            )
        return f"{self.kind.value} T{self.tx_id} at its request #{self.at}"


def _sort_key(event: FaultEvent) -> tuple:
    return (event.at, event.kind.value, event.tx_id or 0, event.duration)


class FaultPlan:
    """An immutable, canonically ordered collection of fault events.

    Args:
        events: the events; stored sorted by (trigger, kind, victim) so
            two plans with the same events compare and render equal.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=_sort_key)
        )

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """All events, canonically ordered."""
        return self._events

    def of_kind(self, kind: FaultKind) -> tuple[FaultEvent, ...]:
        """The events of one family, canonically ordered."""
        return tuple(e for e in self._events if e.kind is kind)

    def for_tx(self, tx_id: int) -> tuple[FaultEvent, ...]:
        """The per-transaction events targeting ``tx_id``."""
        return tuple(e for e in self._events if e.tx_id == tx_id)

    def counts(self) -> dict[str, int]:
        """Event counts by kind name (all four keys always present)."""
        return {
            kind.value: sum(1 for e in self._events if e.kind is kind)
            for kind in FaultKind
        }

    def describe(self) -> str:
        """The whole plan, one event per line (empty string if none)."""
        return "\n".join(e.describe() for e in self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        counts = {k: v for k, v in self.counts().items() if v}
        return f"FaultPlan({len(self._events)} events, {counts})"


def random_plan(
    transactions: Sequence[Transaction],
    seed: int | random.Random = 0,
    *,
    abort_rate: float = 0.0,
    stall_rate: float = 0.0,
    kill_rate: float = 0.0,
    crash_rate: float = 0.0,
    max_stall: int = 4,
) -> FaultPlan:
    """A seeded random fault plan over a transaction set.

    Each transaction independently draws at most one abort, one stall,
    and one kill (with the respective probabilities); the store draws at
    most one crash.  Trigger counts are sampled beyond the program length
    too, so faults also land on retry incarnations.  Transactions are
    visited in ascending id order, so the plan is a pure function of
    (transactions, seed, rates).

    Args:
        transactions: the transaction set the plan targets.
        seed: an ``int`` or a pre-seeded ``random.Random``.
        abort_rate: per-transaction probability of one abort fault.
        stall_rate: per-transaction probability of one stall fault.
        kill_rate: per-transaction probability of one permanent kill.
        crash_rate: probability of one store crash.
        max_stall: maximum stall window length.
    """
    for name, rate in (
        ("abort_rate", abort_rate),
        ("stall_rate", stall_rate),
        ("kill_rate", kill_rate),
        ("crash_rate", crash_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"{name} must be in [0, 1], got {rate}")
    if max_stall < 1:
        raise FaultPlanError(f"max_stall must be >= 1, got {max_stall}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    events: list[FaultEvent] = []
    for tx in sorted(transactions, key=lambda t: t.tx_id):
        horizon = 2 * len(tx)
        if rng.random() < abort_rate:
            events.append(
                FaultEvent(
                    FaultKind.ABORT, rng.randint(1, horizon), tx.tx_id
                )
            )
        if rng.random() < stall_rate:
            events.append(
                FaultEvent(
                    FaultKind.STALL,
                    rng.randint(1, horizon),
                    tx.tx_id,
                    duration=rng.randint(1, max_stall),
                )
            )
        if rng.random() < kill_rate:
            events.append(
                FaultEvent(
                    FaultKind.KILL, rng.randint(1, 3 * len(tx)), tx.tx_id
                )
            )
    total_ops = sum(len(tx) for tx in transactions)
    if total_ops and rng.random() < crash_rate:
        events.append(
            FaultEvent(FaultKind.CRASH, rng.randint(1, total_ops))
        )
    return FaultPlan(events)
