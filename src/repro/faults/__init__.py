"""Deterministic fault injection and crash-recovery campaigns.

The paper motivates relative atomicity with long-lived transactions whose
failures must not cascade; this package makes failures first-class inputs
instead of a happy-path afterthought:

* :mod:`~repro.faults.plan` — seeded, deterministic fault plans: one-shot
  abort-on-operation, WAIT stalls, permanent scheduler-victim kills, and
  whole-store crashes, all triggered by request/grant *counts* so the
  same plan replays identically run after run;
* :mod:`~repro.faults.injector` — :class:`FaultInjector`, a transparent
  :class:`~repro.protocols.base.Scheduler` wrapper that fires the plan
  against any protocol and drives the
  :class:`~repro.engine.kvstore.KVStore` crash/recovery path;
* :mod:`~repro.faults.campaign` — seeded campaign runner enforcing the
  **certified-survivor invariants**: after any injected fault campaign,
  the committed projection of the emitted history certifies relative
  serializability via the existing RSG machinery, and the final store
  state equals a fault-free execution of exactly the committed
  transactions (their relatively serial witness, which is a genuinely
  serial schedule for the classical protocols).
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignReport,
    FaultyRun,
    RunRecord,
    run_campaign,
    run_faulty,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, random_plan

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "random_plan",
    "FaultInjector",
    "FaultyRun",
    "run_faulty",
    "CampaignConfig",
    "RunRecord",
    "CampaignReport",
    "run_campaign",
]
