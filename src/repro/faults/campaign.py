"""Seeded fault campaigns with certified-survivor invariants.

A *campaign* is a batch of independent faulty runs.  Each run derives a
random workload, a random relative-atomicity spec, and a random fault
plan from one integer seed, executes it through a fault-injected
protocol with a live key-value store, and then checks the two headline
invariants the whole subsystem exists to enforce:

1. **Certified survivors** — the committed projection of the emitted
   history certifies relatively serializable via the existing RSG
   machinery, under the spec restricted to the committed transactions
   (Lemma 1 makes this the conflict-serializability test for the
   classical protocols, which run under an absolute spec).
2. **Recovered state** — the final store state equals a fault-free
   execution of exactly the committed transactions: both a replay of the
   committed projection itself and a run of its relatively serial RSG
   witness (a genuinely *serial* schedule under an absolute spec)
   produce the same state the faulty run left behind.  Every effect of
   every aborted, killed, or crash-rolled-back incarnation is gone;
   every committed effect survives.

Campaigns are deterministic: the report is a pure function of the
config, same seed ⇒ byte-identical JSON, at any ``jobs=`` count (runs
fan out over :class:`~repro.parallel.ParallelExecutor` and merge in task
order).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.engine.executor import ScheduleExecutor
from repro.engine.kvstore import KVStore
from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, random_plan
from repro.obs.bus import RingBufferSink, TraceBus
from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import ParallelExecutor
from repro.protocols import PROTOCOL_NAMES, make_scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate
from repro.specs.builders import absolute_spec, random_spec
from repro.workloads.random_schedules import random_transactions

__all__ = [
    "CampaignConfig",
    "FaultyRun",
    "RunRecord",
    "CampaignReport",
    "run_faulty",
    "run_campaign",
]

#: Protocols whose scheduler takes a relative atomicity spec.
_SPEC_PROTOCOLS = ("rel-locking", "rsgt")


def run_faulty(
    transactions,
    protocol: str,
    plan: FaultPlan,
    spec=None,
    *,
    initial_state=None,
    backoff: int = 1,
    max_attempts: int = 4,
    max_ticks: int = 50_000,
    watchdog_threshold: int | None = 32,
    bus: TraceBus | None = None,
    metrics: MetricsRegistry | None = None,
) -> "FaultyRun":
    """One faulty run, invariants checked.

    Args:
        transactions: the transaction set.
        protocol: canonical protocol name (see
            :data:`repro.protocols.PROTOCOL_NAMES`).
        plan: the fault plan to inject.
        spec: relative atomicity spec for the spec-aware protocols; the
            classical ones are certified under the absolute spec.
        initial_state: store contents before the run; defaults to
            ``"init"`` for every object any transaction touches.
        backoff: restart backoff base (exponential policy).
        max_attempts: incarnation budget per transaction.
        max_ticks: hard tick guard.
        watchdog_threshold: stall watchdog setting for the scheduler.
        bus: optional trace bus threaded through the simulator, the
            injected scheduler, and (for the certifying protocols) the
            certifier.
        metrics: optional registry receiving the run's counters.

    Returns:
        A :class:`FaultyRun` with the simulation result, the survivor
        set, the injection counters, and both invariant verdicts.
    """
    transactions = list(transactions)
    if initial_state is None:
        initial_state = {
            obj: "init" for tx in transactions for obj in tx.objects
        }
    full_spec = spec if protocol in _SPEC_PROTOCOLS else None
    scheduler = make_scheduler(protocol, full_spec)
    scheduler.watchdog_threshold = watchdog_threshold
    store = KVStore(initial_state)
    injector = FaultInjector(scheduler, plan, store=store)
    result = simulate(
        transactions,
        injector,
        backoff=backoff,
        max_ticks=max_ticks,
        max_attempts=max_attempts,
        restart_policy="exponential",
        store=store,
        bus=bus,
        metrics=metrics,
    )

    survivors = result.survivor_ids
    certifying_spec = (
        full_spec if full_spec is not None else absolute_spec(transactions)
    ).restricted_to(survivors)
    projection = result.schedule
    rsg = RelativeSerializationGraph(projection, certifying_spec)
    certified = rsg.is_acyclic

    final_state = store.snapshot()
    replay_state = ScheduleExecutor(initial_state).run(projection).final_state
    state_ok = final_state == replay_state
    witness: Schedule | None = None
    if certified:
        witness = rsg.equivalent_relatively_serial_schedule()
        witness_state = ScheduleExecutor(initial_state).run(
            witness
        ).final_state
        state_ok = state_ok and final_state == witness_state

    return FaultyRun(
        result=result,
        plan=plan,
        survivors=survivors,
        certified=certified,
        state_ok=state_ok,
        counters=injector.counters(),
        watchdog_fires=scheduler.watchdog_fires,
        final_state=final_state,
        witness=witness,
    )


@dataclass
class FaultyRun:
    """Everything one fault-injected run produced.

    Attributes:
        result: the simulation result (committed projection + metrics).
        plan: the injected fault plan.
        survivors: ids of the committed transactions, ascending.
        certified: whether the committed projection's RSG is acyclic
            under the survivor-restricted spec.
        state_ok: whether the final store state matched both fault-free
            re-executions (projection replay and RSG witness).
        counters: the injector's fault counters.
        watchdog_fires: stall-watchdog victim picks during the run.
        final_state: the store contents after the run.
        witness: the relatively serial witness schedule (``None`` when
            certification failed).
    """

    result: SimulationResult
    plan: FaultPlan
    survivors: tuple[int, ...]
    certified: bool
    state_ok: bool
    counters: dict[str, int]
    watchdog_fires: int
    final_state: dict[str, object]
    witness: Schedule | None

    @property
    def ok(self) -> bool:
        """Both invariants at once."""
        return self.certified and self.state_ok


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign derives its runs from.

    All fields are primitives, so configs pickle across process
    boundaries and hash into reports unchanged.
    """

    protocol: str = "rsgt"
    runs: int = 20
    seed: int = 0
    n_transactions: int = 4
    min_ops: int = 2
    max_ops: int = 4
    n_objects: int = 3
    write_probability: float = 0.6
    cut_probability: float = 0.5
    abort_rate: float = 0.3
    stall_rate: float = 0.3
    kill_rate: float = 0.15
    crash_rate: float = 0.25
    backoff: int = 1
    max_attempts: int = 4
    max_ticks: int = 50_000
    watchdog_threshold: int = 32
    #: Collect a per-run JSONL trace and metrics report.  Off by default:
    #: traces are sizeable, and the golden report stays lean without them.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise FaultError(
                f"unknown protocol {self.protocol!r}; expected one of "
                f"{PROTOCOL_NAMES}"
            )
        if self.runs < 1:
            raise FaultError(f"a campaign needs >= 1 run, got {self.runs}")

    def run_seed(self, index: int) -> int:
        """The derived seed of run ``index`` (stable, collision-spread)."""
        return (self.seed * 2_654_435_761 + index * 97) % (2**31 - 1)


@dataclass(frozen=True)
class RunRecord:
    """The flat, picklable summary of one campaign run."""

    index: int
    seed: int
    committed: int
    aborted: int
    survivors: tuple[int, ...]
    certified: bool
    state_ok: bool
    makespan: int
    restarts: int
    waits: int
    watchdog_fires: int
    injected: dict[str, int]
    wait_percentiles: dict[str, int]
    history: str
    #: JSONL trace of the run (empty unless ``CampaignConfig.trace``).
    trace: str = ""
    #: Deterministic metrics report (empty unless ``CampaignConfig.trace``).
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.certified and self.state_ok


def _run_campaign_task(task: tuple[CampaignConfig, int]) -> RunRecord:
    """Worker: derive and execute one run from (config, index)."""
    config, index = task
    seed = config.run_seed(index)
    transactions = random_transactions(
        config.n_transactions,
        (config.min_ops, config.max_ops),
        config.n_objects,
        write_probability=config.write_probability,
        seed=seed,
    )
    spec = (
        random_spec(transactions, config.cut_probability, seed=seed + 1)
        if config.protocol in _SPEC_PROTOCOLS
        else None
    )
    plan = random_plan(
        transactions,
        seed + 2,
        abort_rate=config.abort_rate,
        stall_rate=config.stall_rate,
        kill_rate=config.kill_rate,
        crash_rate=config.crash_rate,
    )
    # Seed the full object pool so random reads always find their object.
    initial_state = {f"x{i}": "init" for i in range(config.n_objects)}
    sink: RingBufferSink | None = None
    bus: TraceBus | None = None
    metrics: MetricsRegistry | None = None
    if config.trace:
        sink = RingBufferSink()
        bus = TraceBus(sink)
        metrics = MetricsRegistry()
    run = run_faulty(
        transactions,
        config.protocol,
        plan,
        spec=spec,
        initial_state=initial_state,
        backoff=config.backoff,
        max_attempts=config.max_attempts,
        max_ticks=config.max_ticks,
        watchdog_threshold=config.watchdog_threshold,
        bus=bus,
        metrics=metrics,
    )
    return RunRecord(
        index=index,
        seed=seed,
        committed=run.result.committed,
        aborted=run.result.aborted,
        survivors=run.survivors,
        certified=run.certified,
        state_ok=run.state_ok,
        makespan=run.result.makespan,
        restarts=run.result.total_restarts,
        waits=run.result.total_waits,
        watchdog_fires=run.watchdog_fires,
        injected=run.counters,
        wait_percentiles=run.result.wait_percentiles(),
        history=str(run.result.schedule),
        trace=sink.text() if sink is not None else "",
        metrics=metrics.to_dict() if metrics is not None else {},
    )


@dataclass
class CampaignReport:
    """A whole campaign's outcome, deterministic and serializable."""

    config: CampaignConfig
    records: list[RunRecord] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def all_certified(self) -> bool:
        return all(record.certified for record in self.records)

    @property
    def all_state_ok(self) -> bool:
        return all(record.state_ok for record in self.records)

    @property
    def ok(self) -> bool:
        """The campaign's headline verdict: every run held both
        invariants."""
        return self.all_certified and self.all_state_ok

    def totals(self) -> dict[str, int]:
        """Summed counters across runs."""
        totals = {
            "committed": 0,
            "aborted": 0,
            "restarts": 0,
            "waits": 0,
            "watchdog_fires": 0,
            "injected_aborts": 0,
            "injected_stall_waits": 0,
            "injected_kills": 0,
            "injected_crashes": 0,
            "crash_rollbacks": 0,
        }
        for record in self.records:
            totals["committed"] += record.committed
            totals["aborted"] += record.aborted
            totals["restarts"] += record.restarts
            totals["waits"] += record.waits
            totals["watchdog_fires"] += record.watchdog_fires
            totals["injected_aborts"] += record.injected["aborts"]
            totals["injected_stall_waits"] += record.injected["stall_waits"]
            totals["injected_kills"] += record.injected["kills"]
            totals["injected_crashes"] += record.injected["crashes"]
            totals["crash_rollbacks"] += record.injected["crash_rollbacks"]
        return totals

    def trace_jsonl(self) -> str:
        """The campaign's full trace: per-run JSONL sections in run order.

        Each run contributes a one-line ``{"run": i, "seed": s}`` header
        followed by its events.  Records merge in run order at any
        ``jobs=`` count, so this text is byte-identical across worker
        counts (empty unless the config enabled tracing).
        """
        sections = []
        for record in self.records:
            if not record.trace:
                continue
            header = json.dumps(
                {"run": record.index, "seed": record.seed},
                separators=(",", ":"),
            )
            sections.append(header + "\n" + record.trace)
        return "".join(sections)

    def merged_metrics(self) -> dict:
        """Per-run metrics reports folded into one (counters add, gauges
        keep the maximum, observations combine) — the same associative
        merge :meth:`~repro.obs.metrics.MetricsRegistry.merge` performs,
        so the result is independent of the ``jobs=`` partitioning."""
        counters: dict[str, int] = {}
        gauges: dict[str, int] = {}
        observations: dict[str, dict[str, int]] = {}
        for record in self.records:
            report = record.metrics
            if not report:
                continue
            for key, value in report.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in report.get("gauges", {}).items():
                mine = gauges.get(key)
                if mine is None or value > mine:
                    gauges[key] = value
            for key, stats in report.get("observations", {}).items():
                mine = observations.get(key)
                if mine is None:
                    observations[key] = dict(stats)
                else:
                    mine["sum"] += stats["sum"]
                    mine["count"] += stats["count"]
                    mine["min"] = min(mine["min"], stats["min"])
                    mine["max"] = max(mine["max"], stats["max"])
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "observations": dict(sorted(observations.items())),
        }

    def metrics_json(self) -> str:
        """Byte-stable JSON rendering of :meth:`merged_metrics`."""
        return json.dumps(self.merged_metrics(), indent=2, sort_keys=True)

    def to_dict(self) -> dict:
        """A plain-data rendering (stable key order via ``to_json``)."""
        return {
            "config": asdict(self.config),
            "ok": self.ok,
            "all_certified": self.all_certified,
            "all_state_ok": self.all_state_ok,
            "totals": self.totals(),
            "runs": [asdict(record) for record in self.records],
        }

    def to_json(self) -> str:
        """Byte-stable JSON: sorted keys, no floats derived from timing."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """A short human-readable digest."""
        totals = self.totals()
        return (
            f"campaign[{self.config.protocol}] seed={self.config.seed} "
            f"runs={self.runs}: "
            f"committed={totals['committed']} aborted={totals['aborted']} "
            f"restarts={totals['restarts']} "
            f"crashes={totals['injected_crashes']} "
            f"kills={totals['injected_kills']} "
            f"certified={'all' if self.all_certified else 'FAILED'} "
            f"state={'all' if self.all_state_ok else 'FAILED'}"
        )


def run_campaign(
    config: CampaignConfig, *, jobs: int | None = 1
) -> CampaignReport:
    """Run every seeded faulty run of ``config`` and report.

    ``jobs=1`` runs the loop inline; more jobs fan the independent runs
    over a process pool.  Records are merged in run order, so the report
    is byte-identical at any job count.
    """
    tasks = [(config, index) for index in range(config.runs)]
    records = ParallelExecutor(jobs).map(_run_campaign_task, tasks)
    return CampaignReport(config=config, records=list(records))
