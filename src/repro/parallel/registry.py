"""Process-local context registry for shared-nothing parallel sweeps.

The old parallel engine shipped pickled object graphs — transaction
lists, specs, whole sorted schedule populations — inside *every* chunk
task, so a 4-worker sweep spent more time serializing than sweeping
(BENCH_parallel.json recorded slowdowns).  This module inverts the
flow:

* the parent **registers** each sweep's shared inputs once
  (:func:`register`), content-addressed by the SHA-256 of their pickle
  so repeated sweeps over the same inputs reuse the same context id;
* the warm worker pool (:mod:`repro.parallel.executor`) ships the
  registered blobs **once per pool build** through the pool
  initializer (:func:`install`), never per task;
* tasks become flat integer tuples — ``(ctx_id, rank_lo, rank_hi)`` —
  that workers resolve against their process-local copy
  (:func:`resolve`);
* workers keep **warm per-context engines** (:func:`cached`) — e.g. an
  :class:`~repro.core.rsg.IncrementalRsg` with the sweep's
  transactions already declared — reset and reused across chunks
  instead of rebuilt per chunk.

Everything here is deliberately process-local state plus pure
functions: there is no shared memory, no manager process, and no
channel other than the one-shot initializer blob — the shared-nothing
discipline that keeps parallel results byte-identical to serial ones.

The inline (``jobs=1``) path never pickles anything: :func:`resolve`
falls back to the parent-side payload object directly.
"""

from __future__ import annotations

import hashlib
import pickle
from collections.abc import Callable
from typing import Any

__all__ = [
    "cached",
    "clear",
    "install",
    "payload_size",
    "register",
    "resolve",
    "snapshot",
    "version",
]

#: Contexts kept before the oldest is evicted.  Sweeps register their
#: context immediately before mapping tasks that reference it, so only
#: pathological interleavings of 60+ concurrent sweeps could observe an
#: eviction; the cap exists to bound parent memory across long sessions
#: (each population context can hold thousands of schedules).
MAX_CONTEXTS = 64

# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
#: ctx_id -> (payload object, pickled payload).  Insertion-ordered, so
#: eviction drops the oldest context first.
_PARENT: dict[int, tuple[Any, bytes]] = {}
#: content digest -> ctx_id (the dedup index).
_BY_DIGEST: dict[str, int] = {}
_NEXT_ID = 0
#: Bumped whenever the registered context set changes; the warm pool
#: compares it against the version its workers were initialized with
#: and rebuilds (re-shipping the snapshot once) on mismatch.
_VERSION = 0


def register(payload: Any) -> int:
    """Register a sweep context, returning its id.

    Content-addressed: registering an equal-pickling payload again
    returns the existing id without bumping the registry version, so a
    repeated sweep reuses both the shipped blob and the workers' warm
    engines.  The payload must be picklable (it crosses the process
    boundary exactly once, in the pool initializer).
    """
    global _NEXT_ID, _VERSION
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    ctx_id = _BY_DIGEST.get(digest)
    if ctx_id is not None:
        return ctx_id
    ctx_id = _NEXT_ID
    _NEXT_ID += 1
    _PARENT[ctx_id] = (payload, blob)
    _BY_DIGEST[digest] = ctx_id
    if len(_PARENT) > MAX_CONTEXTS:
        oldest = next(iter(_PARENT))
        del _PARENT[oldest]
        for key, value in list(_BY_DIGEST.items()):
            if value == oldest:
                del _BY_DIGEST[key]
    _VERSION += 1
    return ctx_id


def version() -> int:
    """The registry's mutation counter (pool staleness check)."""
    return _VERSION


def payload_size(ctx_id: int) -> int:
    """Pickled byte size of a registered context (bench accounting)."""
    return len(_PARENT[ctx_id][1])


def snapshot() -> bytes:
    """One blob holding every registered context, for the initializer.

    Inner payloads stay as their already-pickled bytes: the snapshot is
    a cheap concatenation, and workers unpickle a context lazily on
    first :func:`resolve`.
    """
    return pickle.dumps(
        (_VERSION, {ctx_id: blob for ctx_id, (_, blob) in _PARENT.items()}),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def clear() -> None:
    """Drop every context (tests; also invalidates warm pools).

    Context ids are never reused (the id counter survives), so worker
    caches keyed by a cleared id can never serve a stale hit; they are
    dropped here anyway to release the memory in the inline path.
    """
    global _VERSION, _WORKER_BLOBS
    _PARENT.clear()
    _BY_DIGEST.clear()
    _WORKER_BLOBS = None
    _WORKER_PAYLOADS.clear()
    _WORKER_CACHE.clear()
    _VERSION += 1


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: ctx_id -> pickled payload, installed by the pool initializer.
#: ``None`` distinguishes "never installed" (the inline path) from an
#: installed-but-empty registry.
_WORKER_BLOBS: dict[int, bytes] | None = None
#: ctx_id -> unpickled payload (lazy).
_WORKER_PAYLOADS: dict[int, Any] = {}
#: (ctx_id, tag) -> warm per-process object (engines, certifiers).
_WORKER_CACHE: dict[tuple[int, str], Any] = {}


def install(blob: bytes) -> None:
    """Pool initializer: adopt the parent's context snapshot.

    Runs once per worker process per pool build.  Clears the warm
    object cache — context ids are content-addressed, so a surviving
    id would still match, but a rebuilt pool starts from fresh
    processes anyway and the inline path must not leak engines across
    :func:`clear` boundaries.
    """
    global _WORKER_BLOBS
    _, blobs = pickle.loads(blob)
    _WORKER_BLOBS = blobs
    _WORKER_PAYLOADS.clear()
    _WORKER_CACHE.clear()


def resolve(ctx_id: int) -> Any:
    """The payload registered under ``ctx_id``.

    In a worker process this unpickles the installed blob on first use
    and caches the object; in the parent (the ``jobs=1`` inline path,
    or a forked child that inherited parent memory before ``install``
    ran) it returns the registered object directly — zero pickling.
    """
    payload = _WORKER_PAYLOADS.get(ctx_id)
    if payload is not None:
        return payload
    if _WORKER_BLOBS is not None and ctx_id in _WORKER_BLOBS:
        payload = pickle.loads(_WORKER_BLOBS[ctx_id])
        _WORKER_PAYLOADS[ctx_id] = payload
        return payload
    entry = _PARENT.get(ctx_id)
    if entry is None:
        raise KeyError(
            f"context {ctx_id} is not installed in this process "
            "(stale pool or evicted context)"
        )
    return entry[0]


def cached(ctx_id: int, tag: str, factory: Callable[[], Any]) -> Any:
    """A warm per-process object for ``(ctx_id, tag)``.

    Built by ``factory`` on first use and reused for every later task
    of the same context in this process — the hook that keeps one
    :class:`~repro.core.rsg.IncrementalRsg` (with its flat graph's
    node ids, freelists, and buffers) alive across chunks.  Callers
    reset the object per task; the registry only stores it.
    """
    key = (ctx_id, tag)
    obj = _WORKER_CACHE.get(key)
    if obj is None:
        obj = factory()
        _WORKER_CACHE[key] = obj
    return obj
