"""Ranked schedule-space partitioning for the analysis sweeps.

The census, acceptance, and containment sweeps are all left folds over
an ordered stream of classified schedules.  This module splits those
streams into contiguous blocks, classifies each block in a worker
process, and merges the partial results in block order — so the
parallel result is the *same fold*, just reassociated, and counts,
violations, and first-found witnesses come out identical to the serial
sweep.

Shared-nothing discipline (see :mod:`repro.parallel.registry`):

* the sweep's shared inputs — transactions, spec, budget, or the whole
  sorted population — are registered once and shipped to the warm
  worker pool once per pool build, never per task;
* tasks are flat integer tuples ``(ctx_id, lo, hi)``: a rank window
  into the interleaving space for exhaustive sweeps, an index window
  into the registered sorted population for population sweeps;
* each worker keeps one :class:`~repro.core.rsg.IncrementalRsg` per
  context warm across chunks (reset between tasks, node ids and
  buffers reused), and folds its block locally — one small
  :class:`~repro.analysis.classes.ClassCensus` /
  :class:`~repro.analysis.containment.ContainmentReport` summary
  crosses the boundary per chunk, not per schedule.

Sweeps smaller than one minimum block run inline and never touch the
pool.  Workers are module-level functions over picklable tuples, as
:mod:`multiprocessing` requires.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.classes import ClassCensus, _census_pairs, _lex_key, census
from repro.analysis.containment import (
    ContainmentReport,
    _containment_pairs,
    check_containments,
)
from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.rsg import IncrementalRsg
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.parallel import registry
from repro.parallel.executor import ParallelExecutor, plan_block_count
from repro.workloads.enumerate import (
    count_interleavings,
    interleaving_blocks,
    interleavings_block,
    shared_prefix_rsgs,
)

__all__ = [
    "census_exhaustive_parallel",
    "census_schedules",
    "check_containments_parallel",
]

#: Minimum schedules per block for population sweeps.  Populations are
#: classified with the NP-complete consistency test in the loop, so a
#: block amortizes its overhead at a fraction of the rank-sweep
#: minimum.
MIN_POPULATION_BLOCK = 32


def _warm_engine(ctx_id: int, spec: RelativeAtomicitySpec) -> IncrementalRsg:
    """This worker's reusable engine for ``ctx_id``, reset for a task."""

    def build() -> IncrementalRsg:
        engine = IncrementalRsg(spec, maintain_reach=True)
        for transaction in spec.transaction_list:
            engine.add_transaction(transaction)
        return engine

    engine = registry.cached(ctx_id, "rsg", build)
    engine.reset()
    return engine


# ----------------------------------------------------------------------
# Exhaustive census over the ranked schedule space
# ----------------------------------------------------------------------
def _census_rank_block(task: tuple[int, int, int]) -> ClassCensus:
    """Worker: census the interleavings with ranks in ``[lo, hi)``."""
    ctx_id, lo, hi = task
    transactions, spec, budget = registry.resolve(ctx_id)
    pairs = shared_prefix_rsgs(
        spec,
        interleavings_block(transactions, lo, hi),
        engine=_warm_engine(ctx_id, spec),
    )
    return _census_pairs(pairs, spec, budget)


def census_exhaustive_parallel(
    transactions: Sequence[Transaction],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int | None = 1,
    min_block: int | None = None,
) -> ClassCensus:
    """Exhaustive class census, fanned out over rank blocks.

    Identical to :func:`repro.analysis.classes.census_exhaustive` —
    same counts *and* same witnesses, because blocks partition the
    lexicographic enumeration contiguously and merge in rank order.
    ``min_block`` overrides the per-block rank floor (tests force small
    blocks through the pool; the default keeps tiny sweeps inline).
    """
    executor = ParallelExecutor(jobs)
    transactions = list(transactions)
    total = count_interleavings(transactions)
    kwargs = {} if min_block is None else {"min_block": min_block}
    blocks = plan_block_count(total, executor.jobs, **kwargs)
    if executor.jobs <= 1 or blocks <= 1:
        from repro.analysis.classes import census_exhaustive

        return census_exhaustive(transactions, spec, consistency_budget)
    ctx_id = registry.register((transactions, spec, consistency_budget))
    tasks = [
        (ctx_id, lo, hi)
        for lo, hi in interleaving_blocks(transactions, blocks)
    ]
    return executor.map_reduce(
        _census_rank_block, tasks, ClassCensus.merge, ClassCensus()
    )


# ----------------------------------------------------------------------
# Population sweeps (random schedule lists)
# ----------------------------------------------------------------------
def _census_slice(task: tuple[int, int, int]) -> ClassCensus:
    """Worker: census one window of the registered sorted population."""
    ctx_id, lo, hi = task
    ordered, spec, budget = registry.resolve(ctx_id)
    pairs = shared_prefix_rsgs(
        spec, ordered[lo:hi], engine=_warm_engine(ctx_id, spec)
    )
    return _census_pairs(pairs, spec, budget)


def census_schedules(
    schedules: Sequence[Schedule],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int | None = 1,
    min_block: int | None = None,
) -> ClassCensus:
    """Census a schedule population across worker processes.

    The population is sorted once (the prefix-sharing order the serial
    path uses), registered as one shared context, and split into
    contiguous index windows; the ordered merge makes the result
    identical to ``census(schedules, spec, shared_prefixes=True)``.
    """
    executor = ParallelExecutor(jobs)
    ordered = sorted(schedules, key=_lex_key)
    tasks = _population_tasks(
        ordered, spec, consistency_budget, executor.jobs, min_block
    )
    if tasks is None:
        return census(
            ordered, spec, consistency_budget, shared_prefixes=True
        )
    return executor.map_reduce(
        _census_slice, tasks, ClassCensus.merge, ClassCensus()
    )


def _containment_slice(task: tuple[int, int, int]) -> ContainmentReport:
    """Worker: containment-check one window of the sorted population."""
    ctx_id, lo, hi = task
    ordered, spec, budget = registry.resolve(ctx_id)
    pairs = shared_prefix_rsgs(
        spec, ordered[lo:hi], engine=_warm_engine(ctx_id, spec)
    )
    return _containment_pairs(pairs, spec, budget)


def check_containments_parallel(
    schedules: Sequence[Schedule],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int | None = 1,
    min_block: int | None = None,
) -> ContainmentReport:
    """Containment check across worker processes (sorted population
    registered once, contiguous index windows, ordered merge) —
    identical to the ``shared_prefixes=True`` serial report."""
    executor = ParallelExecutor(jobs)
    ordered = sorted(schedules, key=_lex_key)
    tasks = _population_tasks(
        ordered, spec, consistency_budget, executor.jobs, min_block
    )
    if tasks is None:
        return check_containments(
            ordered, spec, consistency_budget, shared_prefixes=True
        )
    return executor.map_reduce(
        _containment_slice, tasks, ContainmentReport.merge, ContainmentReport()
    )


def _population_tasks(
    ordered: list[Schedule],
    spec: RelativeAtomicitySpec,
    budget: int | None,
    workers: int,
    min_block: int | None,
) -> list[tuple[int, int, int]] | None:
    """Flat ``(ctx_id, lo, hi)`` tasks over a sorted population.

    ``None`` signals the caller to run inline: one block (or one
    worker) means the pool would only add overhead.
    """
    floor = MIN_POPULATION_BLOCK if min_block is None else min_block
    blocks = plan_block_count(len(ordered), workers, min_block=floor)
    if workers <= 1 or blocks <= 1:
        return None
    ctx_id = registry.register((tuple(ordered), spec, budget))
    return [
        (ctx_id, lo, hi)
        for lo, hi in _windows(len(ordered), blocks)
    ]


def _windows(total: int, blocks: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into contiguous near-equal index windows."""
    base, extra = divmod(total, blocks)
    out = []
    start = 0
    for i in range(blocks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        out.append((start, start + size))
        start += size
    return out
