"""Ranked schedule-space partitioning for the analysis sweeps.

The census, acceptance, and containment sweeps are all left folds over
an ordered stream of classified schedules.  This module splits those
streams into contiguous blocks, classifies each block in a worker
process (each block riding its own shared-prefix
:class:`~repro.core.rsg.IncrementalRsg` engine seeded at the block
start), and merges the partial results in block order — so the parallel
result is the *same fold*, just reassociated, and counts, violations,
and first-found witnesses come out identical to the serial sweep.

Two partitioning strategies:

* **exhaustive sweeps** split the lexicographic *rank space* of the
  interleavings (:func:`~repro.workloads.enumerate.interleaving_blocks`)
  — workers never materialize schedules outside their block, entering
  the enumeration tree directly at their start rank;
* **population sweeps** (random schedule lists) sort once and split the
  sorted list into contiguous slices, preserving the prefix sharing the
  serial path gets from sorting.

Workers are module-level functions over picklable tuples, as
:mod:`multiprocessing` requires.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.classes import ClassCensus, _census_pairs, _lex_key, census
from repro.analysis.containment import ContainmentReport, check_containments
from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.parallel.executor import ParallelExecutor
from repro.workloads.enumerate import (
    interleaving_blocks,
    interleavings_block,
    shared_prefix_rsgs,
)

__all__ = [
    "census_exhaustive_parallel",
    "census_schedules",
    "check_containments_parallel",
]

#: Rank blocks per worker.  More blocks than workers lets the pool
#: rebalance (block costs vary with the NP-complete consistency test),
#: while each block stays large enough to amortize its engine seeding.
_BLOCKS_PER_WORKER = 4


def _chunk_count(jobs: int, tasks_hint: int) -> int:
    return max(1, min(jobs * _BLOCKS_PER_WORKER, tasks_hint))


# ----------------------------------------------------------------------
# Exhaustive census over the ranked schedule space
# ----------------------------------------------------------------------
def _census_rank_block(
    task: tuple[list[Transaction], RelativeAtomicitySpec, int, int, int | None],
) -> ClassCensus:
    """Worker: census the interleavings with ranks in ``[start, stop)``."""
    transactions, spec, start, stop, budget = task
    pairs = shared_prefix_rsgs(
        spec, interleavings_block(transactions, start, stop)
    )
    return _census_pairs(pairs, spec, budget)


def census_exhaustive_parallel(
    transactions: Sequence[Transaction],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int | None = 1,
) -> ClassCensus:
    """Exhaustive class census, fanned out over rank blocks.

    Identical to :func:`repro.analysis.classes.census_exhaustive` —
    same counts *and* same witnesses, because blocks partition the
    lexicographic enumeration contiguously and merge in rank order.
    """
    executor = ParallelExecutor(jobs)
    transactions = list(transactions)
    blocks = interleaving_blocks(
        transactions, _chunk_count(executor.jobs, 1 << 30)
    )
    tasks = [
        (transactions, spec, start, stop, consistency_budget)
        for start, stop in blocks
    ]
    return executor.map_reduce(
        _census_rank_block, tasks, ClassCensus.merge, ClassCensus()
    )


# ----------------------------------------------------------------------
# Population sweeps (random schedule lists)
# ----------------------------------------------------------------------
def _census_slice(
    task: tuple[list[Schedule], RelativeAtomicitySpec, int | None],
) -> ClassCensus:
    """Worker: census one already-sorted contiguous population slice."""
    schedules, spec, budget = task
    return census(schedules, spec, budget, shared_prefixes=True)


def census_schedules(
    schedules: Sequence[Schedule],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int | None = 1,
) -> ClassCensus:
    """Census a schedule population across worker processes.

    The population is sorted once (the prefix-sharing order the serial
    path uses) and split into contiguous slices; the ordered merge
    makes the result identical to
    ``census(schedules, spec, shared_prefixes=True)``.
    """
    executor = ParallelExecutor(jobs)
    ordered = sorted(schedules, key=_lex_key)
    tasks = [
        (chunk, spec, consistency_budget)
        for chunk in _slices(ordered, _chunk_count(executor.jobs, len(ordered)))
    ]
    return executor.map_reduce(
        _census_slice, tasks, ClassCensus.merge, ClassCensus()
    )


def _containment_slice(
    task: tuple[list[Schedule], RelativeAtomicitySpec, int | None],
) -> ContainmentReport:
    """Worker: containment-check one sorted contiguous slice."""
    schedules, spec, budget = task
    return check_containments(schedules, spec, budget, shared_prefixes=True)


def check_containments_parallel(
    schedules: Sequence[Schedule],
    spec: RelativeAtomicitySpec,
    consistency_budget: int | None = 200_000,
    *,
    jobs: int | None = 1,
) -> ContainmentReport:
    """Containment check across worker processes (sorted, contiguous
    slices, ordered merge) — identical to the ``shared_prefixes=True``
    serial report."""
    executor = ParallelExecutor(jobs)
    ordered = sorted(schedules, key=_lex_key)
    tasks = [
        (chunk, spec, consistency_budget)
        for chunk in _slices(ordered, _chunk_count(executor.jobs, len(ordered)))
    ]
    return executor.map_reduce(
        _containment_slice, tasks, ContainmentReport.merge, ContainmentReport()
    )


def _slices(items: list, chunks: int) -> list[list]:
    """Split ``items`` into ``chunks`` contiguous near-equal slices."""
    if not items:
        return []
    base, extra = divmod(len(items), chunks)
    out = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        out.append(items[start:start + size])
        start += size
    return out
