"""Shared-nothing process-level parallel sweep engine.

The schedule-space sweeps (Figure 5 census, acceptance/containment
populations) and the simulation campaigns are the repo's dominant
wall-clock cost and are embarrassingly parallel once partitioned
deterministically.  This package provides:

* :class:`ParallelExecutor` — chunked map over a **warm persistent
  process pool** (workers initialized once per pool with the sweep
  contexts, kept alive across chunks, maps, and batches) with ordered
  reduce, bounded worker-crash retry, and a bit-identical ``jobs=1``
  serial fallback;
* :mod:`repro.parallel.registry` — the process-local context registry:
  sweep inputs (transactions, specs, populations) register once in the
  parent, ship once per pool build through the initializer, and tasks
  are flat ``(ctx_id, lo, hi)`` integer tuples resolved worker-side,
  with warm per-context engines reused across chunks;
* ranked schedule-space partitioning
  (:func:`census_exhaustive_parallel`) — contiguous lexicographic-rank
  blocks via :func:`repro.workloads.enumerate.interleaving_blocks`,
  each worker entering the enumeration tree at its block-start rank;
* population partitioning (:func:`census_schedules`,
  :func:`check_containments_parallel`) — sort once, register the
  population once, split into contiguous index windows, merge in
  order.

The batched simulation driver (including the in-worker-reduced
``summarize_batch``) lives in :mod:`repro.sim.batch`.  Everything is
reachable through ``jobs=`` keywords on the serial entry points
(``census``, ``census_exhaustive``, ``check_containments``,
``compare_protocols``) and ``--jobs`` on the CLI.
"""

from repro.parallel import registry
from repro.parallel.executor import (
    ParallelExecutor,
    plan_block_count,
    resolve_jobs,
    shutdown_pools,
)
from repro.parallel.sweeps import (
    census_exhaustive_parallel,
    census_schedules,
    check_containments_parallel,
)

__all__ = [
    "ParallelExecutor",
    "census_exhaustive_parallel",
    "census_schedules",
    "check_containments_parallel",
    "plan_block_count",
    "registry",
    "resolve_jobs",
    "shutdown_pools",
]
