"""Process-level parallel sweep engine.

The schedule-space sweeps (Figure 5 census, acceptance/containment
populations) and the simulation campaigns are the repo's dominant
wall-clock cost and are embarrassingly parallel once partitioned
deterministically.  This package provides:

* :class:`ParallelExecutor` — chunked process-pool map with ordered
  reduce, worker-crash surfacing, and a bit-identical ``jobs=1``
  serial fallback;
* ranked schedule-space partitioning
  (:func:`census_exhaustive_parallel`) — contiguous lexicographic-rank
  blocks via :func:`repro.workloads.enumerate.interleaving_blocks`,
  each worker seeding its own shared-prefix incremental RSG engine at
  its block-start rank;
* population partitioning (:func:`census_schedules`,
  :func:`check_containments_parallel`) — sort once, split into
  contiguous slices, merge in order.

The batched simulation driver lives in :mod:`repro.sim.batch`.
Everything is reachable through ``jobs=`` keywords on the serial entry
points (``census``, ``census_exhaustive``, ``check_containments``,
``compare_protocols``) and ``--jobs`` on the CLI.
"""

from repro.parallel.executor import ParallelExecutor, resolve_jobs
from repro.parallel.sweeps import (
    census_exhaustive_parallel,
    census_schedules,
    check_containments_parallel,
)

__all__ = [
    "ParallelExecutor",
    "census_exhaustive_parallel",
    "census_schedules",
    "check_containments_parallel",
    "resolve_jobs",
]
