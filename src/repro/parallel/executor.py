"""Deterministic process-level parallelism for schedule-space sweeps.

The consistency-checking sweeps this repo runs (class census, acceptance
and containment sweeps, protocol-comparison simulations) are
embarrassingly parallel once the work is partitioned deterministically:
every task is a pure function of picklable inputs, and the merged result
must not depend on worker timing.  :class:`ParallelExecutor` provides
exactly that discipline:

* **chunked work queue** — tasks are submitted in fixed-size chunks
  (several per worker, so stragglers rebalance) to a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* **ordered reduce** — results are folded in *task order* no matter
  which worker finished first, so a parallel run is a reassociation of
  the serial fold, not a reordering;
* **bounded crash retry** — a worker that dies without reporting (hard
  crash, OOM kill) no longer aborts the sweep: the partial results are
  discarded and the whole map is retried on a fresh pool up to
  ``max_retries`` times (tasks are pure, so a rerun is bit-identical).
  Only when the retry budget is exhausted does
  :class:`~repro.errors.ParallelExecutionError` surface; exceptions
  *raised* by worker code propagate unchanged and immediately, exactly
  as they would serially;
* **serial fallback** — ``jobs=1`` (the default) never touches
  :mod:`multiprocessing`: the worker runs inline in submission order,
  so results are bit-identical and debuggers/profilers/coverage see
  straight-line code.

Workers must be module-level callables and tasks picklable values —
the same constraint :mod:`multiprocessing` always imposes.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

from repro.errors import ParallelExecutionError

__all__ = ["ParallelExecutor", "resolve_jobs"]

Task = TypeVar("Task")
Result = TypeVar("Result")
Merged = TypeVar("Merged")

#: Chunks submitted per worker: enough that an uneven chunk costs only
#: ``1/chunks_per_worker`` of a worker's share, few enough that
#: per-chunk pickling overhead stays negligible.
_CHUNKS_PER_WORKER = 4

#: Pool rebuilds tolerated after worker deaths before giving up.  A
#: deterministic crash (a bug in the worker) re-crashes immediately, so
#: a small budget suffices for the transient cases (OOM kill, signal).
_MAX_RETRIES = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


class ParallelExecutor:
    """Run pure tasks over a process pool with deterministic merging.

    Args:
        jobs: worker process count; ``1`` runs everything inline (no
            pool, bit-identical results), ``None``/``0`` uses every CPU.
        chunks_per_worker: task-queue granularity for load balancing.
        max_retries: how many times a map whose pool broke (a worker
            died without reporting) is retried on a fresh pool before
            :class:`~repro.errors.ParallelExecutionError` is raised.
            ``0`` restores the old fail-fast behaviour.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        chunks_per_worker: int = _CHUNKS_PER_WORKER,
        max_retries: int = _MAX_RETRIES,
    ) -> None:
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.jobs = resolve_jobs(jobs)
        self._chunks_per_worker = chunks_per_worker
        self._max_retries = max_retries

    # ------------------------------------------------------------------
    # Core primitive: ordered map
    # ------------------------------------------------------------------
    def map(
        self,
        worker: Callable[[Task], Result],
        tasks: Iterable[Task],
    ) -> list[Result]:
        """``[worker(t) for t in tasks]``, possibly across processes.

        Results are returned in task order.  With ``jobs=1`` this *is*
        the list comprehension; with more jobs the tasks are spread over
        a process pool and any worker exception re-raises here.
        """
        tasks = list(tasks)
        workers = min(self.jobs, len(tasks))
        if workers <= 1:
            return [worker(task) for task in tasks]
        chunksize = max(
            1, -(-len(tasks) // (workers * self._chunks_per_worker))
        )
        crashes = 0
        while True:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(worker, tasks, chunksize=chunksize))
            except BrokenProcessPool as exc:
                # Partial results are discarded and the whole map reruns:
                # tasks are pure, so the retry is a bit-identical redo,
                # never a reordering.
                crashes += 1
                if crashes > self._max_retries:
                    raise ParallelExecutionError(
                        f"a worker process died while mapping {len(tasks)} "
                        f"tasks over {workers} workers (chunksize "
                        f"{chunksize}) in {crashes} consecutive attempts; "
                        "giving up"
                    ) from exc

    # ------------------------------------------------------------------
    # Ordered reduce
    # ------------------------------------------------------------------
    def map_reduce(
        self,
        worker: Callable[[Task], Result],
        tasks: Sequence[Task],
        merge: Callable[[Merged, Result], Merged],
        initial: Merged,
    ) -> Merged:
        """Map ``worker`` over ``tasks`` and fold results in task order.

        ``merge`` is applied left-to-right over the *ordered* results,
        so as long as the serial computation is itself a left fold over
        the same partition, the parallel result is identical — witness
        selection, first-found semantics, and accumulated counts all
        come out the same.
        """
        merged = initial
        for result in self.map(worker, tasks):
            merged = merge(merged, result)
        return merged
