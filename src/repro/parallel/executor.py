"""Deterministic process-level parallelism for schedule-space sweeps.

The consistency-checking sweeps this repo runs (class census, acceptance
and containment sweeps, protocol-comparison simulations) are
embarrassingly parallel once the work is partitioned deterministically:
every task is a pure function of picklable inputs, and the merged result
must not depend on worker timing.  :class:`ParallelExecutor` provides
exactly that discipline:

* **warm persistent pools** — worker processes are started once per
  worker count and kept alive across maps, chunks, and whole sweeps;
  each pool build installs the :mod:`repro.parallel.registry` context
  snapshot through the initializer, so sweep inputs cross the process
  boundary once per pool, never per task.  A pool is rebuilt only when
  the registry gained contexts its workers have not seen;
* **chunked work queue** — tasks are submitted in fixed-size chunks
  (several per worker, so stragglers rebalance) to the pool;
* **ordered reduce** — results are folded in *task order* no matter
  which worker finished first, so a parallel run is a reassociation of
  the serial fold, not a reordering;
* **bounded crash retry** — a worker that dies without reporting (hard
  crash, OOM kill) no longer aborts the sweep: the broken pool is
  discarded, the partial results with it, and the whole map is retried
  on a fresh pool up to ``max_retries`` times (tasks are pure, so a
  rerun is bit-identical).  Only when the retry budget is exhausted
  does :class:`~repro.errors.ParallelExecutionError` surface;
  exceptions *raised* by worker code propagate unchanged and
  immediately, exactly as they would serially (and leave the warm pool
  healthy);
* **serial fallback** — ``jobs=1`` (the default) never touches
  :mod:`multiprocessing`: the worker runs inline in submission order,
  so results are bit-identical and debuggers/profilers/coverage see
  straight-line code.

Workers must be module-level callables and tasks picklable values —
the same constraint :mod:`multiprocessing` always imposes.
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

from repro.errors import ParallelExecutionError
from repro.parallel import registry

__all__ = [
    "ParallelExecutor",
    "plan_block_count",
    "resolve_jobs",
    "shutdown_pools",
]

Task = TypeVar("Task")
Result = TypeVar("Result")
Merged = TypeVar("Merged")

#: Chunks submitted per worker: enough that an uneven chunk costs only
#: ``1/chunks_per_worker`` of a worker's share, few enough that
#: per-chunk submission overhead stays negligible.
_CHUNKS_PER_WORKER = 4

#: Pool rebuilds tolerated after worker deaths before giving up.  A
#: deterministic crash (a bug in the worker) re-crashes immediately, so
#: a small budget suffices for the transient cases (OOM kill, signal).
_MAX_RETRIES = 2

#: Minimum per-block task count for rank-space sweeps.  A rank costs
#: ~0.2 ms to classify, so a 256-rank block (~50 ms) comfortably
#: amortizes chunk submission; sweeps smaller than one block run
#: inline and never pay pool overhead at all.
MIN_RANK_BLOCK = 256

#: Test-only fault hook: when this environment variable names a path,
#: a starting worker whose marker file does not exist yet creates it
#: and dies immediately — one injected crash per marker, letting tests
#: drive the retry path deterministically through a real pool.
CRASH_ONCE_ENV = "REPRO_PARALLEL_CRASH_ONCE"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def plan_block_count(
    population: int,
    workers: int,
    *,
    min_block: int = MIN_RANK_BLOCK,
    chunks_per_worker: int = _CHUNKS_PER_WORKER,
) -> int:
    """Number of contiguous blocks to split ``population`` tasks into.

    Blocks per worker are capped (load balancing needs slack, not
    confetti) and every block keeps at least ``min_block`` tasks so
    tiny sweeps collapse to one block — the caller's signal to run
    inline and skip the pool entirely.
    """
    if population <= 0:
        return 0
    if min_block < 1:
        raise ValueError("min_block must be at least 1")
    by_size = -(-population // min_block)  # ceil
    return max(1, min(workers * chunks_per_worker, by_size))


# ----------------------------------------------------------------------
# Warm pool cache
# ----------------------------------------------------------------------
#: worker count -> (pool, registry version it was initialized with).
_POOLS: dict[int, tuple[ProcessPoolExecutor, int]] = {}


def _worker_init(blob: bytes) -> None:
    """Per-process pool initializer: crash hook, then context install."""
    marker = os.environ.get(CRASH_ONCE_ENV)
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(23)
    registry.install(blob)


def _warm_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent pool for ``workers``, rebuilt only when stale.

    Stale means the context registry changed since the pool's workers
    were initialized — the one case where state must cross the process
    boundary again.  Rebuilds ship the full snapshot once; maps never
    ship contexts.
    """
    current = registry.version()
    entry = _POOLS.get(workers)
    if entry is not None:
        pool, seen = entry
        if seen == current:
            return pool
        pool.shutdown(wait=False, cancel_futures=True)
        del _POOLS[workers]
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(registry.snapshot(),),
    )
    _POOLS[workers] = (pool, current)
    return pool


def _discard_pool(workers: int) -> None:
    """Drop a broken pool so the next map builds a fresh one."""
    entry = _POOLS.pop(workers, None)
    if entry is not None:
        entry[0].shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every warm pool (tests, drain paths, interpreter exit).

    Idempotent and safe to call from signal handlers: each pool is
    atomically *removed* from the cache (``dict.popitem`` is a single
    bytecode-level operation under the GIL) before being shut down, so a
    reentrant call — a SIGTERM handler firing while atexit is already
    mid-shutdown, or two drain paths racing — sees an empty cache or a
    disjoint remainder, never the same pool twice.  Repeated calls are
    no-ops.
    """
    while _POOLS:
        try:
            _workers, (pool, _version) = _POOLS.popitem()
        except KeyError:  # pragma: no cover - reentrant caller drained it
            break
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


class ParallelExecutor:
    """Run pure tasks over a warm process pool with deterministic merging.

    Args:
        jobs: worker process count; ``1`` runs everything inline (no
            pool, bit-identical results), ``None``/``0`` uses every CPU.
        chunks_per_worker: task-queue granularity for load balancing.
        max_retries: how many times a map whose pool broke (a worker
            died without reporting) is retried on a fresh pool before
            :class:`~repro.errors.ParallelExecutionError` is raised.
            ``0`` restores the old fail-fast behaviour.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        *,
        chunks_per_worker: int = _CHUNKS_PER_WORKER,
        max_retries: int = _MAX_RETRIES,
    ) -> None:
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.jobs = resolve_jobs(jobs)
        self._chunks_per_worker = chunks_per_worker
        self._max_retries = max_retries

    # ------------------------------------------------------------------
    # Core primitive: ordered map
    # ------------------------------------------------------------------
    def map(
        self,
        worker: Callable[[Task], Result],
        tasks: Iterable[Task],
    ) -> list[Result]:
        """``[worker(t) for t in tasks]``, possibly across processes.

        Results are returned in task order.  With ``jobs=1`` this *is*
        the list comprehension; with more jobs the tasks are spread over
        the warm process pool and any worker exception re-raises here.
        """
        tasks = list(tasks)
        workers = min(self.jobs, len(tasks))
        if workers <= 1:
            return [worker(task) for task in tasks]
        chunksize = max(
            1, -(-len(tasks) // (workers * self._chunks_per_worker))
        )
        crashes = 0
        while True:
            pool = _warm_pool(self.jobs)
            try:
                return list(pool.map(worker, tasks, chunksize=chunksize))
            except BrokenProcessPool as exc:
                # Partial results are discarded and the whole map reruns
                # on a fresh pool: tasks are pure, so the retry is a
                # bit-identical redo, never a reordering.
                _discard_pool(self.jobs)
                crashes += 1
                if crashes > self._max_retries:
                    raise ParallelExecutionError(
                        f"a worker process died while mapping {len(tasks)} "
                        f"tasks over {workers} workers (chunksize "
                        f"{chunksize}) in {crashes} consecutive attempts; "
                        "giving up"
                    ) from exc

    # ------------------------------------------------------------------
    # Ordered reduce
    # ------------------------------------------------------------------
    def map_reduce(
        self,
        worker: Callable[[Task], Result],
        tasks: Sequence[Task],
        merge: Callable[[Merged, Result], Merged],
        initial: Merged,
    ) -> Merged:
        """Map ``worker`` over ``tasks`` and fold results in task order.

        ``merge`` is applied left-to-right over the *ordered* results,
        so as long as the serial computation is itself a left fold over
        the same partition, the parallel result is identical — witness
        selection, first-found semantics, and accumulated counts all
        come out the same.
        """
        merged = initial
        for result in self.map(worker, tasks):
            merged = merge(merged, result)
        return merged
