"""Certified relative locking — the lock-based protocol the paper
announces as future work.

Section 5 closes with: "The next step, in traditional databases was the
development of more efficient locking based protocols ... We are
currently developing such efficient, lock based protocols for
recognizing relatively serializable executions."  This module builds a
concrete such protocol, positioned (as the paper positions relative
atomicity itself) as a generalization of altruistic locking:

* **base**: strict two-phase locking (S/X locks, wait on conflict,
  waits-for deadlock detection, abort the requester on a cycle);
* **per-observer donation**: when transaction ``Ti`` finishes executing
  position ``p`` and position ``p + 1`` is an atomic-unit boundary of
  ``Atomicity(Ti, Tj)``, every held object whose *last use has passed*
  is donated **to Tj specifically** — ``Tj`` may acquire it even though
  ``Ti`` still formally holds it.  This is what admits the non-conflict-
  serializable interleavings the relaxed model exists for (the paper's
  ``Sra`` is granted operation by operation; see the tests);
* **open-unit containment**: a borrower indebted to ``Ti`` may not
  acquire an object that ``Ti`` accesses inside its currently open
  atomic unit relative to the borrower, unless donated — keeping the
  borrower out of unit interiors it could get trapped in;
* **RSG certification**: each lock-admissible operation is additionally
  certified against the incremental relative serialization graph
  (:class:`~repro.protocols.certifier.RsgCertifier`) and aborts if it
  would close a cycle.

Why the certification step is genuinely necessary (and not an
implementation shortcut): purely local locking rules cannot see
*unit-closure* dependencies through third transactions.  Concretely, a
dependency ``d -> b`` created by a donation adds the push-forward arc
``PushForward(d, T_b) -> b`` for *every* pair of transactions related to
``d`` and ``b`` through conflicts — including pairs whose atomic units
neither the donor nor the borrower can observe locally.  Randomized
search finds real instances where every local rule we tried (full
open-unit blocking, wake containment, transitivity of debts) still
admits an RSG cycle built from two donations and an unrelated absolute
unit.  The paper leaves lock-based protocols as future work precisely
because of this gap; certification closes it while the locking layer
still provides the blocking discipline (waits instead of aborts for
plain conflicts) that distinguishes this protocol from pure RSGT.

Like all locking protocols (the paper's analogy: two-phase locking
recognizes a subset of the conflict serializable schedules), the locking
layer restricts which relatively serializable histories are reachable;
certification guarantees nothing outside the class ever commits.  Every
committed history is re-verified against the offline RSG test in the
test suite across randomized workloads and specifications.
"""

from __future__ import annotations

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.errors import ProtocolError
from repro.graphs.digraph import DiGraph
from repro.obs.bus import TraceBus
from repro.obs.events import Reason
from repro.protocols.base import Outcome, Scheduler
from repro.protocols.certifier import RsgCertifier
from repro.protocols.locks import LockMode, LockTable

__all__ = ["RelativeLockingScheduler"]


class RelativeLockingScheduler(Scheduler):
    """Strict 2PL with atomic-unit-boundary donation.

    Args:
        spec: the relative atomicity specification covering every
            transaction that will be admitted.  With an all-absolute
            spec the only boundary is end-of-transaction, so the
            protocol degenerates to strict 2PL exactly.
    """

    name = "relative-locking"

    def __init__(self, spec: RelativeAtomicitySpec) -> None:
        super().__init__()
        self._spec = spec
        self._certifier = RsgCertifier(spec)
        self._locks = LockTable()
        self._waiting_on: dict[int, set[int]] = {}
        # Static per-transaction facts.
        self._last_use: dict[int, dict[str, int]] = {}
        self._access_set: dict[int, frozenset[str]] = {}
        # (holder, object) -> set of observer tx ids the lock is donated
        # to.  Donation is per observer, unlike plain altruistic locking.
        self._donated_to: dict[tuple[int, str], set[int]] = {}
        # borrower -> donors it is indebted to.
        self._indebted_to: dict[int, set[int]] = {}

    @property
    def spec(self) -> RelativeAtomicitySpec:
        """The specification the protocol enforces."""
        return self._spec

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _on_admit(self, transaction: Transaction) -> None:
        if transaction.tx_id not in self._spec.transactions:
            raise ProtocolError(
                f"T{transaction.tx_id} is not covered by the spec"
            )
        if self._spec.transactions[transaction.tx_id] != transaction:
            raise ProtocolError(
                f"declared T{transaction.tx_id} differs from the spec's"
            )
        last_use: dict[str, int] = {}
        for position, op in enumerate(transaction):
            last_use[op.obj] = position
        self._last_use[transaction.tx_id] = last_use
        self._access_set[transaction.tx_id] = transaction.objects
        self._certifier.declare(transaction)

    # ------------------------------------------------------------------
    # The locking policy
    # ------------------------------------------------------------------
    def _decide(self, op: Operation) -> Outcome:
        mode = LockMode.SHARED if op.is_read else LockMode.EXCLUSIVE
        lock_blockers = self._lock_blockers(op, mode)
        containment = self._containment_blockers(op)
        blockers = lock_blockers | containment
        blockers.discard(op.tx)
        if not blockers:
            if not self._certifier.try_certify(op):
                # Monotone: this operation would close an RSG cycle now
                # and forever — restart the requester.
                return Outcome.abort(
                    op.tx, reason=self._certifier.rejection_reason()
                )
            self._waiting_on.pop(op.tx, None)
            self._locks.acquire(op.obj, op.tx, mode)
            self._record_borrowings(op)
            self._donate_at_boundary(op)
            return Outcome.grant()
        self._waiting_on[op.tx] = blockers
        victims = self._deadlocked(op.tx)
        if victims:
            return Outcome.abort(
                *victims,
                reason=Reason(
                    "deadlock",
                    blockers=tuple(sorted(blockers)),
                    detail=f"waits-for cycle through T{op.tx}",
                ),
            )
        if containment - lock_blockers:
            # The wait is (at least partly) the open-unit containment
            # rule: name the donors whose unit interiors are off-limits.
            return Outcome.wait(
                Reason(
                    "unit-containment",
                    blockers=tuple(sorted(blockers)),
                    detail=(
                        "indebted to donors "
                        + ", ".join(
                            f"T{donor}" for donor in sorted(containment)
                        )
                        + " with open atomic units covering "
                        + op.obj
                    ),
                )
            )
        return Outcome.wait(
            Reason("lock-conflict", blockers=tuple(sorted(blockers)))
        )

    def _on_bus_change(self, bus: TraceBus) -> None:
        self._certifier.bus = bus

    def donation_edges(self) -> tuple[tuple[int, str, int], ...]:
        """Per-observer donations: ``(donor, object, observer)``, sorted."""
        return tuple(
            sorted(
                (donor, obj, observer)
                for (donor, obj), observers in self._donated_to.items()
                for observer in observers
            )
        )

    def _rsg_summary(self) -> dict[str, object]:
        return self._certifier.rsg_summary()

    def _lock_blockers(self, op: Operation, mode: LockMode) -> set[int]:
        """Incompatible holders, ignoring locks donated to the requester."""
        blocking: set[int] = set()
        for holder, held in self._locks.holders(op.obj).items():
            if holder == op.tx or self.is_committed(holder):
                continue
            compatible = (
                held is LockMode.SHARED and mode is LockMode.SHARED
            )
            if compatible:
                continue
            if op.tx in self._donated_to.get((holder, op.obj), set()):
                continue
            blocking.add(holder)
        return blocking

    def _containment_blockers(self, op: Operation) -> set[int]:
        """Open-unit containment for indebted borrowers.

        An indebted borrower must not touch an object its donor accesses
        in the donor's *currently open* atomic unit (relative to the
        borrower) unless the donor donated it.  Later-unit objects are
        allowed: the borrower's operations all precede that unit's span.
        """
        blocking: set[int] = set()
        for donor in self._indebted_to.get(op.tx, ()):
            if self.is_committed(donor):
                continue
            if op.obj not in self._access_set[donor]:
                continue
            if op.tx in self._donated_to.get((donor, op.obj), set()):
                continue
            if self._in_open_unit(donor, op.tx, op.obj):
                blocking.add(donor)
        return blocking

    def _in_open_unit(self, donor: int, observer: int, obj: str) -> bool:
        """Whether ``obj`` is a *remaining* access of the donor's open
        unit relative to the observer.

        The open unit is the one containing the donor's next operation.
        A unit that has not started yet is exempt: the borrower's
        operation precedes its span, so it cannot be interleaved with
        it.  This exemption is *not* sound on its own — transitive
        dependency chains through third transactions' units can still
        pin the borrower inside a span (randomized search finds real
        counterexamples) — which is exactly what the RSG certification
        step exists to catch.  The containment rule's job is to keep
        such doomed requests (and the restarts they would cause) rare,
        not to be airtight.
        """
        progress = self.progress(donor)
        program = self.transaction(donor)
        if progress >= len(program):
            return False  # donor finished; commit will release
        view = self._spec.atomicity(donor, observer)
        unit = view.unit_of(progress)
        if progress == unit.start:
            return False  # unit not started: borrower precedes its span
        return any(
            program[index].obj == obj
            for index in range(progress, unit.end + 1)
        )

    def _record_borrowings(self, op: Operation) -> None:
        for holder, _mode in self._locks.holders(op.obj).items():
            if holder == op.tx or self.is_committed(holder):
                continue
            if op.tx in self._donated_to.get((holder, op.obj), set()):
                debts = self._indebted_to.setdefault(op.tx, set())
                debts.add(holder)
                debts.update(self._indebted_to.get(holder, ()))
                debts.discard(op.tx)

    def _donate_at_boundary(self, op: Operation) -> None:
        """After executing ``op``, donate finished objects to every
        observer whose view of ``op.tx`` has a boundary here."""
        tx_id = op.tx
        position = op.index
        program = self.transaction(tx_id)
        at_end = position == len(program) - 1
        last_use = self._last_use[tx_id]
        finished = [
            obj
            for obj in program.objects
            if last_use[obj] <= position
            and self._locks.mode_of(obj, tx_id) is not None
        ]
        if not finished:
            return
        for observer_id in self.admitted_ids:
            if observer_id == tx_id:
                continue
            view = self._spec.atomicity(tx_id, observer_id)
            if at_end or (position + 1) in view.breakpoints:
                for obj in finished:
                    self._donated_to.setdefault(
                        (tx_id, obj), set()
                    ).add(observer_id)

    # ------------------------------------------------------------------
    # Deadlock (same shape as strict 2PL)
    # ------------------------------------------------------------------
    def _deadlocked(self, requester: int) -> tuple[int, ...]:
        graph = DiGraph()
        for waiter, blockers in self._waiting_on.items():
            for blocker in blockers:
                if not self.is_committed(blocker):
                    graph.add_edge(waiter, blocker)
        seen: set[int] = set()
        frontier = list(self._waiting_on.get(requester, ()))
        while frontier:
            node = frontier.pop()
            if node == requester:
                return (requester,)
            if node in seen or node not in graph:
                continue
            seen.add(node)
            frontier.extend(graph.successors(node))
        return ()

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------
    def _forget(self, tx_id: int) -> None:
        self._locks.release_all(tx_id)
        self._waiting_on.pop(tx_id, None)
        self._indebted_to.pop(tx_id, None)
        for key in [k for k in self._donated_to if k[0] == tx_id]:
            del self._donated_to[key]
        for debts in self._indebted_to.values():
            debts.discard(tx_id)

    def _on_finish(self, tx_id: int) -> None:
        # Locks and debts go; the certified history stays (committed
        # operations keep constraining the graph, as Theorem 1 needs).
        self._forget(tx_id)

    def _on_remove(self, tx_id: int) -> None:
        self._forget(tx_id)
        self._certifier.forget(tx_id)
