"""Incremental RSG certification shared by the online protocols.

Maintains the relative serialization graph over the declared operations
of admitted transactions, with D/F/B arcs derived incrementally from the
granted history.  Used by :class:`~repro.protocols.rsgt.RSGTScheduler`
(pure certification) and
:class:`~repro.protocols.relative_locking.RelativeLockingScheduler`
(locking for blocking discipline + certification for soundness).

The heavy lifting lives in :class:`~repro.core.rsg.IncrementalRsg`: a
Pearce–Kelly incrementally ordered graph certifies each granted
operation in amortized sub-linear time (no graph copy, no full DFS), and
``forget`` (restarting a victim) pops the history back to the victim's
first granted operation and replays the survivors — each pop and each
replayed push costs O(#its-arcs).

A key monotonicity fact makes online use sound: granting more operations
only ever *adds* arcs, so an operation whose tentative insertion closes
a cycle will close it forever — certification failures are final and the
requester must abort, never wait.  The same fact makes forget-replay
infallible: the survivors' arc set is a subset of the arcs the graph
already held acyclically, so re-pushing them cannot close a cycle.  A
from-scratch :meth:`RsgCertifier.rebuild` is kept purely as a defensive
fallback (and for tests); :attr:`RsgCertifier.stats` records if it ever
fires.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.rsg import ArcKind, IncrementalRsg
from repro.core.transactions import Transaction
from repro.errors import CycleError
from repro.graphs.incremental import IncrementalDiGraph
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.events import EventKind, Reason
from repro.obs.explain import RejectionWitness, witness_from_certifier

__all__ = ["CertifierStats", "RsgCertifier"]

#: Interned verdict extras: one of these rides on every certification
#: event, so building the nested tuple per call is pure hot-path waste.
_OK_EXTRA = (("ok", True),)
_REJECT_EXTRA = (("ok", False),)


@dataclass
class CertifierStats:
    """Operational counters of one :class:`RsgCertifier`.

    ``fallback_rebuilds`` should stay zero: forget-replay is provably
    infallible (see the module docstring), so a non-zero count means the
    defensive path fired on a bug worth investigating.
    """

    certified: int = 0
    rejected: int = 0
    forgets: int = 0
    replayed: int = 0
    fallback_rebuilds: int = 0


class RsgCertifier:
    """Incremental relative-serialization-graph acyclicity checking.

    Args:
        spec: the relative atomicity specification covering every
            transaction that will be declared.
    """

    def __init__(self, spec: RelativeAtomicitySpec) -> None:
        self._spec = spec
        self._engine = IncrementalRsg(spec)
        self._declared: dict[int, Transaction] = {}
        self._stats = CertifierStats()
        # Memoized (rejection count, Reason) of the last rejection: the
        # reason is read at least twice per rejection (once for the
        # verdict event, once for the abort Outcome), and building the
        # labelled witness is the expensive part of a rejection.
        self._reason_cache: tuple[int, Reason | None] = (0, None)
        #: Trace bus certification events are emitted to (owning
        #: schedulers propagate theirs through ``_on_bus_change``).
        self.bus: TraceBus = NULL_BUS

    @property
    def graph(self) -> IncrementalDiGraph:
        """The current RSG over all declared operations."""
        return self._engine.graph

    @property
    def history(self) -> tuple[Operation, ...]:
        """The certified (granted) operations, in order."""
        return tuple(self._engine.history)

    @property
    def stats(self) -> CertifierStats:
        """Operational counters (grants, rejections, restarts)."""
        return self._stats

    @property
    def last_rejected_cycle(self) -> list[Operation] | None:
        """Witness cycle from the most recent refused certification."""
        return self._engine.last_rejected_cycle

    @property
    def node_capacity(self) -> int:
        """Node-id slots the engine ever allocated (live + freelisted).

        Bounded by the peak concurrently-declared operation count under
        declare/undeclare churn — the freelist reuses released ids.
        """
        return self._engine.node_capacity

    def rsg_summary(self) -> dict[str, object]:
        """A compact census of the in-flight RSG for live introspection.

        ``nodes``/``arcs`` describe the live graph (arc counts keyed by
        I/D/F/B kind), ``history`` the certified-prefix length, and
        ``certified``/``rejected`` the lifetime verdict counters.  Walks
        the flat engine's arc masks — O(arcs), no graph materialization
        — so the ``inspect`` service verb can call it on a busy server.
        """
        arcs = self._engine.arc_census()
        return {
            "nodes": self._engine.node_count,
            "arcs": arcs,
            "arc_total": sum(arcs.values()),
            "history": len(self._engine),
            "certified": self._stats.certified,
            "rejected": self._stats.rejected,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def declare(self, transaction: Transaction) -> None:
        """Add a transaction's vertices and I-arcs to the graph."""
        self._declared[transaction.tx_id] = transaction
        self._engine.add_transaction(transaction)

    def undeclare(self, tx_id: int) -> None:
        """Remove a declared transaction's vertices and I-arcs entirely.

        The inverse of :meth:`declare`, for callers that retire a
        transaction for good (permanent abort) rather than restarting
        it.  The transaction must hold no certified operations — call
        :meth:`forget` first.  The engine returns the freed node ids to
        its freelist, so long campaigns with transaction churn keep the
        graph's node arrays bounded by the live set.
        """
        self._engine.remove_transaction(tx_id)
        del self._declared[tx_id]

    def try_certify(self, op: Operation) -> bool:
        """Tentatively append ``op``; commit the arcs iff still acyclic.

        Returns ``True`` (op recorded) or ``False`` (graph unchanged;
        by monotonicity the op can never be certified in this
        incarnation).
        """
        bus = self.bus
        if bus.active:
            bus.emit(
                EventKind.CERTIFY_ATTEMPT, op.tx, op.label, "certifier"
            )
        if self._engine.try_push(op):
            self._stats.certified += 1
            if bus.active:
                bus.emit(
                    EventKind.CERTIFY_VERDICT,
                    op.tx,
                    op.label,
                    "certifier",
                    None,
                    _OK_EXTRA,
                )
            return True
        self._stats.rejected += 1
        if bus.active:
            bus.emit(
                EventKind.CERTIFY_VERDICT,
                tx=op.tx,
                op=op.label,
                protocol="certifier",
                reason=self.rejection_reason(),
                extra=_REJECT_EXTRA,
            )
        return False

    def labelled_witness(
        self,
    ) -> list[tuple[Operation, Operation, frozenset[ArcKind]]] | None:
        """The last rejection's cycle with per-arc I/D/F/B labels.

        Includes the refused arcs that were rolled back before entering
        the graph (the engine remembers the rejected push's tentative
        arc set).  ``None`` when no rejection has happened.
        """
        return self._engine.labelled_rejection()

    def rejection_reason(self) -> Reason | None:
        """The last rejection as a :class:`~repro.obs.events.Reason`.

        Carries the implicated transaction ids (ascending) and the
        labelled witness cycle; ``None`` when no rejection has happened.
        """
        key, cached = self._reason_cache
        if key == self._stats.rejected:
            return cached
        witness = self.last_rejected_witness
        if witness is None:
            return None
        cycle = self._engine.last_rejected_cycle or []
        blockers = tuple(sorted({op.tx for op in cycle}))
        reason = Reason(
            "rsg-cycle", blockers=blockers, cycle=witness.reason_cycle()
        )
        self._reason_cache = (self._stats.rejected, reason)
        return reason

    @property
    def last_rejected_witness(self) -> RejectionWitness | None:
        """Labelled witness of the most recent refused certification."""
        return witness_from_certifier(self)

    def reset(self) -> None:
        """Forget the entire certified history, keeping declarations.

        The warm-worker reuse hook: a pooled certifier serving repeated
        runs over the same transaction set is reset between runs
        instead of rebuilt, so the engine's allocated node ids and
        buffers survive (see :meth:`IncrementalRsg.reset
        <repro.core.rsg.IncrementalRsg.reset>`).  Counters restart at
        zero — a reset certifier reports the new run's stats only.
        """
        self._engine.reset()
        self._stats = CertifierStats()
        self._reason_cache = (0, None)

    def forget(self, tx_id: int) -> None:
        """Drop a victim's granted operations, keeping everyone else's.

        The transaction stays declared (its vertices and I-arcs remain),
        matching restart semantics.  Implemented as suffix replay: pop
        the history back to the victim's first granted operation, then
        re-push the popped survivors — O(arcs touched), not O(graph).
        """
        self._stats.forgets += 1
        victim_ops = set(self._declared[tx_id].operations)
        history = self._engine.history
        first = next(
            (i for i, op in enumerate(history) if op in victim_ops), None
        )
        if first is None:
            return
        survivors = [op for op in history if op not in victim_ops]
        popped: list[Operation] = []
        while len(self._engine) > first:
            popped.append(self._engine.pop())
        popped.reverse()
        for op in popped:
            if op in victim_ops:
                continue
            if not self._engine.try_push(op):  # pragma: no cover
                # Provably unreachable (survivor arcs are a subset of an
                # acyclic graph's); kept as a defensive fallback.
                self._stats.fallback_rebuilds += 1
                self.rebuild(list(self._declared.values()), survivors)
                return
            self._stats.replayed += 1

    def rebuild(
        self,
        transactions: Iterable[Transaction],
        history: Iterable[Operation],
    ) -> None:
        """Reconstruct certifier state from scratch for the given history.

        Raises:
            CycleError: when the given history is not certifiable (it
                closes an RSG cycle), carrying the witness.
        """
        self._engine = IncrementalRsg(self._spec)
        self._declared = {}
        self._reason_cache = (-1, None)
        for transaction in transactions:
            self.declare(transaction)
        for op in history:
            if not self._engine.try_push(op):
                raise CycleError(
                    f"rebuild history is not certifiable at {op!r}",
                    cycle=self._engine.last_rejected_cycle,
                )
