"""Incremental RSG certification shared by the online protocols.

Maintains the relative serialization graph over the declared operations
of admitted transactions, with D/F/B arcs derived incrementally from the
granted history.  Used by :class:`~repro.protocols.rsgt.RSGTScheduler`
(pure certification) and
:class:`~repro.protocols.relative_locking.RelativeLockingScheduler`
(locking for blocking discipline + certification for soundness).

A key monotonicity fact makes online use sound: granting more operations
only ever *adds* arcs, so an operation whose tentative insertion closes
a cycle will close it forever — certification failures are final and the
requester must abort, never wait.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.rsg import ArcKind
from repro.core.schedules import conflicts
from repro.core.transactions import Transaction
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph

__all__ = ["RsgCertifier"]


class RsgCertifier:
    """Incremental relative-serialization-graph acyclicity checking.

    Args:
        spec: the relative atomicity specification covering every
            transaction that will be declared.
    """

    def __init__(self, spec: RelativeAtomicitySpec) -> None:
        self._spec = spec
        self._graph = DiGraph()
        self._history: list[Operation] = []
        # _anc[k] has bit j set iff history[k] depends on history[j].
        self._anc: list[int] = []
        self._declared: dict[int, Transaction] = {}

    @property
    def graph(self) -> DiGraph:
        """The current RSG over all declared operations."""
        return self._graph

    @property
    def history(self) -> tuple[Operation, ...]:
        """The certified (granted) operations, in order."""
        return tuple(self._history)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def declare(self, transaction: Transaction) -> None:
        """Add a transaction's vertices and I-arcs to the graph."""
        self._declared[transaction.tx_id] = transaction
        ops = transaction.operations
        for op in ops:
            self._graph.add_node(op)
        for first, second in zip(ops, ops[1:]):
            self._graph.add_edge(first, second, label=ArcKind.INTERNAL)

    def try_certify(self, op: Operation) -> bool:
        """Tentatively append ``op``; commit the arcs iff still acyclic.

        Returns ``True`` (op recorded) or ``False`` (graph unchanged;
        by monotonicity the op can never be certified in this
        incarnation).
        """
        anc, arcs = self._arcs_for(op)
        candidate = self._graph.copy()
        for source, target, kind in arcs:
            candidate.add_edge(source, target, label=kind)
        if find_cycle(candidate) is not None:
            return False
        self._graph = candidate
        self._anc.append(anc)
        self._history.append(op)
        return True

    def forget(self, tx_id: int) -> None:
        """Drop a victim's granted operations and rebuild the graph.

        The transaction stays declared (its vertices and I-arcs remain),
        matching restart semantics.
        """
        ops = set(self._declared[tx_id].operations)
        remaining = [op for op in self._history if op not in ops]
        self.rebuild(self._declared.values(), remaining)

    def rebuild(
        self,
        transactions: Iterable[Transaction],
        history: Iterable[Operation],
    ) -> None:
        """Reconstruct graph state from scratch for the given history."""
        self._graph = DiGraph()
        self._declared = {}
        self._history = []
        self._anc = []
        for transaction in transactions:
            self.declare(transaction)
        for op in history:
            anc, arcs = self._arcs_for(op)
            for source, target, kind in arcs:
                self._graph.add_edge(source, target, label=kind)
            self._anc.append(anc)
            self._history.append(op)

    # ------------------------------------------------------------------
    # Arc derivation
    # ------------------------------------------------------------------
    def _arcs_for(
        self, op: Operation
    ) -> tuple[int, list[tuple[Operation, Operation, ArcKind]]]:
        """The ancestor bitset and new D/F/B arcs for appending ``op``."""
        history = self._history
        anc = 0
        for position, earlier in enumerate(history):
            if earlier.tx == op.tx or conflicts(earlier, op):
                anc |= (1 << position) | self._anc[position]
        arcs: list[tuple[Operation, Operation, ArcKind]] = []
        bits = anc
        position = 0
        while bits:
            if bits & 1:
                earlier = history[position]
                if earlier.tx != op.tx:
                    arcs.append((earlier, op, ArcKind.DEPENDENCY))
                    push = self._spec.push_forward(earlier, observer=op.tx)
                    arcs.append((push, op, ArcKind.PUSH_FORWARD))
                    pull = self._spec.pull_backward(op, observer=earlier.tx)
                    arcs.append((earlier, pull, ArcKind.PULL_BACKWARD))
            bits >>= 1
            position += 1
        return anc, arcs
