"""The scheduler interface the simulator drives.

Protocols are *pre-declared-transaction* schedulers: :meth:`Scheduler.
admit` announces a transaction's full operation list before any of its
operations run.  This matches the paper's model — relative atomicity
specifications are given per transaction instance, so the system
legitimately knows each transaction's program (the altruistic baseline
additionally needs declared access sets, and the RSGT protocol needs the
spec's atomic units, both of which are static properties of the declared
program).

Lifecycle, as driven by :mod:`repro.sim`::

    admit(T)           once per transaction (ids stay admitted across
                       restarts; a restart just clears executed state)
    request(op)        -> GRANT (op executed now) | WAIT (retry later)
                       | ABORT (victims must restart)
    finish(tx_id)      the transaction executed its last op; commit it
    remove(tx_id)      forget a victim's executed operations (restart)
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.errors import ProtocolError
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.events import EventKind, Reason

__all__ = ["Decision", "Outcome", "Scheduler"]


class Decision(enum.Enum):
    """What a scheduler says about an operation request."""

    GRANT = "grant"
    WAIT = "wait"
    ABORT = "abort"


#: Trace-event kind emitted for each decision.
_DECISION_EVENTS = {
    Decision.GRANT: EventKind.GRANT,
    Decision.WAIT: EventKind.WAIT,
    Decision.ABORT: EventKind.ABORT,
}

_REQUEST = EventKind.REQUEST


@dataclass(frozen=True)
class Outcome:
    """A scheduling decision plus, for aborts, who must restart.

    Every non-grant outcome carries a machine-readable :class:`~repro.
    obs.events.Reason` naming its cause (the lock conflict, the donor
    debt, the RSG cycle).  The reason is provenance, not identity:
    outcomes compare equal irrespective of it.
    """

    decision: Decision
    victims: tuple[int, ...] = ()
    reason: Reason | None = field(default=None, compare=False)

    @classmethod
    def grant(cls) -> "Outcome":
        return cls(Decision.GRANT)

    @classmethod
    def wait(cls, reason: Reason | None = None) -> "Outcome":
        return cls(Decision.WAIT, reason=reason)

    @classmethod
    def abort(cls, *victims: int, reason: Reason | None = None) -> "Outcome":
        return cls(Decision.ABORT, tuple(victims), reason=reason)


@dataclass
class _AdmittedTransaction:
    """Book-keeping shared by all schedulers."""

    transaction: Transaction
    executed: int = 0  # operations granted so far (in program order)
    committed: bool = False
    restarts: int = 0
    extras: dict = field(default_factory=dict)


class Scheduler(abc.ABC):
    """Base class with the shared admission/progress book-keeping.

    Subclasses implement :meth:`_decide` (policy for the next operation)
    plus the state hooks :meth:`_on_grant`, :meth:`_on_finish`, and
    :meth:`_on_remove`.

    A built-in **deadlock/livelock watchdog** guards every protocol: when
    :attr:`watchdog_threshold` consecutive requests come back WAIT with
    no GRANT in between (the signature of a wait cycle or an all-WAIT
    stall), the next WAIT is converted into an ABORT of a victim — the
    live transaction holding the least progress (fewest granted
    operations, lowest id as tie-break) among those that actually hold
    resources.  Aborting a zero-progress transaction would release
    nothing, so if only zero-progress transactions are live the WAIT
    stands and the simulator's stall guard takes over.  Set
    ``watchdog_threshold`` to ``None`` (class- or instance-level) to
    disable.
    """

    #: Human-readable protocol name (overridden by subclasses).
    name = "abstract"

    #: Consecutive zero-grant WAITs tolerated before a victim is picked.
    #: High enough that normal contention never trips it; fault
    #: campaigns lower it per instance.
    watchdog_threshold: int | None = 256

    def __init__(self) -> None:
        self._admitted: dict[int, _AdmittedTransaction] = {}
        self._history: list[Operation] = []  # granted ops, in grant order
        self._waits_since_grant = 0
        self._watchdog_fires = 0
        self._bus: TraceBus = NULL_BUS

    @property
    def bus(self) -> TraceBus:
        """The trace bus this scheduler emits events to (inert default)."""
        return self._bus

    @bus.setter
    def bus(self, bus: TraceBus) -> None:
        self._bus = bus
        self._on_bus_change(bus)

    def _on_bus_change(self, bus: TraceBus) -> None:
        """Hook for subclasses that own sub-emitters (e.g. a certifier)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def admit(self, transaction: Transaction) -> None:
        """Declare a transaction (full program) before it runs."""
        if transaction.tx_id in self._admitted:
            raise ProtocolError(
                f"T{transaction.tx_id} is already admitted"
            )
        self._admitted[transaction.tx_id] = _AdmittedTransaction(transaction)
        self._on_admit(transaction)

    def request(self, op: Operation) -> Outcome:
        """Ask to execute ``op`` (the requester's next program operation)."""
        state = self._state_of(op.tx)
        if state.committed:
            raise ProtocolError(f"T{op.tx} has already committed")
        expected = state.transaction[state.executed]
        if op != expected:
            raise ProtocolError(
                f"out-of-order request: T{op.tx} must run "
                f"{expected.label} next, got {op.label}"
            )
        bus = self._bus
        # One None check on the prebound dispatch replaces the
        # ``active`` flag here: the same gate, and the traced branch
        # then delivers with a single call (no fan-out loop for the
        # common one-sink case).
        dispatch = bus._dispatch
        if dispatch is not None:
            # Inlined bus.emit: this site and the decision site below
            # run for every request of every traced run, and the two
            # call frames alone are a measurable slice of the <10%
            # tracing budget bench_obs gates.  Must mirror
            # TraceBus.emit's raw-tuple event layout.  The shared
            # fields are hoisted once for both sites.
            tx = op.tx
            label = op.label
            name = self.name
            seq = bus._seq
            bus._seq = seq + 1
            dispatch(
                (seq, bus._tick, _REQUEST, tx, label, name, None, ()),
            )
        outcome = self._decide(op)
        if outcome.decision is Decision.GRANT:
            state.executed += 1
            self._history.append(op)
            self._on_grant(op)
            self._waits_since_grant = 0
        elif outcome.decision is Decision.ABORT:
            # Victims restart, which releases resources: progress enough
            # to reset the stall counter.
            self._waits_since_grant = 0
        else:
            self._waits_since_grant += 1
            if (
                self.watchdog_threshold is not None
                and self._waits_since_grant >= self.watchdog_threshold
            ):
                victim = self._watchdog_victim()
                if victim is not None:
                    self._waits_since_grant = 0
                    self._watchdog_fires += 1
                    reason = Reason(
                        "watchdog",
                        blockers=(victim,),
                        detail=(
                            f"{self.watchdog_threshold} consecutive "
                            "zero-grant WAITs"
                        ),
                    )
                    if dispatch is not None:
                        bus.emit(
                            EventKind.WATCHDOG,
                            tx=op.tx,
                            op=op.label,
                            protocol=self.name,
                            reason=reason,
                        )
                    outcome = Outcome.abort(victim, reason=reason)
        if dispatch is not None:
            # Inlined bus.emit — see the request-event site above.
            extra = (
                (("victims", list(outcome.victims)),)
                if outcome.victims
                else ()
            )
            seq = bus._seq
            bus._seq = seq + 1
            dispatch(
                (
                    seq, bus._tick, _DECISION_EVENTS[outcome.decision],
                    tx, label, name, outcome.reason, extra,
                ),
            )
        return outcome

    def finish(self, tx_id: int) -> None:
        """Commit a transaction that executed all of its operations."""
        state = self._state_of(tx_id)
        if state.executed != len(state.transaction):
            raise ProtocolError(
                f"T{tx_id} cannot commit with "
                f"{len(state.transaction) - state.executed} operations left"
            )
        state.committed = True
        self._on_finish(tx_id)
        if self._bus.active:
            self._bus.emit(
                EventKind.COMMIT, tx=tx_id, protocol=self.name
            )

    def remove(self, tx_id: int) -> None:
        """Forget a victim's executed operations (it will restart)."""
        state = self._state_of(tx_id)
        if state.committed:
            raise ProtocolError(f"cannot remove committed T{tx_id}")
        ops = set(state.transaction.operations[: state.executed])
        if ops:
            self._history = [op for op in self._history if op not in ops]
        state.executed = 0
        state.restarts += 1
        self._on_remove(tx_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def history(self) -> tuple[Operation, ...]:
        """Granted operations of live/committed incarnations, in order."""
        return tuple(self._history)

    @property
    def admitted_ids(self) -> frozenset[int]:
        """Ids of all admitted transactions."""
        return frozenset(self._admitted)

    @property
    def watchdog_fires(self) -> int:
        """How many times the stall watchdog converted a WAIT to ABORT."""
        return self._watchdog_fires

    def _watchdog_victim(self) -> int | None:
        """Deterministic victim choice for the stall watchdog.

        The live transaction with the fewest granted operations among
        those with at least one (lowest id as tie-break) — cheapest to
        redo while still releasing something.
        """
        candidates = [
            (state.executed, tx_id)
            for tx_id, state in self._admitted.items()
            if not state.committed and state.executed > 0
        ]
        if not candidates:
            return None
        return min(candidates)[1]

    def wait_edges(self) -> dict[int, tuple[int, ...]]:
        """The current waits-for edges, waiter -> sorted blocker ids.

        Protocols that track blocking (the lock-based family) record a
        ``_waiting_on`` mapping; pure certification protocols never
        block, so the default is empty.  The simulator uses this to name
        the *blocking* side of a livelock diagnostic.
        """
        waiting = getattr(self, "_waiting_on", None)
        if not waiting:
            return {}
        return {
            waiter: tuple(sorted(blockers))
            for waiter, blockers in sorted(waiting.items())
        }

    def donation_edges(self) -> tuple[tuple[int, str, int], ...]:
        """Live donations as ``(donor, object, beneficiary)`` triples.

        Only the altruistic-locking family donates; the default is
        empty.  The beneficiary is ``None`` when the object is donated
        to the donor's whole wake rather than a specific observer.
        Overrides must return the triples sorted, so the ``inspect``
        service verb renders them deterministically.
        """
        return ()

    def _rsg_summary(self) -> dict[str, object] | None:
        """Census of the in-flight RSG, for protocols that keep one.

        Certification-backed protocols override this to forward
        :meth:`~repro.protocols.certifier.RsgCertifier.rsg_summary`;
        ``None`` means "no graph" and the ``inspect`` snapshot reports
        ``rsg: null``.
        """
        return None

    def snapshot(self) -> dict[str, object]:
        """A point-in-time introspection view of the scheduler.

        The live wait-for/donation state plus an RSG census, shaped for
        JSON: ``waits_for`` is keyed by stringified waiter id (JSON
        objects cannot carry integer keys), donations are rendered as
        ``{"donor", "obj", "to"}`` records.  Read-only and O(live
        state); the service's ``inspect`` verb calls this per tenant.
        """
        live = sum(
            1 for state in self._admitted.values() if not state.committed
        )
        return {
            "protocol": self.name,
            "admitted": len(self._admitted),
            "live": live,
            "committed": len(self._admitted) - live,
            "waits_for": {
                str(waiter): list(blockers)
                for waiter, blockers in self.wait_edges().items()
            },
            "donations": [
                {"donor": donor, "obj": obj, "to": beneficiary}
                for donor, obj, beneficiary in self.donation_edges()
            ],
            "watchdog_fires": self._watchdog_fires,
            "rsg": self._rsg_summary(),
        }

    def progress(self, tx_id: int) -> int:
        """How many operations of ``T{tx_id}`` have been granted."""
        return self._state_of(tx_id).executed

    def is_committed(self, tx_id: int) -> bool:
        """Whether ``T{tx_id}`` has committed."""
        return self._state_of(tx_id).committed

    def transaction(self, tx_id: int) -> Transaction:
        """The declared program of ``T{tx_id}``."""
        return self._state_of(tx_id).transaction

    def _state_of(self, tx_id: int) -> _AdmittedTransaction:
        try:
            return self._admitted[tx_id]
        except KeyError:
            raise ProtocolError(f"T{tx_id} was never admitted") from None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _on_admit(self, transaction: Transaction) -> None:
        """Called after a transaction is admitted (optional hook)."""

    @abc.abstractmethod
    def _decide(self, op: Operation) -> Outcome:
        """The protocol's policy for the next operation of a transaction."""

    def _on_grant(self, op: Operation) -> None:
        """Called after ``op`` was granted and recorded (optional hook)."""

    def _on_finish(self, tx_id: int) -> None:
        """Called after a transaction commits (optional hook)."""

    def _on_remove(self, tx_id: int) -> None:
        """Called after a victim's executed state was dropped (optional)."""
