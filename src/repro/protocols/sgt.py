"""Classical serialization graph testing (SGT) [Bad79, Cas81].

The optimistic baseline: maintain the transaction-level serialization
graph over every granted operation; grant a request iff the conflict
edges it introduces keep the graph acyclic, otherwise abort the requester.
Committed transactions' nodes and operations are retained (a committed
transaction can still be the middle of a cycle with two live ones), which
is the textbook-correct, garbage-collection-free formulation — fine for
bounded simulations.

SGT certifies conflict serializability; the test suite asserts that every
final committed history it produces passes the offline test.
"""

from __future__ import annotations

from repro.core.operations import Operation
from repro.core.schedules import conflicts
from repro.core.transactions import Transaction
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph
from repro.obs.events import Reason
from repro.protocols.base import Outcome, Scheduler

__all__ = ["SGTScheduler"]


class SGTScheduler(Scheduler):
    """Serialization graph testing: abort whichever request closes a cycle."""

    name = "sgt"

    def __init__(self) -> None:
        super().__init__()
        self._graph = DiGraph()

    def _on_admit(self, transaction: Transaction) -> None:
        self._graph.add_node(transaction.tx_id)

    def _decide(self, op: Operation) -> Outcome:
        new_edges = [
            (earlier.tx, op.tx)
            for earlier in self._history
            if earlier.tx != op.tx and conflicts(earlier, op)
        ]
        candidate = self._graph.copy()
        for source, target in new_edges:
            candidate.add_edge(source, target)
        cycle = find_cycle(candidate)
        if cycle is not None:
            nodes = list(cycle)
            if nodes and nodes[0] != nodes[-1]:
                nodes.append(nodes[0])
            return Outcome.abort(
                op.tx,
                reason=Reason(
                    "sg-cycle",
                    blockers=tuple(sorted(set(cycle))),
                    cycle=tuple((f"T{node}", "") for node in nodes),
                ),
            )
        self._graph = candidate
        return Outcome.grant()

    def _on_remove(self, tx_id: int) -> None:
        # Drop the victim's node (and its edges); re-add it bare so the
        # restarted incarnation starts clean.
        self._graph.remove_node(tx_id)
        self._graph.add_node(tx_id)
