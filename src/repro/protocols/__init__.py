"""Online concurrency-control protocols.

The paper sketches (Section 3) that the relative serialization graph "can
be used as the basis for a concurrency control protocol similar to
serialization graph testing".  This package implements that protocol and
the baselines it is compared against in experiment E10:

* :mod:`~repro.protocols.two_phase` — strict two-phase locking with
  waits-for deadlock detection (the commercial default);
* :mod:`~repro.protocols.sgt` — classical serialization graph testing
  (certifies conflict serializability);
* :mod:`~repro.protocols.rsgt` — *relative* serialization graph testing
  (certifies relative serializability; the paper's protocol);
* :mod:`~repro.protocols.altruistic` — simplified altruistic locking
  [SGMA87], the long-lived-transaction technique the paper positions
  relative atomicity as generalizing;
* :mod:`~repro.protocols.relative_locking` — certified relative locking:
  the lock-based protocol the paper announces as future work (strict 2PL
  + atomic-unit-boundary donation + RSG certification).

All protocols share the :class:`~repro.protocols.base.Scheduler`
interface and are driven by the simulator in :mod:`repro.sim`.
"""

from repro.protocols.altruistic import AltruisticLockingScheduler
from repro.protocols.base import Decision, Outcome, Scheduler
from repro.protocols.certifier import RsgCertifier
from repro.protocols.relative_locking import RelativeLockingScheduler
from repro.protocols.rsgt import RSGTScheduler
from repro.protocols.sgt import SGTScheduler
from repro.protocols.two_phase import TwoPhaseLockingScheduler

__all__ = [
    "Decision",
    "Outcome",
    "PROTOCOL_NAMES",
    "Scheduler",
    "TwoPhaseLockingScheduler",
    "SGTScheduler",
    "RSGTScheduler",
    "RelativeLockingScheduler",
    "AltruisticLockingScheduler",
    "RsgCertifier",
    "make_scheduler",
]

#: Canonical protocol names, in the E10 comparison order.  Names (not
#: scheduler instances or factories) are what crosses process
#: boundaries in the parallel simulation driver.
PROTOCOL_NAMES: tuple[str, ...] = (
    "2pl",
    "sgt",
    "altruistic",
    "rel-locking",
    "rsgt",
)


def make_scheduler(name: str, spec=None) -> Scheduler:
    """Construct a fresh scheduler by canonical protocol name.

    The spec-aware protocols (``rel-locking``, ``rsgt``) require a
    :class:`~repro.core.atomicity.RelativeAtomicitySpec`; the classical
    ones ignore ``spec``.  ``strict-2pl`` (the E10 display name) is an
    accepted alias for ``2pl``.
    """
    if name in ("2pl", "strict-2pl"):
        return TwoPhaseLockingScheduler()
    if name == "sgt":
        return SGTScheduler()
    if name == "altruistic":
        return AltruisticLockingScheduler()
    if name == "rel-locking":
        if spec is None:
            raise ValueError("rel-locking requires an atomicity spec")
        return RelativeLockingScheduler(spec)
    if name == "rsgt":
        if spec is None:
            raise ValueError("rsgt requires an atomicity spec")
        return RSGTScheduler(spec)
    raise ValueError(
        f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}"
    )
