"""Online concurrency-control protocols.

The paper sketches (Section 3) that the relative serialization graph "can
be used as the basis for a concurrency control protocol similar to
serialization graph testing".  This package implements that protocol and
the baselines it is compared against in experiment E10:

* :mod:`~repro.protocols.two_phase` — strict two-phase locking with
  waits-for deadlock detection (the commercial default);
* :mod:`~repro.protocols.sgt` — classical serialization graph testing
  (certifies conflict serializability);
* :mod:`~repro.protocols.rsgt` — *relative* serialization graph testing
  (certifies relative serializability; the paper's protocol);
* :mod:`~repro.protocols.altruistic` — simplified altruistic locking
  [SGMA87], the long-lived-transaction technique the paper positions
  relative atomicity as generalizing;
* :mod:`~repro.protocols.relative_locking` — certified relative locking:
  the lock-based protocol the paper announces as future work (strict 2PL
  + atomic-unit-boundary donation + RSG certification).

All protocols share the :class:`~repro.protocols.base.Scheduler`
interface and are driven by the simulator in :mod:`repro.sim`.
"""

from repro.protocols.altruistic import AltruisticLockingScheduler
from repro.protocols.base import Decision, Outcome, Scheduler
from repro.protocols.certifier import RsgCertifier
from repro.protocols.relative_locking import RelativeLockingScheduler
from repro.protocols.rsgt import RSGTScheduler
from repro.protocols.sgt import SGTScheduler
from repro.protocols.two_phase import TwoPhaseLockingScheduler

__all__ = [
    "Decision",
    "Outcome",
    "Scheduler",
    "TwoPhaseLockingScheduler",
    "SGTScheduler",
    "RSGTScheduler",
    "RelativeLockingScheduler",
    "AltruisticLockingScheduler",
    "RsgCertifier",
]
