"""Strict two-phase locking with waits-for deadlock detection.

The commercial baseline: a transaction takes a shared lock before each
read and an exclusive lock before each write, holds everything until
commit, and waits when blocked.  A waits-for cycle aborts the requester
(the transaction whose request closed the cycle).

Strict 2PL certifies conflict serializability, so any final committed
history it produces must pass
:func:`repro.core.serializability.is_conflict_serializable` — the test
suite asserts exactly that over many simulated runs.
"""

from __future__ import annotations

from repro.core.operations import Operation
from repro.graphs.digraph import DiGraph
from repro.obs.events import Reason
from repro.protocols.base import Outcome, Scheduler
from repro.protocols.locks import LockMode, LockTable

__all__ = ["TwoPhaseLockingScheduler"]


class TwoPhaseLockingScheduler(Scheduler):
    """Strict 2PL: lock per operation, hold to commit, abort on deadlock."""

    name = "strict-2pl"

    def __init__(self) -> None:
        super().__init__()
        self._locks = LockTable()
        self._waiting_on: dict[int, set[int]] = {}

    def _decide(self, op: Operation) -> Outcome:
        mode = LockMode.SHARED if op.is_read else LockMode.EXCLUSIVE
        blockers = self._locks.blockers(op.obj, op.tx, mode)
        if not blockers:
            self._waiting_on.pop(op.tx, None)
            self._locks.acquire(op.obj, op.tx, mode)
            return Outcome.grant()
        self._waiting_on[op.tx] = blockers
        victims = self._deadlocked(op.tx)
        if victims:
            return Outcome.abort(
                *victims,
                reason=Reason(
                    "deadlock",
                    blockers=tuple(sorted(blockers)),
                    detail=f"waits-for cycle through T{op.tx}",
                ),
            )
        return Outcome.wait(
            Reason("lock-conflict", blockers=tuple(sorted(blockers)))
        )

    def _deadlocked(self, requester: int) -> tuple[int, ...]:
        """Abort the requester when its wait edge closes a cycle."""
        graph = DiGraph()
        for waiter, blockers in self._waiting_on.items():
            for blocker in blockers:
                # Entries recorded on earlier ticks may point at since-
                # committed transactions; those edges are stale.
                if not self.is_committed(blocker):
                    graph.add_edge(waiter, blocker)
        seen: set[int] = set()
        frontier = list(self._waiting_on.get(requester, ()))
        while frontier:
            node = frontier.pop()
            if node == requester:
                return (requester,)
            if node in seen or node not in graph:
                continue
            seen.add(node)
            frontier.extend(graph.successors(node))
        return ()

    def _on_finish(self, tx_id: int) -> None:
        self._locks.release_all(tx_id)
        self._waiting_on.pop(tx_id, None)

    def _on_remove(self, tx_id: int) -> None:
        self._locks.release_all(tx_id)
        self._waiting_on.pop(tx_id, None)
