"""Simplified altruistic locking [SGMA87].

Altruistic locking extends 2PL for long-lived transactions: when a
transaction will never access an object again, it *donates* the lock —
still formally held until commit, but other transactions may acquire the
object and run "in the donor's wake".

This implementation follows the protocol's two load-bearing rules in a
simplified, pre-declared form (the full paper's recovery machinery is out
of scope; see DESIGN.md's substitution notes):

* **donate after last use** — access sets are declared on admission, so
  the scheduler donates an object the moment its holder executes its
  final operation on it;
* **wake containment** — a transaction that has acquired a donated
  object of a donor is *indebted* to that donor: it may not touch any
  object in the donor's declared access set unless the donor has already
  donated it.  (This is what makes the donor/borrower serialization
  order consistent: the borrower always sits entirely "behind" the
  donor.)
* **wake taint** — objects accessed by an indebted transaction carry
  that wake with them: a later transaction whose access *conflicts*
  with an in-wake access joins the donor's wake too (it serializes
  after the borrower, hence after the donor), so it must pass the same
  containment check or wait for the donor.  Without this a borrower
  could commit, launder its in-wake write through the lock table, and
  let a third transaction read the wake data while racing *ahead* of
  the donor elsewhere — a serialization cycle the first two rules
  cannot see (pinned as a regression test);
* **wake acyclicity** — a donation is unusable when the donor is itself
  (through any chain of debts, even via committed middlemen) in the
  requester's wake: borrowing it would seat the requester both before
  and after the donor.  Fault campaigns flushed this one out: a ring of
  pairwise-legal donations (T1 donates to T2, T2 to T3, T3 back to T1)
  used to commit a cyclic history.  The guard survives the chain's
  commits: debts and taints of committed transactions are kept, and a
  creditor left waiting only on committed blockers is restarted (that
  wait could never clear — the conflicting accesses are already pinned
  ahead of it).

Deadlock handling is the same waits-for check as plain 2PL.  The test
suite asserts every final committed history is conflict serializable.
"""

from __future__ import annotations

from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.graphs.digraph import DiGraph
from repro.obs.events import Reason
from repro.protocols.base import Outcome, Scheduler
from repro.protocols.locks import LockMode, LockTable

__all__ = ["AltruisticLockingScheduler"]


class AltruisticLockingScheduler(Scheduler):
    """2PL with donate-after-last-use and wake containment."""

    name = "altruistic"

    def __init__(self) -> None:
        super().__init__()
        self._locks = LockTable()
        self._waiting_on: dict[int, set[int]] = {}
        # Static, from declared programs:
        self._last_use: dict[int, dict[str, int]] = {}
        self._access_set: dict[int, frozenset[str]] = {}
        # Dynamic wake state: borrower -> donors it is indebted to.
        self._indebted_to: dict[int, set[int]] = {}
        # Wake taint: obj -> donor -> {contributor: strongest access mode}.
        # Records which objects were touched by transactions indebted to a
        # still-active donor; survives the contributor's commit, cleared
        # when the donor retires or the contributor aborts.
        self._taint: dict[str, dict[int, dict[int, LockMode]]] = {}

    def _on_admit(self, transaction: Transaction) -> None:
        last_use: dict[str, int] = {}
        for position, op in enumerate(transaction):
            last_use[op.obj] = position
        self._last_use[transaction.tx_id] = last_use
        self._access_set[transaction.tx_id] = transaction.objects

    def _decide(self, op: Operation) -> Outcome:
        mode = LockMode.SHARED if op.is_read else LockMode.EXCLUSIVE
        donors = frozenset(self._usable_donors(op))
        blockers = self._locks.blockers(
            op.obj, op.tx, mode, ignore_donated_of=donors
        )
        blockers.update(self._wake_blockers(op))
        blockers.update(self._taint_blockers(op))
        blockers.discard(op.tx)
        if not blockers:
            self._waiting_on.pop(op.tx, None)
            self._locks.acquire(op.obj, op.tx, mode)
            self._record_borrowings(op)
            self._join_tainted_wakes(op)
            self._record_taint(op)
            self._maybe_donate(op)
            return Outcome.grant()
        sorted_blockers = tuple(sorted(blockers))
        if all(self.is_committed(blocker) for blocker in blockers):
            # Every blocker is committed, so the wait can never clear:
            # the conflicting accesses are pinned in the serialization
            # order ahead of this transaction (it is a creditor of a
            # committed donor).  Restart to serialize after them.
            return Outcome.abort(
                op.tx,
                reason=Reason(
                    "committed-blockers",
                    blockers=sorted_blockers,
                    detail="wait can never clear: all blockers committed",
                ),
            )
        self._waiting_on[op.tx] = blockers
        victims = self._deadlocked(op.tx)
        if victims:
            return Outcome.abort(
                *victims,
                reason=Reason(
                    "deadlock",
                    blockers=sorted_blockers,
                    detail=f"waits-for cycle through T{op.tx}",
                ),
            )
        return Outcome.wait(
            Reason("lock-conflict", blockers=sorted_blockers)
        )

    # ------------------------------------------------------------------
    # Altruistic rules
    # ------------------------------------------------------------------
    def _usable_donors(self, op: Operation) -> set[int]:
        """Donors whose donated lock on ``op.obj`` the requester may use.

        A donated lock is usable only when the requester is (and has
        been) entirely *in the donor's wake*: every object the requester
        has touched so far that the donor declared must already have been
        donated by the donor.  Without this check a borrower that raced
        ahead of the donor on some object would serialize both before and
        after it (the [SGMA87] wake rule).  Borrowing makes the requester
        indebted (recorded on grant).
        """
        donors = set()
        for holder, _mode in self._locks.holders(op.obj).items():
            if holder == op.tx or self.is_committed(holder):
                continue
            if (
                self._locks.has_donated(op.obj, holder)
                and self._in_wake(op.tx, holder)
                and op.tx not in self._wake_creditors(holder)
            ):
                donors.add(holder)
        return donors

    def _wake_creditors(self, donor: int) -> set[int]:
        """Everyone the donor is transitively indebted to.

        Borrowing from a donor that is itself (through any chain of
        donations) in the requester's wake would make the requester
        serialize both before and after the donor — the indebtedness
        relation must stay acyclic, so such a donation is unusable and
        the holder blocks like an ordinary lock.  Debt edges are followed
        through committed transactions too: commit pins the serialization
        order, it does not dissolve it.
        """
        seen: set[int] = set()
        frontier = list(self._indebted_to.get(donor, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._indebted_to.get(node, ()))
        return seen

    def _in_wake(self, requester: int, donor: int) -> bool:
        """Whether the requester's executed prefix lies in the donor's wake."""
        executed = self.transaction(requester).operations[
            : self.progress(requester)
        ]
        donor_objects = self._access_set[donor]
        for past in executed:
            if past.obj in donor_objects and not self._locks.has_donated(
                past.obj, donor
            ):
                return False
        return True

    def _wake_blockers(self, op: Operation) -> set[int]:
        """Wake containment: indebted transactions must not touch a
        donor's declared-but-undonated objects."""
        blocking = set()
        for donor in self._indebted_to.get(op.tx, ()):
            if self.is_committed(donor):
                continue
            if op.obj not in self._access_set[donor]:
                continue
            if not self._locks.has_donated(op.obj, donor):
                blocking.add(donor)
        return blocking

    def _conflicting_taint_donors(self, op: Operation) -> set[int]:
        """Active donors whose wake ``op`` would join through tainted data.

        A donor is relevant when some transaction indebted to it accessed
        ``op.obj`` in a mode conflicting with this request: the requester
        then serializes after that in-wake access, hence after the donor.
        """
        donors = set()
        for donor, contributors in self._taint.get(op.obj, {}).items():
            if donor == op.tx:
                continue
            if self.is_committed(donor) and op.tx not in self._wake_creditors(
                donor
            ):
                # A committed donor's wake is over for everyone *except*
                # its creditors: they are pinned before it in the
                # serialization order, so serializing after its wake data
                # would still close a cycle.
                continue
            for contributor, held in contributors.items():
                if contributor == op.tx:
                    continue
                if held is LockMode.EXCLUSIVE or op.is_write:
                    donors.add(donor)
                    break
        return donors

    def _taint_blockers(self, op: Operation) -> set[int]:
        """Donors whose tainted wake the requester may not join yet."""
        return {
            donor
            for donor in self._conflicting_taint_donors(op)
            if not self._in_wake(op.tx, donor)
            or op.tx in self._wake_creditors(donor)
        }

    def _join_tainted_wakes(self, op: Operation) -> None:
        """Inherit debts to every donor whose tainted data ``op`` touches
        (the grant already verified the requester is in those wakes)."""
        donors = self._conflicting_taint_donors(op)
        if donors:
            debts = self._indebted_to.setdefault(op.tx, set())
            debts.update(donors)
            debts.discard(op.tx)

    def _record_taint(self, op: Operation) -> None:
        """Mark ``op.obj`` as carrying the wakes ``op.tx`` is in."""
        mode = LockMode.EXCLUSIVE if op.is_write else LockMode.SHARED
        for donor in self._indebted_to.get(op.tx, ()):
            if self.is_committed(donor):
                continue
            contributors = self._taint.setdefault(op.obj, {}).setdefault(
                donor, {}
            )
            if contributors.get(op.tx) is not LockMode.EXCLUSIVE:
                contributors[op.tx] = mode

    def _record_borrowings(self, op: Operation) -> None:
        for holder, _mode in self._locks.holders(op.obj).items():
            if holder == op.tx or self.is_committed(holder):
                continue
            if self._locks.has_donated(op.obj, holder):
                debts = self._indebted_to.setdefault(op.tx, set())
                debts.add(holder)
                # Wakes are transitive in [SGMA87]: borrowing from a
                # transaction that is itself in a wake places the borrower
                # in the outer wake too.
                debts.update(self._indebted_to.get(holder, ()))
                debts.discard(op.tx)

    def _maybe_donate(self, op: Operation) -> None:
        """Donate the object if this was the holder's last use of it."""
        if self._last_use[op.tx].get(op.obj) == op.index:
            self._locks.donate(op.obj, op.tx)

    def donation_edges(self) -> tuple[tuple[int, str, None], ...]:
        """Wake donations: ``(donor, object, None)`` — donated to anyone
        in the donor's wake, so there is no single beneficiary."""
        return tuple(
            (donor, obj, None) for donor, obj in self._locks.donated_items()
        )

    # ------------------------------------------------------------------
    # Deadlock (same shape as strict 2PL)
    # ------------------------------------------------------------------
    def _deadlocked(self, requester: int) -> tuple[int, ...]:
        graph = DiGraph()
        for waiter, blockers in self._waiting_on.items():
            for blocker in blockers:
                if not self.is_committed(blocker):
                    graph.add_edge(waiter, blocker)
        seen: set[int] = set()
        frontier = list(self._waiting_on.get(requester, ()))
        while frontier:
            node = frontier.pop()
            if node == requester:
                return (requester,)
            if node in seen or node not in graph:
                continue
            seen.add(node)
            frontier.extend(graph.successors(node))
        return ()

    def _on_finish(self, tx_id: int) -> None:
        self._locks.release_all(tx_id)
        self._waiting_on.pop(tx_id, None)
        # The committed transaction's debt edges *and* the taints
        # anchored to it are deliberately kept: commit pins its place in
        # the serialization order, and the wake acyclicity check
        # (:meth:`_wake_creditors` via :meth:`_conflicting_taint_donors`)
        # must still see chains that pass through committed middlemen —
        # a creditor of the committed donor must never serialize after
        # its wake data.  For everyone else the committed donor's taints
        # are inert (skipped in :meth:`_conflicting_taint_donors`).

    def _on_remove(self, tx_id: int) -> None:
        self._locks.release_all(tx_id)
        self._waiting_on.pop(tx_id, None)
        self._indebted_to.pop(tx_id, None)
        # Transactions indebted to the victim lose nothing: its locks are
        # gone, so the debt is moot.
        for debts in self._indebted_to.values():
            debts.discard(tx_id)
        # The victim's history is undone, so both the wakes it anchored
        # and the taints its accesses contributed disappear.
        self._drop_taint_donor(tx_id)
        for by_donor in list(self._taint.values()):
            for donor, contributors in list(by_donor.items()):
                contributors.pop(tx_id, None)
                if not contributors:
                    del by_donor[donor]
        self._prune_taint()

    def _drop_taint_donor(self, tx_id: int) -> None:
        for by_donor in self._taint.values():
            by_donor.pop(tx_id, None)
        self._prune_taint()

    def _prune_taint(self) -> None:
        for obj in list(self._taint):
            if not self._taint[obj]:
                del self._taint[obj]
