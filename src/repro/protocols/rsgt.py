"""Relative serialization graph testing (RSGT) — the paper's protocol.

Section 3 closes by noting the RSG "can be used as the basis for a
concurrency control protocol similar to serialization graph testing".
This scheduler is that protocol:

* transactions declare their programs on admission (the spec is per
  instance, so atomic units and ``PushForward``/``PullBackward`` targets
  are known statically — including F-arc targets that have not executed
  yet);
* the RSG is maintained over *all declared operations* of admitted
  transactions, with D-arcs derived from the dependencies among the
  operations granted so far;
* a request is granted iff appending it keeps the RSG acyclic, and
  aborts the requester otherwise.

Why abort rather than wait: dependencies only grow as the prefix grows
(new operations append at the end and can only add arcs), so a request
that closes a cycle now would close it forever — waiting cannot help.

By Theorem 1 the final committed history is relatively serializable; the
test suite asserts that over many simulated runs, and experiment E10
measures the concurrency gained over 2PL/SGT on long-lived workloads.

The incremental graph machinery lives in
:class:`~repro.protocols.certifier.RsgCertifier`, shared with the
certified locking protocol.
"""

from __future__ import annotations

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.errors import ProtocolError
from repro.graphs.digraph import DiGraph
from repro.obs.bus import TraceBus
from repro.protocols.base import Outcome, Scheduler
from repro.protocols.certifier import RsgCertifier

__all__ = ["RSGTScheduler"]


class RSGTScheduler(Scheduler):
    """Online RSG testing under a relative atomicity specification.

    Args:
        spec: the relative atomicity specification covering every
            transaction that will be admitted.
    """

    name = "rsgt"

    def __init__(self, spec: RelativeAtomicitySpec) -> None:
        super().__init__()
        self._spec = spec
        self._certifier = RsgCertifier(spec)

    @property
    def spec(self) -> RelativeAtomicitySpec:
        """The specification the protocol enforces."""
        return self._spec

    @property
    def _graph(self) -> DiGraph:
        """The current RSG (exposed for tests and diagnostics)."""
        return self._certifier.graph

    def _on_admit(self, transaction: Transaction) -> None:
        if transaction.tx_id not in self._spec.transactions:
            raise ProtocolError(
                f"T{transaction.tx_id} is not covered by the spec"
            )
        if self._spec.transactions[transaction.tx_id] != transaction:
            raise ProtocolError(
                f"declared T{transaction.tx_id} differs from the spec's"
            )
        self._certifier.declare(transaction)

    def _decide(self, op: Operation) -> Outcome:
        if self._certifier.try_certify(op):
            return Outcome.grant()
        return Outcome.abort(
            op.tx, reason=self._certifier.rejection_reason()
        )

    def _on_bus_change(self, bus: TraceBus) -> None:
        self._certifier.bus = bus

    def _rsg_summary(self) -> dict[str, object]:
        return self._certifier.rsg_summary()

    def _on_remove(self, tx_id: int) -> None:
        self._certifier.forget(tx_id)
