"""A shared/exclusive lock table with a waits-for graph.

Used by the two locking protocols (strict 2PL and altruistic locking).
The table answers "who blocks this request?" — the protocol decides
whether to wait or pick a deadlock victim.  Locks support the standard
S/X compatibility matrix, re-entrant acquisition, and S→X upgrade by the
sole holder.
"""

from __future__ import annotations

import enum

from repro.errors import ProtocolError
from repro.graphs.cycles import find_cycle
from repro.graphs.digraph import DiGraph

__all__ = ["LockMode", "LockTable"]


class LockMode(enum.Enum):
    """Shared (reads) or exclusive (writes)."""

    SHARED = "S"
    EXCLUSIVE = "X"


class LockTable:
    """Lock holders per object, plus donation marks for altruistic mode.

    The table records, per object, ``{tx_id: LockMode}`` holders and a set
    of holders that have *donated* the object (altruistic locking's early
    release; plain 2PL never donates).
    """

    def __init__(self) -> None:
        self._holders: dict[str, dict[int, LockMode]] = {}
        self._donated: dict[str, set[int]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def holders(self, obj: str) -> dict[int, LockMode]:
        """Current holders of ``obj`` (copy)."""
        return dict(self._holders.get(obj, {}))

    def mode_of(self, obj: str, tx_id: int) -> LockMode | None:
        """The mode ``tx_id`` holds on ``obj``, or ``None``."""
        return self._holders.get(obj, {}).get(tx_id)

    def has_donated(self, obj: str, tx_id: int) -> bool:
        """Whether ``tx_id`` holds ``obj`` but has donated it."""
        return tx_id in self._donated.get(obj, set())

    def donated_items(self) -> tuple[tuple[int, str], ...]:
        """Every live ``(donor, object)`` donation mark, sorted."""
        return tuple(
            sorted(
                (tx_id, obj)
                for obj, donors in self._donated.items()
                for tx_id in donors
            )
        )

    def blockers(
        self,
        obj: str,
        tx_id: int,
        mode: LockMode,
        ignore_donated_of: frozenset[int] = frozenset(),
    ) -> set[int]:
        """Transactions whose locks are incompatible with the request.

        Holders in ``ignore_donated_of`` that have donated ``obj`` do not
        block (altruistic mode); every other incompatible holder does.
        The requester itself never blocks its own request except for an
        impossible downgrade (not modelled — S after X is compatible).
        """
        blocking: set[int] = set()
        for holder, held in self._holders.get(obj, {}).items():
            if holder == tx_id:
                continue
            compatible = held is LockMode.SHARED and mode is LockMode.SHARED
            if compatible:
                continue
            donated = holder in self._donated.get(obj, set())
            if donated and holder in ignore_donated_of:
                continue
            blocking.add(holder)
        return blocking

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def acquire(self, obj: str, tx_id: int, mode: LockMode) -> None:
        """Record the lock (or upgrade S to X); caller checked blockers."""
        held = self._holders.setdefault(obj, {})
        current = held.get(tx_id)
        if current is LockMode.EXCLUSIVE:
            return  # X covers everything
        held[tx_id] = mode if current is None else (
            LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else current
        )

    def donate(self, obj: str, tx_id: int) -> None:
        """Mark ``obj`` as donated by ``tx_id`` (still held)."""
        if self.mode_of(obj, tx_id) is None:
            raise ProtocolError(
                f"T{tx_id} cannot donate {obj!r}: lock not held"
            )
        self._donated.setdefault(obj, set()).add(tx_id)

    def release_all(self, tx_id: int) -> None:
        """Drop every lock (and donation mark) of ``tx_id``."""
        for obj in list(self._holders):
            self._holders[obj].pop(tx_id, None)
            if not self._holders[obj]:
                del self._holders[obj]
        for obj in list(self._donated):
            self._donated[obj].discard(tx_id)
            if not self._donated[obj]:
                del self._donated[obj]


def deadlock_victims(waits_for: DiGraph) -> list[int]:
    """Return the transactions on one waits-for cycle (empty if none).

    The caller picks the actual victim (protocols here abort the
    *requester* when it lies on the cycle, which it always does since the
    edge just added closed the cycle).
    """
    cycle = find_cycle(waits_for)
    if cycle is None:
        return []
    return list(dict.fromkeys(cycle))
