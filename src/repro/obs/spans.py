"""Request-lifecycle spans folded from the raw trace-event stream.

A span pairs the event that *opened* a stage of a request's life with
the event that *closed* it: a scheduler ``REQUEST`` with its
grant/WAIT/abort decision, a ``CERTIFY_ATTEMPT`` with its verdict, a
session admission (or first request) with its commit or restart.  Both
stamps are logical time only — ``(tick, seq)`` pairs from the bus — so
a span stream is a pure function of the event stream and inherits its
byte-determinism: same seed, same bytes, at any ``--jobs`` count.

:class:`SpanCollector` is a trace-bus *sink* with a strict cost split:
its ``write`` is the C-level ``deque.append`` itself — the identical
per-event cost :class:`~repro.obs.bus.RingBufferSink` pays, nothing
else runs on the emission hot path — and the pairing fold plus the
typed :class:`Span` views are computed lazily on *read*.  Reads are
human-rate (an ``inspect`` verb, a ``repro top`` refresh, an offline
export), so re-folding the buffered window there is microseconds that
never touch a request; this split is what keeps the collector inside
the <10% overhead gate ``benchmarks/bench_obs.py`` enforces on the
lock-table baselines, whose per-op work is a dictionary lookup.

A *bounded* collector keeps a raw-event window of four events per
retained span, folds that window on read, and reports the most recent
``capacity`` closed spans; a stage whose opening event has already
left the window is dropped, exactly like an unmatched close.  The
unbounded default (offline analysis, exports) folds every event and is
a pure function of the stream — same seed, same bytes.

Stages:

* ``op`` — one scheduler request, opened by ``REQUEST``, closed by its
  GRANT/WAIT/ABORT decision (a parked request shows as a ``wait`` span
  per retry round);
* ``certify`` — one certification attempt, closed by its verdict;
* ``txn`` — a transaction incarnation, opened by its service admission
  (``ADMIT``) or first request, closed by ``COMMIT`` or ``RESTART``;
* ``event`` — instants (admission, WAL apply, watchdog, faults,
  crashes) rendered as zero-length spans so they keep their place on
  the timeline.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterable
from typing import NamedTuple

from repro.obs.events import EventKind

__all__ = [
    "Span",
    "SpanCollector",
    "spans_from_events",
    "spans_jsonl",
    "spans_to_chrome",
]

_REQUEST = EventKind.REQUEST
_GRANT = EventKind.GRANT
_WAIT = EventKind.WAIT
_ABORT = EventKind.ABORT
_ATTEMPT = EventKind.CERTIFY_ATTEMPT
_VERDICT = EventKind.CERTIFY_VERDICT
_COMMIT = EventKind.COMMIT
_RESTART = EventKind.RESTART
_ADMIT = EventKind.ADMIT

#: Stage of a closed span, keyed by its closing event kind.
_CLOSE_STAGE = {
    _GRANT: "op",
    _WAIT: "op",
    _ABORT: "op",
    _VERDICT: "certify",
    _COMMIT: "txn",
    _RESTART: "txn",
}

#: Same tick-to-microseconds mapping the instant-event chrome export
#: uses, so span timelines and event timelines line up when overlaid.
_TICK_US = 1000


class Span(NamedTuple):
    """One closed lifecycle stage, stamped with logical time only.

    Attributes:
        stage: ``"op"`` / ``"certify"`` / ``"txn"`` / ``"event"``.
        outcome: how the stage closed (``"grant"``, ``"wait"``,
            ``"abort"``, ``"ok"``, ``"reject"``, ``"commit"``,
            ``"restart"``, or the instant's kind name).
        tx: the transaction the span concerns, when there is one.
        op: the operation label of ``op``/``certify`` spans.
        protocol: the emitting component's protocol name.
        start_tick / start_seq: logical stamp of the opening event.
        end_tick / end_seq: logical stamp of the closing event.
    """

    stage: str
    outcome: str
    tx: int | None
    op: str | None
    protocol: str
    start_tick: int
    start_seq: int
    end_tick: int
    end_seq: int

    def to_dict(self) -> dict:
        """Plain-data form with a fixed key order (byte-stable JSONL)."""
        payload: dict = {
            "stage": self.stage,
            "outcome": self.outcome,
        }
        if self.tx is not None:
            payload["tx"] = self.tx
        if self.op is not None:
            payload["op"] = self.op
        if self.protocol:
            payload["protocol"] = self.protocol
        payload["start_tick"] = self.start_tick
        payload["start_seq"] = self.start_seq
        payload["end_tick"] = self.end_tick
        payload["end_seq"] = self.end_seq
        return payload

    def to_json_line(self) -> str:
        """The span as one JSONL line (no trailing newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))


def _materialize(pair: tuple[tuple, tuple]) -> Span:
    """The typed span view of one raw ``(open, close)`` event pair."""
    start, end = pair
    kind = end[2]
    if start is end:
        stage = "event"
        outcome = kind.value
    else:
        stage = _CLOSE_STAGE[kind]
        if kind is _VERDICT:
            outcome = "ok" if dict(end[7]).get("ok") else "reject"
        else:
            outcome = kind.value
    return Span(
        stage=stage,
        outcome=outcome,
        tx=end[3],
        op=end[4] if stage in ("op", "certify") else None,
        protocol=end[5],
        start_tick=start[1],
        start_seq=start[0],
        end_tick=end[1],
        end_seq=end[0],
    )


#: Raw-window events retained per closed span a bounded collector
#: reports.  A closed span is two events and the window also has to
#: carry still-open stage starts and instants, so four gives the fold
#: comfortable slack without the window costing real memory.
_WINDOW_PER_SPAN = 4


def _fold(events: Iterable[tuple]) -> tuple[list, dict]:
    """Pair an event window into closed ``(open, close)`` raw pairs.

    Returns the closed pairs in close order plus the still-open
    incarnation starts (``tx -> opening raw tuple``).  Branches are
    ordered by event frequency (request/decision pairs dominate).
    """
    open_op: dict = {}
    open_cert: dict = {}
    txn_start: dict = {}
    closed: list = []
    append = closed.append
    pop_op = open_op.pop
    pop_cert = open_cert.pop
    pop_txn = txn_start.pop
    for raw in events:
        kind = raw[2]
        if kind is _REQUEST:
            tx = raw[3]
            open_op[tx] = raw
            if tx not in txn_start:
                txn_start[tx] = raw
        elif kind is _GRANT or kind is _WAIT or kind is _ABORT:
            start = pop_op(raw[3], None)
            if start is not None:
                append((start, raw))
        elif kind is _ATTEMPT:
            open_cert[raw[3]] = raw
        elif kind is _VERDICT:
            start = pop_cert(raw[3], None)
            if start is not None:
                append((start, raw))
        elif kind is _COMMIT or kind is _RESTART:
            start = pop_txn(raw[3], None)
            if start is not None:
                append((start, raw))
        elif kind is _ADMIT:
            txn_start[raw[3]] = raw
            append((raw, raw))
        else:
            # Watchdogs, faults, crashes, WAL applies: instants.
            append((raw, raw))
    return closed, txn_start


class SpanCollector:
    """A trace-bus sink folding raw events into lifecycle spans.

    The emission-side cost is exactly one C-level ``deque.append`` per
    event — ``write`` *is* the bound append, no Python frame runs on
    the hot path — and the pairing fold happens on read.

    Args:
        capacity: report only the most recent closed spans, buffering
            a raw window of four events per span (``None`` = unbounded,
            the offline-analysis default; the service caps its live
            collector).
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("span capacity must be at least 1")
        self._capacity = capacity
        window = None if capacity is None else capacity * _WINDOW_PER_SPAN
        self._raw: deque[tuple] = deque(maxlen=window)
        #: The hot path: the sink's write is the C append itself.
        self.write = self._raw.append

    def _closed_pairs(self) -> list:
        closed, _ = _fold(self._raw)
        if self._capacity is not None:
            return closed[-self._capacity:]
        return closed

    def close(self) -> None:
        """Nothing to release (the collected spans stay readable)."""

    def __len__(self) -> int:
        return len(self._closed_pairs())

    @property
    def spans(self) -> tuple[Span, ...]:
        """The closed spans, in close order (lazy typed views)."""
        return tuple(_materialize(pair) for pair in self._closed_pairs())

    @property
    def open_transactions(self) -> tuple[int, ...]:
        """Transactions with an open incarnation span, ascending."""
        _, txn_start = _fold(self._raw)
        return tuple(sorted(txn_start))

    def text(self) -> str:
        """The closed spans as JSONL (one line per span)."""
        return "".join(
            _materialize(pair).to_json_line() + "\n"
            for pair in self._closed_pairs()
        )


def spans_from_events(events: Iterable[tuple]) -> tuple[Span, ...]:
    """Fold an event stream (raw tuples or :class:`TraceEvent` views —
    the typed view *is* a tuple in raw field order) into spans."""
    collector = SpanCollector()
    for event in events:
        collector.write(event)
    return collector.spans


def spans_to_chrome(spans: Iterable[Span]) -> dict:
    """The spans as a ``chrome://tracing`` object (complete events).

    Every span becomes a ``"ph": "X"`` slice on its transaction's
    track, with logical ticks mapped to microseconds exactly like the
    instant-event export, so the two can be overlaid.
    """
    trace_events = []
    for span in spans:
        start = max(span.start_tick, 0) * _TICK_US + span.start_seq % _TICK_US
        end = max(span.end_tick, 0) * _TICK_US + span.end_seq % _TICK_US
        trace_events.append(
            {
                "name": (
                    f"{span.stage}:{span.op}" if span.op else
                    f"{span.stage}:{span.outcome}"
                ),
                "cat": span.protocol or "repro",
                "ph": "X",
                "ts": start,
                "dur": max(end - start, 1),
                "pid": 1,
                "tid": span.tx if span.tx is not None else 0,
                "args": span.to_dict(),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def spans_jsonl(spans: Iterable[Span]) -> str:
    """The spans as JSONL text (one line per span)."""
    return "".join(span.to_json_line() + "\n" for span in spans)
