"""Trace export formats.

JSONL is the native format (one :meth:`~repro.obs.events.TraceEvent.
to_json_line` per event); this module adds the ``chrome://tracing`` /
Perfetto JSON format so a run can be inspected on a timeline: one track
(``tid``) per transaction, instant events for decisions and faults, with
the logical tick mapped to microseconds.  The conversion is a pure
function of the events, so chrome traces inherit the byte-determinism of
the bus.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.obs.events import TraceEvent

__all__ = ["events_to_chrome", "chrome_trace_json"]

#: Chrome's timeline sorts by ``ts`` (microseconds).  One tick maps to
#: 1000us, and the sequence number breaks intra-tick ties so the
#: rendered order always matches emission order.
_TICK_US = 1000


def events_to_chrome(events: Iterable[TraceEvent]) -> dict:
    """The events as a ``chrome://tracing`` object (``traceEvents`` list).

    Every event becomes an instant (``"ph": "i"``, thread scope); the
    transaction id keys the thread track (``0`` for system-wide events
    such as crashes), and the full native payload rides in ``args``.
    """
    trace_events = []
    for event in events:
        tick = max(event.tick, 0)
        trace_events.append(
            {
                "name": (
                    f"{event.kind.value}:{event.op}"
                    if event.op
                    else event.kind.value
                ),
                "cat": event.protocol or "repro",
                "ph": "i",
                "s": "t",
                "ts": tick * _TICK_US + event.seq % _TICK_US,
                "pid": 1,
                "tid": event.tx if event.tx is not None else 0,
                "args": event.to_dict(),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_json(events: Iterable[TraceEvent]) -> str:
    """Byte-stable JSON rendering of :func:`events_to_chrome`."""
    return json.dumps(events_to_chrome(events), indent=2, sort_keys=True)
