"""Fixed-boundary latency histograms with deterministic merge.

Percentile reporting used to sort raw sample lists; that is exact but
unmergeable — two workers' sorted lists cannot be combined without
shipping every sample.  A :class:`Histogram` trades bounded resolution
for O(1) recording and an associative, commutative merge: buckets are
**fixed powers of two** (bucket ``i`` covers ``[2^(i-1), 2^i - 1]``,
bucket 0 is exactly ``{0}``), so every worker bins identically and
merging is element-wise integer addition.  Reports derived from merged
histograms are therefore byte-identical at any ``--jobs`` count, the
same guarantee the rest of the metrics registry gives.

Percentiles are nearest-rank over the cumulative bucket counts and
report the containing bucket's **upper bound**, clamped to the observed
maximum — a conservative (never under-reporting) estimate with at most
2x relative error, exact for 0, 1, and the sample maximum.  All values
are non-negative integers; wall-clock consumers record integer
microseconds/milliseconds.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["Histogram"]

#: Bucket index of value ``v`` is ``v.bit_length()``; 64 buckets cover
#: every value below ``2**63`` (and the top bucket absorbs the rest).
_BUCKETS = 64


def _bucket_upper(index: int) -> int:
    """The largest value bucket ``index`` covers (0 for bucket 0)."""
    return 0 if index == 0 else (1 << index) - 1


class Histogram:
    """A power-of-two-bucket histogram over non-negative integers.

    Recording is O(1) (one ``bit_length`` plus a list increment), and
    :meth:`merge` is element-wise addition, so folding per-run
    histograms in task order yields the same result at any worker
    count.
    """

    __slots__ = ("_counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "Histogram":
        """A histogram over ``values`` (convenience constructor)."""
        hist = cls()
        for value in values:
            hist.record(value)
        return hist

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, value: int) -> None:
        """Record one sample (a non-negative integer)."""
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        index = value.bit_length()
        if index >= _BUCKETS:
            index = _BUCKETS - 1
        self._counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (returns self).

        Element-wise bucket addition: associative and commutative, so
        the merged result is independent of worker partitioning.
        """
        counts = self._counts
        for index, extra in enumerate(other._counts):
            if extra:
                counts[index] += extra
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def percentile(self, percentile: float) -> int:
        """Nearest-rank percentile, reported at bucket resolution.

        The rank'th sample's bucket upper bound, clamped to the observed
        maximum (so ``percentile(100)`` is exactly the maximum, and 0/1
        are always exact — they occupy single-value buckets).

        Raises:
            ValueError: on an empty histogram or a percentile outside
                ``(0, 100]`` (nearest-rank is undefined at 0).
        """
        if not self.count:
            raise ValueError("percentile of an empty histogram")
        if not 0 < percentile <= 100:
            raise ValueError(
                f"percentile must be in (0, 100], got {percentile}"
            )
        rank = max(1, -(-self.count * percentile // 100))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                upper = _bucket_upper(index)
                return upper if self.max is None else min(upper, self.max)
        raise AssertionError("rank exceeds recorded count")  # pragma: no cover

    def percentiles(
        self, percentiles: tuple[float, ...] = (50, 90, 99)
    ) -> dict[str, int]:
        """``{"p50": ..., ...}`` labels over :meth:`percentile`.

        An empty histogram yields zeros under the same keys, so report
        shapes stay constant.
        """
        if not self.count:
            return {f"p{p:g}": 0 for p in percentiles}
        return {f"p{p:g}": self.percentile(p) for p in percentiles}

    def buckets(self) -> dict[int, int]:
        """Non-empty ``{bucket upper bound: count}``, ascending."""
        return {
            _bucket_upper(index): bucket_count
            for index, bucket_count in enumerate(self._counts)
            if bucket_count
        }

    def to_dict(self) -> dict:
        """Plain-data form: totals, p50/p99, and the sparse buckets."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
            "p50": self.percentile(50) if self.count else 0,
            "p99": self.percentile(99) if self.count else 0,
            "buckets": {
                str(upper): count for upper, count in self.buckets().items()
            },
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, min={self.min}, "
            f"max={self.max})"
        )
