"""The flight recorder: last-N raw events per tenant, dumped on disaster.

Post-mortem debugging of a long-running service needs the trace
*leading up to* a failure, not the whole history.  A
:class:`FlightRecorder` is a trace-bus sink keeping a bounded ring of
raw event tuples per ring key (the service keys rings by tenant via a
resolver callback), costing one key lookup plus a deque append per
event.  When a trigger event arrives — a crash, a watchdog firing, a
livelock diagnosis — and a dump directory is configured, the recorder
writes every ring to a JSONL file automatically; the service adds
explicit dumps on SIGTERM drain and on the ``dump`` wire verb.

Dump format: one header line naming the cause, then one line per event
in ring order (oldest first, rings in sorted key order), each event's
native JSONL payload prefixed with its ``ring`` key.  The content is a
pure function of the observed events, so dumps of deterministic event
streams are byte-stable.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable
from pathlib import Path

from repro.obs.events import EventKind, TraceEvent

__all__ = ["FlightRecorder"]

#: Event kinds that auto-dump when a directory is configured.
DEFAULT_TRIGGERS = frozenset(
    {EventKind.CRASH, EventKind.WATCHDOG, EventKind.LIVELOCK}
)

_new_event = tuple.__new__


def _safe(cause: str) -> str:
    """A filesystem-safe rendering of a dump cause."""
    return "".join(c if c.isalnum() or c in "-_." else "-" for c in cause)


class FlightRecorder:
    """Bounded per-key rings of raw trace events, dumpable as JSONL.

    Args:
        capacity: events kept per ring (oldest evicted first).
        resolve: maps a raw event tuple to its ring key (the service
            passes a txn-to-tenant resolver; default: one global ring).
        triggers: event kinds that trigger an automatic dump when
            ``directory`` is set.
        directory: where automatic and default explicit dumps land
            (``None`` disables file output; in-memory text dumps still
            work).
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        resolve: Callable[[tuple], str] | None = None,
        triggers: frozenset[EventKind] = DEFAULT_TRIGGERS,
        directory: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._resolve = resolve
        self._triggers = triggers
        self.directory = Path(directory) if directory is not None else None
        self._rings: dict[str, deque[tuple]] = {}
        #: Paths of the dumps written so far, in dump order.
        self.dumped: list[Path] = []

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------
    def write(self, raw: tuple) -> None:
        key = "global" if self._resolve is None else self._resolve(raw)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = deque(maxlen=self._capacity)
        ring.append(raw)
        if self.directory is not None and raw[2] in self._triggers:
            self.dump(raw[2].value)

    def close(self) -> None:
        """Nothing to release (the rings stay readable)."""

    # ------------------------------------------------------------------
    # Reading and dumping
    # ------------------------------------------------------------------
    @property
    def ring_keys(self) -> tuple[str, ...]:
        """The ring keys seen so far, sorted."""
        return tuple(sorted(self._rings))

    def ring_sizes(self) -> dict[str, int]:
        """Buffered event count per ring, sorted by key."""
        return {key: len(ring) for key, ring in sorted(self._rings.items())}

    def events(self, key: str) -> tuple[TraceEvent, ...]:
        """One ring's buffered events, oldest first (typed views)."""
        return tuple(
            _new_event(TraceEvent, raw) for raw in self._rings.get(key, ())
        )

    def dump_text(self, cause: str) -> str:
        """The full dump as JSONL text (header line + event lines)."""
        rings = {key: len(ring) for key, ring in sorted(self._rings.items())}
        header = json.dumps(
            {
                "flight": cause,
                "events": sum(rings.values()),
                "rings": rings,
            },
            separators=(",", ":"),
        )
        lines = [header]
        for key, ring in sorted(self._rings.items()):
            for raw in ring:
                payload = {"ring": key}
                payload.update(_new_event(TraceEvent, raw).to_dict())
                lines.append(json.dumps(payload, separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def dump(self, cause: str, path: str | Path | None = None) -> Path | None:
        """Write the dump to ``path`` (or a fresh file in the configured
        directory); returns the written path, ``None`` with neither."""
        if path is None:
            if self.directory is None:
                return None
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / (
                f"flight-{len(self.dumped):04d}-{_safe(cause)}.jsonl"
            )
        else:
            path = Path(path)
        path.write_text(self.dump_text(cause), encoding="utf-8")
        self.dumped.append(path)
        return path

    def replay_jsonl(self, text: str, *, key: str | None = None) -> int:
        """Feed a native JSONL trace back through the recorder.

        Reconstructs raw event tuples via :meth:`TraceEvent.from_dict`
        and :meth:`write`s them — triggers fire exactly as they would
        have live, so an offline campaign trace produces the same dumps
        a live run would.  ``key`` pins every event to one ring,
        bypassing the resolver (campaign traces are keyed per run, not
        per transaction owner).  Returns the number of events replayed.
        """
        resolver = self._resolve
        if key is not None:
            self._resolve = lambda raw: key
        try:
            replayed = 0
            for line in text.splitlines():
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                payload = json.loads(line)
                if "kind" not in payload:
                    # Header lines: a campaign's per-run {"run", "seed"}
                    # markers, a dump's own {"flight", ...} preamble.
                    continue
                # Dumps prefix each event with its ring key; drop it so
                # dump -> replay round trips reconstruct the original
                # event rather than growing an extra field.
                payload.pop("ring", None)
                self.write(TraceEvent.from_dict(payload))
                replayed += 1
            return replayed
        finally:
            self._resolve = resolver

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(rings={len(self._rings)}, "
            f"capacity={self._capacity}, dumps={len(self.dumped)})"
        )
