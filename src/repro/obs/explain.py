"""Decision explanation: labelled witness cycles for rejections.

Theorem 1 makes every certification verdict checkable: a schedule is
relatively serializable iff its RSG is acyclic, so every rejection has a
concrete cycle as its witness.  This module turns those witnesses into a
uniform, renderable artifact:

* :class:`RejectionWitness` — the cycle as ``source --kinds--> target``
  steps, where ``kinds`` names the I/D/F/B arc families the step rides
  on (``"DB"`` for an arc that is both a dependency and a pull-backward
  closure, as in the paper's Figure 3);
* :func:`witness_from_rsg` — label an offline
  :class:`~repro.core.rsg.RelativeSerializationGraph`'s cycle;
* :func:`witness_from_certifier` — label an online
  :class:`~repro.protocols.certifier.RsgCertifier` rejection (including
  the refused arcs that never made it into the graph);
* :func:`explain_schedule` — the one-call API behind ``repro explain``:
  replay a schedule against a spec, return the verdict plus either the
  witness cycle (rejected) or the equivalent relatively serial schedule
  (admissible).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.rsg import ArcKind, RelativeSerializationGraph
from repro.core.schedules import Schedule

__all__ = [
    "WitnessStep",
    "RejectionWitness",
    "Explanation",
    "explain_schedule",
    "witness_from_rsg",
    "witness_from_certifier",
]

#: Canonical rendering order of arc kinds within one step.
_KIND_ORDER = {
    ArcKind.INTERNAL: 0,
    ArcKind.DEPENDENCY: 1,
    ArcKind.PUSH_FORWARD: 2,
    ArcKind.PULL_BACKWARD: 3,
}


def _kinds_text(kinds) -> str:
    """Arc kinds as a compact string (``"DB"``), canonical I/D/F/B order."""
    ordered = sorted(kinds, key=_KIND_ORDER.__getitem__)
    return "".join(kind.value for kind in ordered)


@dataclass(frozen=True, slots=True)
class WitnessStep:
    """One arc of a witness cycle.

    Attributes:
        source: label of the arc's source operation (``"w2[y]"``).
        target: label of the arc's target operation.
        kinds: the arc families the step carries, as a compact string in
            I/D/F/B order (``"DB"``); ``"?"`` when the labelling is
            unavailable (plain unlabelled graphs).
    """

    source: str
    target: str
    kinds: str

    def __str__(self) -> str:
        return f"{self.source} --{self.kinds}--> {self.target}"


@dataclass(frozen=True, slots=True)
class RejectionWitness:
    """A labelled RSG cycle: the proof a schedule had to be rejected."""

    steps: tuple[WitnessStep, ...]

    @property
    def operations(self) -> tuple[str, ...]:
        """The cycle's operation labels, in order (first not repeated)."""
        return tuple(step.source for step in self.steps)

    def format(self) -> str:
        """Multi-line human rendering, one arc per line."""
        return "\n".join(str(step) for step in self.steps)

    def to_dict(self) -> dict:
        """Plain-data form for JSON reports and golden files."""
        return {
            "cycle": [
                {
                    "source": step.source,
                    "target": step.target,
                    "kinds": step.kinds,
                }
                for step in self.steps
            ]
        }

    def reason_cycle(self) -> tuple[tuple[str, str], ...]:
        """The cycle in :class:`~repro.obs.events.Reason` form:
        ``(node label, outgoing arc kinds)`` per step."""
        return tuple((step.source, step.kinds) for step in self.steps)

    def __str__(self) -> str:
        return " -> ".join(
            [step.source for step in self.steps]
            + [self.steps[0].source if self.steps else ""]
        )


def _close_cycle(nodes: list) -> list:
    """Normalize a cycle node list so first == last."""
    if nodes and nodes[0] != nodes[-1]:
        return list(nodes) + [nodes[0]]
    return list(nodes)


def _label_of(node) -> str:
    if isinstance(node, Operation):
        return node.label
    return f"T{node}" if isinstance(node, int) else str(node)


def witness_from_cycle(
    cycle: list, kinds_of=None
) -> RejectionWitness:
    """Build a witness from a cycle node list.

    Args:
        cycle: the cycle's nodes (first == last accepted and normalized).
        kinds_of: optional ``(source, target) -> iterable[ArcKind]``
            resolver; steps without one render their kinds as ``"?"``.
    """
    nodes = _close_cycle(cycle)
    steps = []
    for source, target in zip(nodes, nodes[1:]):
        kinds = tuple(kinds_of(source, target)) if kinds_of else ()
        steps.append(
            WitnessStep(
                _label_of(source),
                _label_of(target),
                _kinds_text(kinds) if kinds else "?",
            )
        )
    return RejectionWitness(tuple(steps))


def witness_from_rsg(
    rsg: RelativeSerializationGraph,
) -> RejectionWitness | None:
    """The labelled witness of a cyclic RSG (``None`` when acyclic)."""
    cycle = rsg.cycle
    if cycle is None:
        return None
    return witness_from_cycle(
        cycle, lambda source, target: rsg.arc_kinds(source, target)
    )


def witness_from_certifier(certifier) -> RejectionWitness | None:
    """The labelled witness of an online certifier's last rejection.

    Works on anything exposing ``labelled_witness()`` (duck-typed to
    avoid importing the protocol layer); refused arcs that were rolled
    back before ever entering the graph are still labelled, because the
    engine remembers the tentative arc set of the rejected push.
    """
    labelled = certifier.labelled_witness()
    if labelled is None:
        return None
    steps = tuple(
        WitnessStep(
            _label_of(source), _label_of(target), _kinds_text(kinds)
        )
        for source, target, kinds in labelled
    )
    return RejectionWitness(steps)


@dataclass(frozen=True, slots=True)
class Explanation:
    """The verdict of replaying one schedule against one spec.

    Attributes:
        admissible: whether the schedule is relatively serializable.
        witness: the labelled rejection cycle (``None`` when admissible).
        serial_witness: the equivalent relatively serial schedule
            (Theorem 1's constructive half; ``None`` when rejected).
    """

    admissible: bool
    witness: RejectionWitness | None
    serial_witness: Schedule | None

    def to_dict(self) -> dict:
        """Plain-data form for ``repro explain --json`` and goldens."""
        payload: dict = {"admissible": self.admissible}
        if self.witness is not None:
            payload["witness"] = self.witness.to_dict()
        if self.serial_witness is not None:
            payload["serial_witness"] = str(self.serial_witness)
        return payload

    def format(self) -> str:
        """Human rendering: the verdict plus the supporting evidence."""
        if self.admissible:
            lines = ["verdict: relatively serializable (RSG acyclic)"]
            if self.serial_witness is not None:
                lines.append(
                    f"equivalent relatively serial schedule: "
                    f"{self.serial_witness}"
                )
            return "\n".join(lines)
        assert self.witness is not None
        return "\n".join(
            [
                "verdict: NOT relatively serializable (RSG cycle)",
                "witness cycle:",
                *(f"  {step}" for step in self.witness.steps),
            ]
        )


def explain_schedule(
    schedule: Schedule, spec: RelativeAtomicitySpec
) -> Explanation:
    """Replay ``schedule`` against ``spec`` and explain the verdict.

    The offline path of ``repro explain``: builds the full RSG, and
    returns either the labelled witness cycle (rejection — Definition 3
    made concrete) or the equivalent relatively serial schedule
    (admission — Theorem 1's constructive half).
    """
    rsg = RelativeSerializationGraph(schedule, spec)
    witness = witness_from_rsg(rsg)
    if witness is not None:
        return Explanation(False, witness, None)
    return Explanation(
        True, None, rsg.equivalent_relatively_serial_schedule()
    )
