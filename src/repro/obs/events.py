"""Typed trace events and structured decision provenance.

Every observable step of the stack — a request arriving at a scheduler,
the decision it got, a watchdog firing, a fault injection, a crash, a
certification verdict — is recorded as one immutable :class:`TraceEvent`.
Events carry only logical time (the simulator's tick plus a global
sequence number), never wall-clock readings, so a trace is a pure
function of the run's inputs: same seed, same bytes, on any platform and
at any worker count.

Non-grant decisions additionally carry a :class:`Reason`: a small
structured record naming *why* — the blocking transaction ids of a lock
conflict, the donor of a containment refusal, or the labelled RSG cycle
a certification rejection witnessed.  The reason rides on the
:class:`~repro.protocols.base.Outcome` itself, so it is available to
callers whether or not a trace is being collected.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import NamedTuple

__all__ = ["EventKind", "Reason", "TraceEvent"]


class EventKind(enum.Enum):
    """The event taxonomy (DESIGN.md section 9).

    One kind per observable step; the string values are the stable wire
    names used in JSONL traces and golden files.
    """

    REQUEST = "op-requested"
    GRANT = "grant"
    WAIT = "wait"
    ABORT = "abort"
    RESTART = "restart"
    COMMIT = "commit"
    WATCHDOG = "watchdog"
    FAULT = "fault-injected"
    CRASH = "crash"
    RECOVER = "recover"
    CERTIFY_ATTEMPT = "certify-attempt"
    CERTIFY_VERDICT = "certify-verdict"
    LIVELOCK = "livelock"
    # Service-lifecycle kinds (emitted by the tenant layer only, so
    # simulator traces and their golden files are unaffected).
    ADMIT = "session-admit"
    APPLY = "wal-apply"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Reason:
    """Machine-readable provenance of a non-grant decision.

    Attributes:
        code: stable identifier of the decision cause — e.g.
            ``"lock-conflict"``, ``"deadlock"``, ``"rsg-cycle"``,
            ``"sg-cycle"``, ``"unit-containment"``,
            ``"committed-blockers"``, ``"watchdog"``, ``"fault-abort"``,
            ``"fault-kill"``, ``"fault-stall"``, ``"fault-crash"``.
        blockers: transaction ids implicated in the decision (lock
            holders, deadlock participants, the containment donor, the
            watchdog's victim), ascending.
        cycle: the witness cycle for graph-based rejections, as
            ``(node label, arc kinds)`` steps — each step names the arc
            *leaving* that node (``"D"``, ``"DB"``, ``"I"``, …; empty
            for the final node repeat or unlabelled graphs).
        detail: free-form human amplification (never parsed).
    """

    code: str
    blockers: tuple[int, ...] = ()
    cycle: tuple[tuple[str, str], ...] = ()
    detail: str = ""

    def to_dict(self) -> dict:
        """Plain-data form, empty fields omitted (compact JSONL)."""
        payload: dict = {"code": self.code}
        if self.blockers:
            payload["blockers"] = list(self.blockers)
        if self.cycle:
            payload["cycle"] = [list(step) for step in self.cycle]
        if self.detail:
            payload["detail"] = self.detail
        return payload


class TraceEvent(NamedTuple):
    """One observable step, stamped with logical time only.

    A ``NamedTuple`` rather than a frozen dataclass: the trace bus ships
    *plain tuples* in this field order on the emission hot path and only
    materializes the typed view on the read side (``tuple.__new__`` on
    the raw tuple — possible precisely because a NamedTuple is a tuple
    with named slots).  That lazy split is what keeps the null-sink
    tracing overhead inside the <10% budget ``benchmarks/bench_obs.py``
    gates.  Still typed, immutable, and equality-comparable.

    Attributes:
        seq: global emission order within the run's bus (gap-free).
        tick: the simulator tick the event happened in (``-1`` outside
            any simulation, e.g. offline certification).
        kind: the event taxonomy entry.
        tx: the transaction the event concerns, when there is one.
        op: the operation label (``"r1[x]"``), when there is one.
        protocol: the emitting component's protocol name.
        reason: structured provenance for non-grant decisions.
        extra: additional ``(key, value)`` pairs, sorted by key — victim
            lists, fault kinds, verdict booleans.
    """

    seq: int
    tick: int
    kind: EventKind
    tx: int | None = None
    op: str | None = None
    protocol: str = ""
    reason: Reason | None = None
    extra: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        """Plain-data form with a fixed key order (byte-stable JSONL)."""
        payload: dict = {
            "seq": self.seq,
            "tick": self.tick,
            "kind": self.kind.value,
        }
        if self.tx is not None:
            payload["tx"] = self.tx
        if self.op is not None:
            payload["op"] = self.op
        if self.protocol:
            payload["protocol"] = self.protocol
        if self.reason is not None:
            payload["reason"] = self.reason.to_dict()
        for key, value in self.extra:
            payload[key] = value
        return payload

    def to_json_line(self) -> str:
        """The event as one JSONL line (no trailing newline).

        Keys keep insertion order (fixed by :meth:`to_dict`), values are
        rendered with no whitespace variance — byte-identical across
        platforms for equal events.
        """
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_dict` form.

        The exact inverse on every payload :meth:`to_dict` produces
        (``event.from_dict(event.to_dict()) == event`` up to list/tuple
        normalisation in ``extra`` values), which lets offline tools —
        the flight recorder replaying a campaign trace — reconstruct raw
        event tuples from JSONL without having observed the live bus.
        """
        fields = dict(payload)
        reason_payload = fields.pop("reason", None)
        reason = None
        if reason_payload is not None:
            reason = Reason(
                code=reason_payload["code"],
                blockers=tuple(reason_payload.get("blockers", ())),
                cycle=tuple(
                    tuple(step) for step in reason_payload.get("cycle", ())
                ),
                detail=reason_payload.get("detail", ""),
            )
        return cls(
            seq=fields.pop("seq"),
            tick=fields.pop("tick"),
            kind=EventKind(fields.pop("kind")),
            tx=fields.pop("tx", None),
            op=fields.pop("op", None),
            protocol=fields.pop("protocol", ""),
            reason=reason,
            extra=tuple(fields.items()),
        )
