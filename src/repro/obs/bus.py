"""The trace bus: logical-time event ordering with pluggable sinks.

One :class:`TraceBus` per run.  Emitters (schedulers, the certifier, the
fault injector, the simulator) call :meth:`TraceBus.emit`; the bus
stamps the event with the current logical tick (set once per tick by the
simulator via :meth:`TraceBus.clock`) and a gap-free sequence number,
then hands it to every attached sink.  Because the whole stack is
single-threaded per run, emission order *is* logical order — traces are
byte-identical across platforms and across ``--jobs`` counts (parallel
campaigns give every run its own bus and concatenate in run order).

Sinks:

* :class:`RingBufferSink` — last-N events in memory, for tests and
  post-mortem inspection;
* :class:`JsonlSink` — one JSON object per line to any text stream;
* :class:`NullSink` — counts events and drops them; keeps the full
  emission path live so its overhead is exactly what
  ``benchmarks/bench_obs.py`` gates.

Emission is lazy: the bus hands sinks the *raw field tuple* of an event
(same layout as :class:`~repro.obs.events.TraceEvent`, which is a tuple
subclass), and the typed view is only materialized when a consumer
actually reads events back — :attr:`RingBufferSink.events`, ``text()``,
or a JSONL render.  Buffering an event therefore costs one plain tuple
plus a C-level ``deque.append``; no ``NamedTuple.__new__`` frame runs on
the hot path.

A bus with no sinks (the module-level :data:`NULL_BUS` default) skips
event construction entirely, so un-traced runs pay one attribute check
per would-be event.
"""

from __future__ import annotations

import io
from collections import deque
from pathlib import Path
from typing import IO

from repro.obs.events import EventKind, Reason, TraceEvent

__all__ = [
    "TraceBus",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "NULL_BUS",
]

#: Materialize the typed view of a raw event tuple (lazy — read side
#: only; the emission hot path ships plain tuples).
_new_event = tuple.__new__


class NullSink:
    """Swallow events, counting them (the overhead-measurement sink)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, event: tuple) -> None:
        self.count += 1

    def close(self) -> None:
        """Nothing to release."""


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    Raw event tuples go straight into the deque: ``write`` *is* the
    bound C-level ``deque.append``, so buffering costs no Python frame.
    The typed :class:`TraceEvent` view is materialized on read.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._events: deque[tuple] = deque(maxlen=capacity)
        self.write = self._events.append

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered events, oldest first."""
        return tuple(
            _new_event(TraceEvent, raw) for raw in self._events
        )

    def close(self) -> None:
        """Nothing to release (the buffer stays readable)."""

    def text(self) -> str:
        """The buffered events as JSONL (one line per event)."""
        return "".join(
            _new_event(TraceEvent, raw).to_json_line() + "\n"
            for raw in self._events
        )


class JsonlSink:
    """Write one JSON line per event to a stream or file path."""

    def __init__(self, target: IO[str] | str | Path) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def write(self, event: tuple) -> None:
        self._stream.write(
            _new_event(TraceEvent, event).to_json_line() + "\n"
        )

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def text(self) -> str:
        """The written JSONL, for in-memory streams only."""
        if isinstance(self._stream, io.StringIO):
            return self._stream.getvalue()
        raise TypeError("text() requires an in-memory StringIO target")


class TraceBus:
    """Fan trace events out to sinks, stamped with logical time.

    Args:
        *sinks: initial sinks (more can be attached later).
    """

    __slots__ = ("_sinks", "_dispatch", "_seq", "_tick", "active")

    def __init__(self, *sinks) -> None:
        self._sinks = list(sinks)
        self._seq = 0
        self._tick = -1
        #: Whether any sink is attached (emitters gate on this).  A
        #: plain attribute, not a property: it is read several times per
        #: request on the hot path, and the attribute lookup is what
        #: keeps the un-traced cost to a single dictionary-free check.
        self.active = bool(sinks)
        self._rebuild_dispatch()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _rebuild_dispatch(self) -> None:
        """Bind ``_dispatch`` to the cheapest delivery for the sink set.

        ``None`` with no sinks (emitters test this), the sink's own
        prebound ``write`` with exactly one (the common case: a traced
        event costs a single call, no fan-out loop), and a fan-out
        closure with several.
        """
        sinks = self._sinks
        if not sinks:
            self._dispatch = None
        elif len(sinks) == 1:
            self._dispatch = sinks[0].write
        else:
            writes = [sink.write for sink in sinks]

            def fan_out(event, _writes=writes):
                for write in _writes:
                    write(event)

            self._dispatch = fan_out

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def attach(self, sink) -> None:
        """Add a sink (receives events from now on)."""
        self._sinks.append(sink)
        self.active = True
        self._rebuild_dispatch()

    def close(self) -> None:
        """Close every sink (flushes file-backed JSONL sinks)."""
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Logical time
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The current logical tick (``-1`` outside any simulation)."""
        return self._tick

    def clock(self, tick: int) -> None:
        """Advance the logical clock (the simulator calls this per tick)."""
        self._tick = tick

    @property
    def events_emitted(self) -> int:
        """How many events have been recorded so far."""
        return self._seq

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: EventKind,
        tx: int | None = None,
        op: str | None = None,
        protocol: str = "",
        reason: Reason | None = None,
        extra: tuple[tuple[str, object], ...] = (),
    ) -> None:
        """Record one event (no-op when no sink is attached).

        The per-request hot sites in :meth:`repro.protocols.base.
        Scheduler.request` inline this body (raw-tuple layout included)
        to skip the call frame; keep them in sync with any change here.
        """
        dispatch = self._dispatch
        if dispatch is None:
            return
        seq = self._seq
        self._seq = seq + 1
        # A plain tuple in TraceEvent field order, not a TraceEvent: the
        # typed view is materialized lazily on the read side, so the hot
        # path skips the NamedTuple construction frame entirely.
        dispatch((seq, self._tick, kind, tx, op, protocol, reason, extra))


#: Shared inert bus: the default for every scheduler/certifier, so the
#: un-traced hot path costs a single truthiness check per event site.
NULL_BUS = TraceBus()
