"""The trace bus: logical-time event ordering with pluggable sinks.

One :class:`TraceBus` per run.  Emitters (schedulers, the certifier, the
fault injector, the simulator) call :meth:`TraceBus.emit`; the bus
stamps the event with the current logical tick (set once per tick by the
simulator via :meth:`TraceBus.clock`) and a gap-free sequence number,
then hands it to every attached sink.  Because the whole stack is
single-threaded per run, emission order *is* logical order — traces are
byte-identical across platforms and across ``--jobs`` counts (parallel
campaigns give every run its own bus and concatenate in run order).

Sinks:

* :class:`RingBufferSink` — last-N events in memory, for tests and
  post-mortem inspection;
* :class:`JsonlSink` — one JSON object per line to any text stream;
* :class:`NullSink` — counts events and drops them; keeps the full
  emission path (event construction included) live so its overhead is
  exactly what ``benchmarks/bench_obs.py`` gates.

A bus with no sinks (the module-level :data:`NULL_BUS` default) skips
event construction entirely, so un-traced runs pay one attribute check
per would-be event.
"""

from __future__ import annotations

import io
from collections import deque
from pathlib import Path
from typing import IO

from repro.obs.events import EventKind, Reason, TraceEvent

__all__ = [
    "TraceBus",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "NULL_BUS",
]


class NullSink:
    """Swallow events, counting them (the overhead-measurement sink)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, event: TraceEvent) -> None:
        self.count += 1

    def close(self) -> None:
        """Nothing to release."""


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int | None = None) -> None:
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered events, oldest first."""
        return tuple(self._events)

    def write(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        """Nothing to release (the buffer stays readable)."""

    def text(self) -> str:
        """The buffered events as JSONL (one line per event)."""
        return "".join(
            event.to_json_line() + "\n" for event in self._events
        )


class JsonlSink:
    """Write one JSON line per event to a stream or file path."""

    def __init__(self, target: IO[str] | str | Path) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def write(self, event: TraceEvent) -> None:
        self._stream.write(event.to_json_line() + "\n")

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def text(self) -> str:
        """The written JSONL, for in-memory streams only."""
        if isinstance(self._stream, io.StringIO):
            return self._stream.getvalue()
        raise TypeError("text() requires an in-memory StringIO target")


class TraceBus:
    """Fan trace events out to sinks, stamped with logical time.

    Args:
        *sinks: initial sinks (more can be attached later).
    """

    __slots__ = ("_sinks", "_seq", "_tick", "active")

    def __init__(self, *sinks) -> None:
        self._sinks = list(sinks)
        self._seq = 0
        self._tick = -1
        #: Whether any sink is attached (emitters gate on this).  A
        #: plain attribute, not a property: it is read several times per
        #: request on the hot path, and the attribute lookup is what
        #: keeps the un-traced cost to a single dictionary-free check.
        self.active = bool(sinks)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def attach(self, sink) -> None:
        """Add a sink (receives events from now on)."""
        self._sinks.append(sink)
        self.active = True

    def close(self) -> None:
        """Close every sink (flushes file-backed JSONL sinks)."""
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Logical time
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The current logical tick (``-1`` outside any simulation)."""
        return self._tick

    def clock(self, tick: int) -> None:
        """Advance the logical clock (the simulator calls this per tick)."""
        self._tick = tick

    @property
    def events_emitted(self) -> int:
        """How many events have been recorded so far."""
        return self._seq

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: EventKind,
        tx: int | None = None,
        op: str | None = None,
        protocol: str = "",
        reason: Reason | None = None,
        extra: tuple[tuple[str, object], ...] = (),
    ) -> None:
        """Record one event (no-op when no sink is attached)."""
        if not self._sinks:
            return
        event = TraceEvent(
            self._seq, self._tick, kind, tx, op, protocol, reason, extra
        )
        self._seq += 1
        for sink in self._sinks:
            sink.write(event)


#: Shared inert bus: the default for every scheduler/certifier, so the
#: un-traced hot path costs a single truthiness check per event site.
NULL_BUS = TraceBus()
