"""A metrics registry with deterministic cross-worker merging.

Counters, gauges, and observations are keyed by ``name`` plus sorted
``label=value`` pairs, rendered as ``name{label=value,...}`` in reports.
Everything that reaches the deterministic report is integer-valued and
derived from logical quantities (ticks, counts), never wall-clock time,
so a report is a pure function of the run's inputs.

Wall-clock *timers* exist for diagnostics and benchmarks but live in a
separate section that :meth:`MetricsRegistry.to_dict` excludes by
default — including them would silently break the byte-determinism the
campaign reports promise.

Merging is associative and commutative per key (counters add, gauges
take the max, observations combine sum/count/min/max), so folding
per-run registries in task order over a
:class:`~repro.parallel.ParallelExecutor` yields the same report at any
worker count.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from repro.obs.hist import Histogram

__all__ = ["MetricsRegistry"]

Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(key: Key) -> str:
    name, labels = key
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{body}}}"


class MetricsRegistry:
    """Counters, gauges, observations, and (non-deterministic) timers."""

    def __init__(self) -> None:
        self._counters: dict[Key, int] = {}
        self._gauges: dict[Key, int] = {}
        # key -> [sum, count, min, max]
        self._observations: dict[Key, list[int]] = {}
        # key -> fixed power-of-two bucket histogram
        self._histograms: dict[Key, Histogram] = {}
        # key -> [total_seconds, calls]
        self._timers: dict[Key, list[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: int, **labels: object) -> None:
        """Set the gauge ``name{labels}`` (merge keeps the maximum)."""
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: int, **labels: object) -> None:
        """Record one sample of the distribution ``name{labels}``."""
        key = _key(name, labels)
        stats = self._observations.get(key)
        if stats is None:
            self._observations[key] = [value, 1, value, value]
        else:
            stats[0] += value
            stats[1] += 1
            if value < stats[2]:
                stats[2] = value
            if value > stats[3]:
                stats[3] = value

    def hist(self, name: str, value: int, **labels: object) -> None:
        """Record one sample into the histogram ``name{labels}``.

        Fixed power-of-two buckets (:class:`~repro.obs.hist.Histogram`),
        so p50/p99 come out of the report without keeping raw samples,
        and merging across workers is exact.
        """
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.record(value)

    @contextmanager
    def timer(self, name: str, **labels: object):
        """Accumulate wall-clock time under ``name{labels}``.

        Diagnostics only: timers are excluded from the deterministic
        report (see :meth:`to_dict`).
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            key = _key(name, labels)
            stats = self._timers.setdefault(key, [0.0, 0])
            stats[0] += elapsed
            stats[1] += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> int:
        """The counter's current value (0 if never incremented)."""
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: object) -> int | None:
        """The gauge's current value (``None`` if never set)."""
        return self._gauges.get(_key(name, labels))

    def observation_stats(
        self, name: str, **labels: object
    ) -> dict[str, int] | None:
        """The ``{sum, count, min, max}`` of one observation key, or
        ``None`` if nothing was recorded under it."""
        stats = self._observations.get(_key(name, labels))
        if stats is None:
            return None
        return {
            "sum": stats[0],
            "count": stats[1],
            "min": stats[2],
            "max": stats[3],
        }

    def histogram(self, name: str, **labels: object) -> Histogram | None:
        """The histogram under ``name{labels}``, or ``None`` if empty."""
        return self._histograms.get(_key(name, labels))

    def filtered(self, **labels: object) -> "MetricsRegistry":
        """A new registry holding only keys carrying all of ``labels``.

        The service's per-tenant ``metrics`` view: every metric labelled
        ``tenant=<name>`` survives, globally-labelled metrics do not.
        The returned registry shares no state with this one.
        """
        want = set(_key("", labels)[1])
        picked = MetricsRegistry()
        for key, value in self._counters.items():
            if want <= set(key[1]):
                picked._counters[key] = value
        for key, value in self._gauges.items():
            if want <= set(key[1]):
                picked._gauges[key] = value
        for key, stats in self._observations.items():
            if want <= set(key[1]):
                picked._observations[key] = list(stats)
        for key, histogram in self._histograms.items():
            if want <= set(key[1]):
                picked._histograms[key] = Histogram().merge(histogram)
        for key, stats in self._timers.items():
            if want <= set(key[1]):
                picked._timers[key] = list(stats)
        return picked

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (returns self).

        Counters add, gauges keep the maximum, observations combine
        exactly, timers add — all per key, so the merged result is
        independent of how runs were partitioned over workers.
        """
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in other._gauges.items():
            mine = self._gauges.get(key)
            if mine is None or value > mine:
                self._gauges[key] = value
        for key, stats in other._observations.items():
            mine = self._observations.get(key)
            if mine is None:
                self._observations[key] = list(stats)
            else:
                mine[0] += stats[0]
                mine[1] += stats[1]
                if stats[2] < mine[2]:
                    mine[2] = stats[2]
                if stats[3] > mine[3]:
                    mine[3] = stats[3]
        for key, histogram in other._histograms.items():
            mine_hist = self._histograms.get(key)
            if mine_hist is None:
                self._histograms[key] = Histogram().merge(histogram)
            else:
                mine_hist.merge(histogram)
        for key, stats in other._timers.items():
            mine = self._timers.setdefault(key, [0.0, 0])
            mine[0] += stats[0]
            mine[1] += stats[1]
        return self

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_dict(self, *, include_timers: bool = False) -> dict:
        """A plain-data report with sorted, rendered keys.

        Timers carry wall-clock readings, so they only appear when
        explicitly requested — the default report is byte-deterministic.
        """
        report: dict = {
            "counters": {
                _render(key): self._counters[key]
                for key in sorted(self._counters)
            },
            "gauges": {
                _render(key): self._gauges[key]
                for key in sorted(self._gauges)
            },
            "observations": {
                _render(key): {
                    "sum": stats[0],
                    "count": stats[1],
                    "min": stats[2],
                    "max": stats[3],
                }
                for key, stats in sorted(self._observations.items())
            },
            "histograms": {
                _render(key): histogram.to_dict()
                for key, histogram in sorted(self._histograms.items())
            },
        }
        if include_timers:
            report["timers"] = {
                _render(key): {
                    "seconds": round(stats[0], 6),
                    "calls": int(stats[1]),
                }
                for key, stats in sorted(self._timers.items())
            }
        return report

    def to_json(self, *, include_timers: bool = False) -> str:
        """Byte-stable JSON rendering of :meth:`to_dict`."""
        return json.dumps(
            self.to_dict(include_timers=include_timers),
            indent=2,
            sort_keys=True,
        )

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Metric names are sanitized to ``[a-zA-Z0-9_:]`` (dots become
        underscores), label values are quoted, and histograms render as
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
        the exposition-format convention.  Output is sorted by key, so
        equal registries render byte-identically.
        """
        lines: list[str] = []
        typed: set[str] = set()

        def _metric(key: Key, extra_labels: tuple = ()) -> tuple[str, str]:
            name, labels = key
            flat = "".join(
                c if c.isalnum() or c == ":" else "_" for c in name
            )
            pairs = labels + extra_labels
            body = ",".join(f'{k}="{v}"' for k, v in pairs)
            return flat, f"{{{body}}}" if body else ""

        def _type_line(flat: str, kind: str) -> None:
            if flat not in typed:
                typed.add(flat)
                lines.append(f"# TYPE {flat} {kind}")

        for key in sorted(self._counters):
            flat, labels = _metric(key)
            _type_line(flat, "counter")
            lines.append(f"{flat}{labels} {self._counters[key]}")
        for key in sorted(self._gauges):
            flat, labels = _metric(key)
            _type_line(flat, "gauge")
            lines.append(f"{flat}{labels} {self._gauges[key]}")
        for key, stats in sorted(self._observations.items()):
            flat, labels = _metric(key)
            _type_line(flat, "summary")
            lines.append(f"{flat}_sum{labels} {stats[0]}")
            lines.append(f"{flat}_count{labels} {stats[1]}")
        for key, histogram in sorted(self._histograms.items()):
            flat, _ = _metric(key)
            _type_line(flat, "histogram")
            cumulative = 0
            for upper, count in histogram.buckets().items():
                cumulative += count
                _, labels = _metric(key, (("le", str(upper)),))
                lines.append(f"{flat}_bucket{labels} {cumulative}")
            _, labels = _metric(key, (("le", "+Inf"),))
            lines.append(f"{flat}_bucket{labels} {histogram.count}")
            _, labels = _metric(key)
            lines.append(f"{flat}_sum{labels} {histogram.total}")
            lines.append(f"{flat}_count{labels} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"observations={len(self._observations)})"
        )
