"""Observability: deterministic tracing, provenance, and metrics.

The paper's contribution is *explainable* admission — Theorem 1 makes
every certification verdict a statement about a concrete graph, and
every rejection carries a concrete cycle as its witness.  This package
makes that explainability operational for the whole stack:

* :class:`TraceBus` — typed, frozen trace events (one per scheduler
  request, decision, restart, watchdog firing, fault injection, crash,
  recovery, and certification attempt/verdict) ordered by logical time,
  fanned out to pluggable sinks.  Traces are byte-deterministic: same
  seed, same bytes, at any ``--jobs`` count.
* :class:`Reason` — structured decision provenance attached to every
  non-grant :class:`~repro.protocols.base.Outcome`: which lock conflict,
  which donor debt, which atomic-unit containment, or which RSG cycle.
* :class:`MetricsRegistry` — counters, gauges, observations, and
  :class:`Histogram` distributions keyed by name + labels, merged
  deterministically across parallel workers and exported as stable JSON
  or Prometheus text exposition.
* :class:`SpanCollector` — request-lifecycle spans folded from the raw
  event stream (admission → grant/WAIT → certification → commit), all
  logical-time stamped and byte-deterministic at any ``--jobs``.
* :class:`FlightRecorder` — bounded per-tenant rings of raw events,
  dumped to JSONL on crash, watchdog, livelock, or drain.
* :func:`explain_schedule` / :class:`RejectionWitness` — the offline
  explanation API: replay a schedule against a spec and, on rejection,
  return the offending cycle as labelled arcs (I/D/F/B), renderable as
  text, JSON, or Graphviz DOT (:func:`repro.io.dot.witness_to_dot`).
"""

from repro.obs.bus import (
    NULL_BUS,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceBus,
)
from repro.obs.events import EventKind, Reason, TraceEvent
from repro.obs.hist import Histogram
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import (
    Span,
    SpanCollector,
    spans_from_events,
    spans_jsonl,
    spans_to_chrome,
)
from repro.obs.explain import (
    Explanation,
    RejectionWitness,
    WitnessStep,
    explain_schedule,
    witness_from_certifier,
    witness_from_rsg,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import chrome_trace_json, events_to_chrome

__all__ = [
    "EventKind",
    "Reason",
    "TraceEvent",
    "TraceBus",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "NULL_BUS",
    "MetricsRegistry",
    "Histogram",
    "Span",
    "SpanCollector",
    "spans_from_events",
    "spans_jsonl",
    "spans_to_chrome",
    "FlightRecorder",
    "Explanation",
    "RejectionWitness",
    "WitnessStep",
    "explain_schedule",
    "witness_from_rsg",
    "witness_from_certifier",
    "events_to_chrome",
    "chrome_trace_json",
]
