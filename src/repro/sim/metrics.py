"""Result and metric types for the simulator.

The simulator's contract: every admitted transaction either commits or —
in fault-injected runs with a bounded retry budget or permanent kill
faults — is *permanently aborted*.  A :class:`SimulationResult` covers
the full transaction set either way: committed transactions carry their
commit tick, permanently aborted ones the tick they died, and
``schedule`` is always the **committed projection** — a complete
:class:`~repro.core.schedules.Schedule` over exactly the committed
transactions that the offline correctness tests can re-verify.

Fault campaigns need degradation numbers, not just pass/fail, so the
result also exposes abort/retry/restart counters and wait-time
percentiles.  Percentiles go through the fixed-boundary
:class:`~repro.obs.hist.Histogram` — the same bucketed path the service
latency metrics use — so they are exact integers, byte-stable across
platforms, and mergeable across workers without shipping raw samples.
The exact sorted-list :func:`nearest_rank` stays available for
consumers holding full samples (chaos certification, benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.core.schedules import Schedule
from repro.obs.hist import Histogram

__all__ = ["TransactionOutcome", "SimulationResult", "nearest_rank"]

#: Outcome statuses.
COMMITTED = "committed"
ABORTED = "aborted"


def nearest_rank(values: list[int], percentile: float) -> int:
    """The nearest-rank percentile of ``values`` (exact, no interpolation).

    Deterministic and integer-valued for integer inputs, which keeps
    campaign reports byte-identical across platforms.

    Args:
        values: the sample; must be non-empty.
        percentile: the requested percentile, in the half-open interval
            ``(0, 100]`` — matching the nearest-rank definition, whose
            rank ``ceil(p/100 * n)`` is undefined at ``p = 0`` and is
            exactly ``max(values)`` at ``p = 100``.

    Raises:
        ValueError: on an empty sample or a percentile outside
            ``(0, 100]``.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 < percentile <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * percentile // 100))
    return ordered[int(rank) - 1]


@dataclass(frozen=True, slots=True)
class TransactionOutcome:
    """Per-transaction accounting.

    Attributes:
        tx_id: the transaction.
        arrival: tick the transaction became ready.
        commit_tick: tick its last operation was granted — or, for a
            permanently aborted transaction, the tick it was abandoned.
        restarts: how many times it was aborted and restarted.
        waits: how many of its requests returned WAIT.
        status: ``"committed"`` or ``"aborted"`` (permanent).
    """

    tx_id: int
    arrival: int
    commit_tick: int
    restarts: int
    waits: int
    status: str = COMMITTED

    @property
    def is_committed(self) -> bool:
        """Whether the transaction committed (vs. permanently aborted)."""
        return self.status == COMMITTED

    @property
    def response_time(self) -> int:
        """Ticks from arrival to commit (inclusive of the commit tick).

        For a permanently aborted transaction this is the time it
        occupied the system before being abandoned.
        """
        return self.commit_tick - self.arrival + 1


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes:
        protocol: the scheduler's protocol name.
        schedule: the committed projection as a verifiable schedule.
        outcomes: per-transaction accounting, keyed by id.
        makespan: tick of the last commit (plus one: total ticks used).
        roles: optional transaction roles (copied from the workload).
    """

    protocol: str
    schedule: Schedule
    outcomes: dict[int, TransactionOutcome]
    makespan: int
    roles: dict[int, str] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        """Number of committed transactions (the full set, fault-free)."""
        return sum(
            1 for outcome in self.outcomes.values() if outcome.is_committed
        )

    @property
    def aborted(self) -> int:
        """Number of permanently aborted transactions (0 fault-free)."""
        return len(self.outcomes) - self.committed

    @property
    def survivor_ids(self) -> tuple[int, ...]:
        """Ids of the committed transactions, ascending."""
        return tuple(
            sorted(
                tx_id
                for tx_id, outcome in self.outcomes.items()
                if outcome.is_committed
            )
        )

    @property
    def total_restarts(self) -> int:
        """Total aborts/restarts across all transactions."""
        return sum(outcome.restarts for outcome in self.outcomes.values())

    @property
    def total_waits(self) -> int:
        """Total WAIT responses across all transactions."""
        return sum(outcome.waits for outcome in self.outcomes.values())

    @property
    def throughput(self) -> float:
        """Committed transactions per tick."""
        return self.committed / self.makespan if self.makespan else 0.0

    @property
    def mean_response_time(self) -> float:
        """Average ticks from arrival to commit, over committed txs."""
        times = [
            outcome.response_time
            for outcome in self.outcomes.values()
            if outcome.is_committed
        ]
        return mean(times) if times else 0.0

    def wait_percentiles(
        self, percentiles: tuple[float, ...] = (50, 90, 99)
    ) -> dict[str, int]:
        """Bucketed percentiles of per-transaction wait counts.

        Keys are ``"p50"``-style labels; an empty transaction set yields
        zeros under the same keys (report shapes stay constant).
        Values are power-of-two bucket upper bounds clamped to the
        observed maximum (see :class:`~repro.obs.hist.Histogram`), so
        campaign reports comparing these are byte-stable and two runs'
        histograms merge exactly.
        """
        return Histogram.from_values(
            outcome.waits for outcome in self.outcomes.values()
        ).percentiles(percentiles)

    def degradation(self) -> dict[str, object]:
        """Abort/retry/wait summary for fault-campaign reporting."""
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "restarts": self.total_restarts,
            "waits": self.total_waits,
            "wait_percentiles": self.wait_percentiles(),
        }

    def mean_response_time_of(self, role: str) -> float | None:
        """Average response time of one role, or ``None`` if absent."""
        times = [
            outcome.response_time
            for tx_id, outcome in self.outcomes.items()
            if self.roles.get(tx_id) == role and outcome.is_committed
        ]
        return mean(times) if times else None

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.protocol}, committed={self.committed}, "
            f"makespan={self.makespan}, restarts={self.total_restarts})"
        )
