"""Result and metric types for the simulator.

The simulator's contract: every admitted transaction eventually commits
(victims restart until they succeed), so a :class:`SimulationResult`
always covers the full transaction set and its ``schedule`` is a complete
:class:`~repro.core.schedules.Schedule` that the offline correctness
tests can re-verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.core.schedules import Schedule

__all__ = ["TransactionOutcome", "SimulationResult"]


@dataclass(frozen=True, slots=True)
class TransactionOutcome:
    """Per-transaction accounting.

    Attributes:
        tx_id: the transaction.
        arrival: tick the transaction became ready.
        commit_tick: tick its last operation was granted.
        restarts: how many times it was aborted and restarted.
        waits: how many of its requests returned WAIT.
    """

    tx_id: int
    arrival: int
    commit_tick: int
    restarts: int
    waits: int

    @property
    def response_time(self) -> int:
        """Ticks from arrival to commit (inclusive of the commit tick)."""
        return self.commit_tick - self.arrival + 1


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes:
        protocol: the scheduler's protocol name.
        schedule: the committed history as a verifiable schedule.
        outcomes: per-transaction accounting, keyed by id.
        makespan: tick of the last commit (plus one: total ticks used).
        roles: optional transaction roles (copied from the workload).
    """

    protocol: str
    schedule: Schedule
    outcomes: dict[int, TransactionOutcome]
    makespan: int
    roles: dict[int, str] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        """Number of committed transactions (always the full set)."""
        return len(self.outcomes)

    @property
    def total_restarts(self) -> int:
        """Total aborts/restarts across all transactions."""
        return sum(outcome.restarts for outcome in self.outcomes.values())

    @property
    def total_waits(self) -> int:
        """Total WAIT responses across all transactions."""
        return sum(outcome.waits for outcome in self.outcomes.values())

    @property
    def throughput(self) -> float:
        """Committed transactions per tick."""
        return self.committed / self.makespan if self.makespan else 0.0

    @property
    def mean_response_time(self) -> float:
        """Average ticks from arrival to commit."""
        return mean(
            outcome.response_time for outcome in self.outcomes.values()
        )

    def mean_response_time_of(self, role: str) -> float | None:
        """Average response time of one role, or ``None`` if absent."""
        times = [
            outcome.response_time
            for tx_id, outcome in self.outcomes.items()
            if self.roles.get(tx_id) == role
        ]
        return mean(times) if times else None

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.protocol}, committed={self.committed}, "
            f"makespan={self.makespan}, restarts={self.total_restarts})"
        )
