"""The simulator's tick loop.

Model: time advances in ticks; each live transaction submits at most one
operation per tick (in a rotating round-robin order, so no transaction is
structurally favoured).  A granted operation completes within the tick; a
WAIT retries next tick; an ABORT restarts the victims after a backoff
that grows with the restart count (a simple livelock damper).

The loop runs until every transaction commits — a protocol that could
starve a transaction forever would hit the ``max_ticks`` guard and raise
:class:`~repro.errors.SimulationError` instead of spinning silently.

The committed history is returned as a real
:class:`~repro.core.schedules.Schedule` over the transaction set, so the
offline theory (conflict serializability for 2PL/SGT/altruistic, relative
serializability for RSGT) can re-verify every run.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import SimulationError
from repro.protocols.base import Decision, Scheduler
from repro.sim.metrics import SimulationResult, TransactionOutcome
from repro.workloads.base import WorkloadBundle

__all__ = ["simulate", "simulate_bundle"]


def simulate(
    transactions: Sequence[Transaction],
    scheduler: Scheduler,
    arrivals: Mapping[int, int] | None = None,
    backoff: int = 2,
    max_ticks: int = 100_000,
) -> SimulationResult:
    """Run ``transactions`` through ``scheduler`` until all commit.

    Args:
        transactions: the transaction set (admitted at their arrival
            ticks).
        scheduler: the concurrency-control protocol instance.
        arrivals: tick each transaction becomes ready (default: all 0).
        backoff: base restart delay; the *n*-th restart of a transaction
            waits ``backoff * n`` ticks.
        max_ticks: hard guard against livelock.

    Returns:
        A :class:`~repro.sim.metrics.SimulationResult` with the committed
        history and per-transaction accounting.

    Raises:
        SimulationError: when ``max_ticks`` elapses before every
            transaction commits.
    """
    arrivals = dict(arrivals or {})
    order = sorted(tx.tx_id for tx in transactions)
    by_id = {tx.tx_id: tx for tx in transactions}
    arrival = {tx_id: arrivals.get(tx_id, 0) for tx_id in order}

    cursor = {tx_id: 0 for tx_id in order}
    blocked_until = {tx_id: arrival[tx_id] for tx_id in order}
    admitted: set[int] = set()
    committed: dict[int, int] = {}
    restarts = {tx_id: 0 for tx_id in order}
    waits = {tx_id: 0 for tx_id in order}

    tick = 0
    rotation = 0
    while len(committed) < len(order):
        if tick > max_ticks:
            missing = sorted(set(order).difference(committed))
            raise SimulationError(
                f"simulation exceeded {max_ticks} ticks with "
                f"{len(missing)} transactions uncommitted: {missing}"
            )
        # Rotate the service order each tick for fairness.
        service_order = order[rotation:] + order[:rotation]
        rotation = (rotation + 1) % len(order)

        for tx_id in service_order:
            if tx_id in committed or blocked_until[tx_id] > tick:
                continue
            if tx_id not in admitted:
                scheduler.admit(by_id[tx_id])
                admitted.add(tx_id)
            op = by_id[tx_id][cursor[tx_id]]
            outcome = scheduler.request(op)
            if outcome.decision is Decision.GRANT:
                cursor[tx_id] += 1
                if cursor[tx_id] == len(by_id[tx_id]):
                    scheduler.finish(tx_id)
                    committed[tx_id] = tick
            elif outcome.decision is Decision.WAIT:
                waits[tx_id] += 1
            else:
                victims = outcome.victims or (tx_id,)
                for victim in victims:
                    if victim in committed:
                        raise SimulationError(
                            f"protocol chose committed T{victim} as victim"
                        )
                    scheduler.remove(victim)
                    cursor[victim] = 0
                    restarts[victim] += 1
                    blocked_until[victim] = tick + backoff * restarts[victim]
        tick += 1

    history = Schedule(list(transactions), scheduler.history)
    outcomes = {
        tx_id: TransactionOutcome(
            tx_id=tx_id,
            arrival=arrival[tx_id],
            commit_tick=committed[tx_id],
            restarts=restarts[tx_id],
            waits=waits[tx_id],
        )
        for tx_id in order
    }
    return SimulationResult(
        protocol=scheduler.name,
        schedule=history,
        outcomes=outcomes,
        makespan=max(committed.values()) + 1 if committed else 0,
    )


def simulate_bundle(
    bundle: WorkloadBundle,
    scheduler: Scheduler,
    arrivals: Mapping[int, int] | None = None,
    backoff: int = 2,
    max_ticks: int = 100_000,
) -> SimulationResult:
    """Run a scenario workload through a scheduler (roles preserved)."""
    result = simulate(
        bundle.transactions,
        scheduler,
        arrivals=arrivals,
        backoff=backoff,
        max_ticks=max_ticks,
    )
    result.roles = dict(bundle.roles)
    return result
