"""The simulator's tick loop.

Model: time advances in ticks; each live transaction submits at most one
operation per tick (in a rotating round-robin order, so no transaction is
structurally favoured).  A granted operation completes within the tick; a
WAIT retries next tick; an ABORT restarts the victims after a backoff
that grows with the restart count (linearly by default, exponentially
under ``restart_policy="exponential"`` — the fault campaigns' setting).

Fault tolerance:

* **Bounded retries** — with ``max_attempts=N`` a transaction gets at
  most ``N`` incarnations; the abort that would start incarnation
  ``N + 1`` *permanently* aborts it instead (its partial effects are
  rolled back and it leaves the system).  The default (``None``) retries
  forever, the fault-free contract.
* **Permanent kills** — a scheduler (in practice the
  :class:`~repro.faults.FaultInjector` wrapper) may expose a ``killed``
  id set; victims in it are permanently aborted regardless of budget.
* **Live store execution** — pass ``store=`` to apply every granted
  operation to a :class:`~repro.engine.kvstore.KVStore` as it happens:
  ``begin`` at a transaction's first operation, reads/writes in grant
  order (writes tagged ``"T{tx}.{index}"``, the executor's structural
  default), ``commit`` at its last, and ``abort`` — restoring
  before-images — whenever it is chosen as a victim.  Crash faults
  close their victims through :meth:`~repro.engine.kvstore.KVStore.
  recover` before the simulator sees them, so the rollback happens
  exactly once either way.
* **All-WAIT stall guard** — ``max_stalled_ticks`` consecutive ticks in
  which every submitted request returned WAIT raise
  :class:`~repro.errors.LivelockError` naming the waiting transactions,
  a diagnostic instead of a 100k-tick silent spin.  (The scheduler-side
  watchdog in :class:`~repro.protocols.base.Scheduler` usually breaks
  the cycle first by aborting a victim; this guard is the backstop for
  schedulers that stall without holding anything.)

The committed history is returned as a real
:class:`~repro.core.schedules.Schedule` over the *committed* transaction
set, so the offline theory (conflict serializability for
2PL/SGT/altruistic, relative serializability for RSGT) can re-verify
every run — including the committed projection of a faulty one.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.engine.kvstore import KVStore
from repro.errors import LivelockError, SimulationError
from repro.obs.bus import TraceBus
from repro.obs.events import EventKind
from repro.obs.metrics import MetricsRegistry
from repro.protocols.base import Decision, Scheduler
from repro.sim.metrics import (
    ABORTED,
    COMMITTED,
    SimulationResult,
    TransactionOutcome,
)
from repro.workloads.base import WorkloadBundle

__all__ = ["simulate", "simulate_bundle"]

#: Exponential backoff is capped at this many doublings so a long
#: campaign cannot overflow into astronomically long sleeps.
_MAX_BACKOFF_DOUBLINGS = 16

#: Default ceiling on consecutive all-WAIT ticks before the simulator
#: raises a diagnostic LivelockError instead of spinning to max_ticks.
_DEFAULT_MAX_STALLED_TICKS = 1_000


def _restart_delay(
    policy: str,
    backoff: int,
    restarts: int,
    rng: random.Random | None = None,
) -> int:
    """Ticks a victim stays blocked after its ``restarts``-th restart.

    With ``rng`` supplied, a jitter term drawn uniformly from
    ``[0, base delay]`` is added (decorrelated "full jitter").  Without
    it the delay is the pure policy value — which means transactions
    co-aborted in the same tick (a store crash, a multi-victim deadlock
    resolution) restart in lockstep and re-collide on the same objects,
    round after round.  Seeded jitter breaks the herd while keeping the
    run a pure function of ``(inputs, seed)``: the rng is consulted once
    per restart in the simulator's deterministic victim order.
    """
    if policy == "linear":
        delay = backoff * restarts
    elif policy == "exponential":
        delay = backoff * (2 ** min(restarts - 1, _MAX_BACKOFF_DOUBLINGS))
    else:
        raise SimulationError(
            f"unknown restart policy {policy!r}; expected 'linear' or "
            "'exponential'"
        )
    if rng is not None:
        delay += rng.randint(0, delay)
    return delay


def simulate(
    transactions: Sequence[Transaction],
    scheduler: Scheduler,
    arrivals: Mapping[int, int] | None = None,
    backoff: int = 2,
    max_ticks: int = 100_000,
    *,
    max_attempts: int | None = None,
    max_stalled_ticks: int | None = _DEFAULT_MAX_STALLED_TICKS,
    restart_policy: str = "linear",
    restart_jitter: int | None = None,
    store: KVStore | None = None,
    bus: TraceBus | None = None,
    metrics: MetricsRegistry | None = None,
) -> SimulationResult:
    """Run ``transactions`` through ``scheduler`` until all finish.

    Args:
        transactions: the transaction set (admitted at their arrival
            ticks).
        scheduler: the concurrency-control protocol instance (possibly
            wrapped in a :class:`~repro.faults.FaultInjector`).
        arrivals: tick each transaction becomes ready (default: all 0).
        backoff: base restart delay.
        max_ticks: hard guard against livelock.
        max_attempts: incarnation budget per transaction; ``None`` (the
            default) retries forever.  Exhausting the budget permanently
            aborts the transaction.
        max_stalled_ticks: consecutive all-WAIT ticks tolerated before a
            :class:`~repro.errors.LivelockError` names the waiters;
            ``None`` disables the guard.
        restart_policy: ``"linear"`` (delay ``backoff * n`` after the
            *n*-th restart) or ``"exponential"`` (``backoff * 2**(n-1)``,
            capped).
        restart_jitter: seed for decorrelated restart jitter; when set,
            each restart delay gains a uniform ``[0, delay]`` term drawn
            from a ``random.Random(restart_jitter)`` stream, so
            co-aborted victims disperse instead of restarting in
            lockstep.  ``None`` (the default) keeps the historical pure
            policy delays — existing golden campaigns are unaffected.
        store: optional key-value store to execute granted operations
            against live (see the module docstring).
        bus: optional trace bus; when given it is installed on the
            scheduler, clocked once per tick, and receives restart and
            livelock events from the simulator itself.
        metrics: optional registry; when given the run's decision and
            lifecycle counters are recorded under the scheduler's
            protocol label.

    Returns:
        A :class:`~repro.sim.metrics.SimulationResult` with the committed
        projection and per-transaction accounting (committed and
        permanently aborted alike).

    Raises:
        SimulationError: when ``max_ticks`` elapses before every
            transaction commits or dies.
        LivelockError: when the all-WAIT stall guard fires.
    """
    if bus is not None:
        scheduler.bus = bus
    protocol = scheduler.name

    def count(name: str, amount: int = 1) -> None:
        if metrics is not None:
            metrics.inc(name, amount, protocol=protocol)

    jitter_rng = (
        random.Random(restart_jitter) if restart_jitter is not None else None
    )
    arrivals = dict(arrivals or {})
    order = sorted(tx.tx_id for tx in transactions)
    by_id = {tx.tx_id: tx for tx in transactions}
    arrival = {tx_id: arrivals.get(tx_id, 0) for tx_id in order}

    # Write tags are a pure function of the operation, so render them
    # once instead of per grant (victims re-execute their writes on
    # every incarnation).
    write_tags = (
        {
            op: f"T{op.tx}.{op.index}"
            for tx in transactions
            for op in tx.operations
            if op.is_write
        }
        if store is not None
        else {}
    )

    cursor = {tx_id: 0 for tx_id in order}
    blocked_until = {tx_id: arrival[tx_id] for tx_id in order}
    admitted: set[int] = set()
    committed: dict[int, int] = {}
    dead: dict[int, int] = {}  # tx id -> tick it was permanently aborted
    restarts = {tx_id: 0 for tx_id in order}
    waits = {tx_id: 0 for tx_id in order}

    def retire_victim(victim: int) -> None:
        """Shared rollback path for restarts, kills, and exhaustion."""
        scheduler.remove(victim)
        if store is not None and victim in store.open_transactions:
            store.abort(victim)
        cursor[victim] = 0
        restarts[victim] += 1

    tick = 0
    rotation = 0
    stalled_ticks = 0
    while len(committed) + len(dead) < len(order):
        if tick > max_ticks:
            missing = sorted(
                set(order).difference(committed).difference(dead)
            )
            raise SimulationError(
                f"simulation exceeded {max_ticks} ticks with "
                f"{len(missing)} transactions uncommitted: {missing}"
            )
        if bus is not None:
            # Inlined bus.clock(tick): once per tick on the traced hot
            # loop, and the logical clock is a plain slot.
            bus._tick = tick
        # Rotate the service order each tick for fairness.
        service_order = order[rotation:] + order[:rotation]
        rotation = (rotation + 1) % len(order)

        requested: list[int] = []
        progressed = False
        for tx_id in service_order:
            if (
                tx_id in committed
                or tx_id in dead
                or blocked_until[tx_id] > tick
            ):
                continue
            if tx_id not in admitted:
                scheduler.admit(by_id[tx_id])
                admitted.add(tx_id)
            requested.append(tx_id)
            op = by_id[tx_id][cursor[tx_id]]
            outcome = scheduler.request(op)
            count("sim.requests")
            if outcome.decision is Decision.GRANT:
                progressed = True
                count("sim.grants")
                if store is not None:
                    if cursor[tx_id] == 0:
                        store.begin(tx_id)
                    if op.is_read:
                        store.read(tx_id, op.obj)
                    else:
                        store.write(tx_id, op.obj, write_tags[op])
                cursor[tx_id] += 1
                if cursor[tx_id] == len(by_id[tx_id]):
                    scheduler.finish(tx_id)
                    if store is not None:
                        store.commit(tx_id)
                    committed[tx_id] = tick
                    count("sim.commits")
            elif outcome.decision is Decision.WAIT:
                waits[tx_id] += 1
                count("sim.waits")
            else:
                progressed = True
                count("sim.aborts")
                killed = getattr(scheduler, "killed", frozenset())
                victims = outcome.victims or (tx_id,)
                for victim in victims:
                    if victim in committed:
                        raise SimulationError(
                            f"protocol chose committed T{victim} as victim"
                        )
                    if victim in dead:
                        continue
                    retire_victim(victim)
                    if victim in killed:
                        dead[victim] = tick
                        count("sim.permanent_aborts")
                    elif (
                        max_attempts is not None
                        and restarts[victim] >= max_attempts
                    ):
                        dead[victim] = tick
                        count("sim.permanent_aborts")
                    else:
                        blocked_until[victim] = tick + _restart_delay(
                            restart_policy,
                            backoff,
                            restarts[victim],
                            jitter_rng,
                        )
                        count("sim.restarts")
                        if bus is not None and bus.active:
                            bus.emit(
                                EventKind.RESTART,
                                tx=victim,
                                protocol=scheduler.name,
                                extra=(
                                    ("attempt", restarts[victim] + 1),
                                    (
                                        "blocked_until",
                                        blocked_until[victim],
                                    ),
                                ),
                            )
        if requested and not progressed:
            stalled_ticks += 1
            if (
                max_stalled_ticks is not None
                and stalled_ticks > max_stalled_ticks
            ):
                waiting = tuple(sorted(requested))
                blocking = getattr(scheduler, "wait_edges", dict)()
                blocked_text = (
                    "; blocking: "
                    + ", ".join(
                        f"T{waiter} on "
                        + "/".join(f"T{b}" for b in blockers)
                        for waiter, blockers in blocking.items()
                    )
                    if blocking
                    else ""
                )
                if bus is not None and bus.active:
                    bus.emit(
                        EventKind.LIVELOCK,
                        protocol=scheduler.name,
                        extra=(
                            (
                                "blocking",
                                {
                                    str(w): list(bs)
                                    for w, bs in blocking.items()
                                },
                            ),
                            ("waiting", list(waiting)),
                        ),
                    )
                raise LivelockError(
                    f"no request granted for {stalled_ticks} consecutive "
                    f"ticks; waiting transactions: {sorted(requested)}"
                    f"{blocked_text}",
                    waiting=waiting,
                    blocking=blocking,
                )
        else:
            stalled_ticks = 0
        tick += 1

    makespan = max(committed.values()) + 1 if committed else 0
    if metrics is not None:
        metrics.gauge("sim.makespan", makespan, protocol=protocol)
        metrics.gauge("sim.ticks", tick, protocol=protocol)

    survivors = [tx for tx in transactions if tx.tx_id in committed]
    history = Schedule(survivors, scheduler.history)
    outcomes = {}
    for tx_id in order:
        if tx_id in committed:
            final_tick, status = committed[tx_id], COMMITTED
        else:
            final_tick, status = dead[tx_id], ABORTED
        outcomes[tx_id] = TransactionOutcome(
            tx_id=tx_id,
            arrival=arrival[tx_id],
            commit_tick=final_tick,
            restarts=restarts[tx_id],
            waits=waits[tx_id],
            status=status,
        )
    return SimulationResult(
        protocol=scheduler.name,
        schedule=history,
        outcomes=outcomes,
        makespan=makespan,
    )


def simulate_bundle(
    bundle: WorkloadBundle,
    scheduler: Scheduler,
    arrivals: Mapping[int, int] | None = None,
    backoff: int = 2,
    max_ticks: int = 100_000,
) -> SimulationResult:
    """Run a scenario workload through a scheduler (roles preserved)."""
    result = simulate(
        bundle.transactions,
        scheduler,
        arrivals=arrivals,
        backoff=backoff,
        max_ticks=max_ticks,
    )
    result.roles = dict(bundle.roles)
    return result
