"""Batched simulation: many independent runs, optionally in parallel.

Protocol comparisons and randomized campaigns run hundreds of
independent simulations (one per seed x protocol x workload).  Each run
is a pure function of its inputs, so the batch fans out over the
:class:`~repro.parallel.ParallelExecutor` warm process pool and returns
results in task order — a ``jobs=1`` batch is exactly the loop it
replaces.

Shared-nothing transport: the full task list is registered once with
:mod:`repro.parallel.registry` and ships to the pool through the
initializer; what crosses the boundary per chunk is a flat
``(ctx_id, lo, hi)`` index window.  Schedulers are reconstructed inside
the worker via :func:`repro.protocols.make_scheduler` (names and value
objects pickle; closures and live schedulers do not).

Two result shapes:

* :func:`run_batch` / :func:`simulate_batch` return every
  :class:`~repro.sim.metrics.SimulationResult` — O(population) result
  traffic, for callers that verify each committed history;
* :func:`summarize_batch` folds each chunk *inside the worker* into
  one mergeable :class:`BatchSummary` (counters on a deterministic
  :class:`~repro.obs.metrics.MetricsRegistry`, plus a per-run digest
  stream), so result traffic is O(chunks) + 32 bytes per run — the
  load path for large campaigns where only aggregates matter.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.obs.metrics import MetricsRegistry
from repro.parallel import registry
from repro.parallel.executor import ParallelExecutor
from repro.protocols import make_scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate

__all__ = [
    "BatchSummary",
    "SimulationTask",
    "run_batch",
    "simulate_batch",
    "summarize_batch",
]

#: Chunks per worker for batched runs: simulations are heavy relative
#: to a rank classification, so chunks stay small for load balancing
#: and there is no minimum chunk size beyond one run.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class SimulationTask:
    """One independent simulation: everything a worker needs, by value.

    Attributes:
        transactions: the transaction set to run.
        protocol: canonical protocol name (see
            :data:`repro.protocols.PROTOCOL_NAMES`).
        spec: atomicity spec for the spec-aware protocols (``None`` is
            fine for the classical ones).
        arrivals: per-transaction arrival ticks (default: all zero).
        backoff: restart backoff base.
        max_ticks: livelock guard.
        roles: transaction roles to attach to the result's metrics.
        tag: free-form label (e.g. the seed) carried through untouched,
            for matching results back to their configuration.
    """

    transactions: tuple[Transaction, ...]
    protocol: str
    spec: RelativeAtomicitySpec | None = None
    arrivals: Mapping[int, int] | None = None
    backoff: int = 2
    max_ticks: int = 100_000
    roles: Mapping[int, str] = field(default_factory=dict)
    tag: object = None


def run_task(task: SimulationTask) -> SimulationResult:
    """Run one task to completion (the worker function)."""
    scheduler = make_scheduler(task.protocol, task.spec)
    result = simulate(
        list(task.transactions),
        scheduler,
        arrivals=task.arrivals,
        backoff=task.backoff,
        max_ticks=task.max_ticks,
    )
    result.roles = dict(task.roles)
    return result


# ----------------------------------------------------------------------
# Flat-window transport
# ----------------------------------------------------------------------
def _batch_windows(
    n_tasks: int, workers: int
) -> list[tuple[int, int]] | None:
    """Contiguous index windows over a batch, or ``None`` to run inline."""
    if workers <= 1 or n_tasks <= 1:
        return None
    blocks = min(workers * _CHUNKS_PER_WORKER, n_tasks)
    base, extra = divmod(n_tasks, blocks)
    out = []
    start = 0
    for i in range(blocks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        out.append((start, start + size))
        start += size
    return out


def _run_range(task: tuple[int, int, int]) -> list[SimulationResult]:
    """Worker: run one index window of the registered task list."""
    ctx_id, lo, hi = task
    tasks = registry.resolve(ctx_id)
    return [run_task(t) for t in tasks[lo:hi]]


def run_batch(
    tasks: Sequence[SimulationTask], *, jobs: int | None = 1
) -> list[SimulationResult]:
    """Run every task, returning results in task order.

    ``jobs=1`` runs the loop inline; more jobs spread the independent
    simulations over the warm process pool (the task list ships once,
    chunks are flat index windows).  A :class:`~repro.errors.
    SimulationError` in any run propagates (same as the serial loop);
    campaigns that tolerate failed runs should use
    :func:`simulate_batch`, which yields ``None`` per failed slot.
    """
    tasks = list(tasks)
    executor = ParallelExecutor(jobs)
    windows = _batch_windows(len(tasks), executor.jobs)
    if windows is None:
        return [run_task(task) for task in tasks]
    ctx_id = registry.register(tuple(tasks))
    chunks = executor.map(
        _run_range, [(ctx_id, lo, hi) for lo, hi in windows]
    )
    return [result for chunk in chunks for result in chunk]


def _run_range_guarded(
    task: tuple[int, int, int],
) -> list[SimulationResult | tuple[str, str]]:
    """Worker that converts simulation failures into markers."""
    ctx_id, lo, hi = task
    tasks = registry.resolve(ctx_id)
    return [_guarded(t) for t in tasks[lo:hi]]


def _guarded(task: SimulationTask) -> SimulationResult | tuple[str, str]:
    from repro.errors import SimulationError

    try:
        return run_task(task)
    except SimulationError as exc:
        return ("error", str(exc))


def simulate_batch(
    tasks: Sequence[SimulationTask], *, jobs: int | None = 1
) -> list[SimulationResult | None]:
    """Like :func:`run_batch`, but a failed run yields ``None`` in its
    slot instead of aborting the whole batch (protocol-comparison
    campaigns count failures rather than crash)."""
    tasks = list(tasks)
    executor = ParallelExecutor(jobs)
    windows = _batch_windows(len(tasks), executor.jobs)
    if windows is None:
        flat = [_guarded(task) for task in tasks]
    else:
        ctx_id = registry.register(tuple(tasks))
        chunks = executor.map(
            _run_range_guarded, [(ctx_id, lo, hi) for lo, hi in windows]
        )
        flat = [result for chunk in chunks for result in chunk]
    return [None if isinstance(r, tuple) else r for r in flat]


# ----------------------------------------------------------------------
# In-worker reduction
# ----------------------------------------------------------------------
@dataclass
class BatchSummary:
    """Mergeable aggregate of a simulation batch.

    Counts and distributions live on a deterministic
    :class:`~repro.obs.metrics.MetricsRegistry` (labelled per
    protocol); ``run_digests`` carries one SHA-256 per run, in task
    order, so :attr:`digest` is a chunking-invariant fingerprint of
    every committed history and outcome table — parallel summaries are
    asserted byte-identical to serial ones through it.
    """

    runs: int = 0
    errors: int = 0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    run_digests: list[str] = field(default_factory=list)

    def add(self, result: SimulationResult | tuple[str, str]) -> None:
        """Fold one run (or its error marker) into the summary."""
        self.runs += 1
        if isinstance(result, tuple):
            self.errors += 1
            line = json.dumps(["error", result[1]]).encode()
            self.run_digests.append(hashlib.sha256(line).hexdigest())
            return
        metrics = self.metrics
        protocol = result.protocol
        metrics.inc("sim.runs", protocol=protocol)
        metrics.inc("sim.committed", result.committed, protocol=protocol)
        metrics.inc("sim.aborted", result.aborted, protocol=protocol)
        metrics.inc("sim.restarts", result.total_restarts, protocol=protocol)
        metrics.inc("sim.waits", result.total_waits, protocol=protocol)
        metrics.observe("sim.makespan", result.makespan, protocol=protocol)
        self.run_digests.append(_run_digest(result))

    def merge(self, other: "BatchSummary") -> "BatchSummary":
        """Fold a *later* chunk's summary in (ordered reduce)."""
        self.runs += other.runs
        self.errors += other.errors
        self.metrics.merge(other.metrics)
        self.run_digests.extend(other.run_digests)
        return self

    @property
    def digest(self) -> str:
        """SHA-256 over the ordered per-run digest stream."""
        h = hashlib.sha256()
        for item in self.run_digests:
            h.update(bytes.fromhex(item))
        return h.hexdigest()

    def to_dict(self) -> dict:
        """Deterministic JSON-ready form (byte-stable at any jobs=)."""
        return {
            "runs": self.runs,
            "errors": self.errors,
            "digest": self.digest,
            "metrics": self.metrics.to_dict(),
        }


def _run_digest(result: SimulationResult) -> str:
    """Canonical SHA-256 of one run's full observable outcome."""
    payload = [
        result.protocol,
        result.makespan,
        [
            [op.tx, op.index, op.op_type.value, op.obj]
            for op in result.schedule.operations
        ],
        [
            [
                tx_id,
                outcome.arrival,
                outcome.commit_tick,
                outcome.restarts,
                outcome.waits,
                outcome.status,
            ]
            for tx_id, outcome in sorted(result.outcomes.items())
        ],
    ]
    line = json.dumps(payload, separators=(",", ":")).encode()
    return hashlib.sha256(line).hexdigest()


def _summarize_range(task: tuple[int, int, int]) -> BatchSummary:
    """Worker: fold one index window into a single summary locally."""
    ctx_id, lo, hi = task
    tasks = registry.resolve(ctx_id)
    summary = BatchSummary()
    for t in tasks[lo:hi]:
        summary.add(_guarded(t))
    return summary


def summarize_batch(
    tasks: Sequence[SimulationTask], *, jobs: int | None = 1
) -> BatchSummary:
    """Run the batch and reduce it to one :class:`BatchSummary`.

    Each chunk folds its runs *inside the worker* and ships one
    summary, so result traffic is O(chunks), not O(runs) — the paper's
    protocol-comparison sweeps only need these aggregates.  The
    ordered merge plus per-key associativity of
    :meth:`MetricsRegistry.merge <repro.obs.metrics.MetricsRegistry
    .merge>` make the summary byte-identical at any job count; failed
    runs are counted in ``errors`` rather than propagated.
    """
    tasks = list(tasks)
    executor = ParallelExecutor(jobs)
    windows = _batch_windows(len(tasks), executor.jobs)
    if windows is None:
        summary = BatchSummary()
        for task in tasks:
            summary.add(_guarded(task))
        return summary
    ctx_id = registry.register(tuple(tasks))
    return executor.map_reduce(
        _summarize_range,
        [(ctx_id, lo, hi) for lo, hi in windows],
        BatchSummary.merge,
        BatchSummary(),
    )
