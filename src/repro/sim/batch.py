"""Batched simulation: many independent runs, optionally in parallel.

Protocol comparisons and randomized campaigns run hundreds of
independent simulations (one per seed x protocol x workload).  Each run
is a pure function of its inputs, so the batch fans out over the
:class:`~repro.parallel.ParallelExecutor` process pool and returns
results in task order — a ``jobs=1`` batch is exactly the loop it
replaces.

Tasks carry the *materialized* inputs (transactions, spec, protocol
name) rather than factories or scheduler instances: names and value
objects pickle across process boundaries, closures do not.  Schedulers
are reconstructed inside the worker via
:func:`repro.protocols.make_scheduler`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.parallel.executor import ParallelExecutor
from repro.protocols import make_scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate

__all__ = ["SimulationTask", "run_batch", "simulate_batch"]


@dataclass(frozen=True)
class SimulationTask:
    """One independent simulation: everything a worker needs, by value.

    Attributes:
        transactions: the transaction set to run.
        protocol: canonical protocol name (see
            :data:`repro.protocols.PROTOCOL_NAMES`).
        spec: atomicity spec for the spec-aware protocols (``None`` is
            fine for the classical ones).
        arrivals: per-transaction arrival ticks (default: all zero).
        backoff: restart backoff base.
        max_ticks: livelock guard.
        roles: transaction roles to attach to the result's metrics.
        tag: free-form label (e.g. the seed) carried through untouched,
            for matching results back to their configuration.
    """

    transactions: tuple[Transaction, ...]
    protocol: str
    spec: RelativeAtomicitySpec | None = None
    arrivals: Mapping[int, int] | None = None
    backoff: int = 2
    max_ticks: int = 100_000
    roles: Mapping[int, str] = field(default_factory=dict)
    tag: object = None


def run_task(task: SimulationTask) -> SimulationResult:
    """Run one task to completion (the worker function)."""
    scheduler = make_scheduler(task.protocol, task.spec)
    result = simulate(
        list(task.transactions),
        scheduler,
        arrivals=task.arrivals,
        backoff=task.backoff,
        max_ticks=task.max_ticks,
    )
    result.roles = dict(task.roles)
    return result


def run_batch(
    tasks: Sequence[SimulationTask], *, jobs: int | None = 1
) -> list[SimulationResult]:
    """Run every task, returning results in task order.

    ``jobs=1`` runs the loop inline; more jobs spread the independent
    simulations over a process pool.  A :class:`~repro.errors.
    SimulationError` in any run propagates (same as the serial loop);
    campaigns that tolerate failed runs should use
    :func:`simulate_batch`, which yields ``None`` per failed slot.
    """
    return ParallelExecutor(jobs).map(run_task, list(tasks))


def _run_task_guarded(
    task: SimulationTask,
) -> SimulationResult | tuple[str, str]:
    """Worker that converts simulation failures into markers."""
    from repro.errors import SimulationError

    try:
        return run_task(task)
    except SimulationError as exc:
        return ("error", str(exc))


def simulate_batch(
    tasks: Sequence[SimulationTask], *, jobs: int | None = 1
) -> list[SimulationResult | None]:
    """Like :func:`run_batch`, but a failed run yields ``None`` in its
    slot instead of aborting the whole batch (protocol-comparison
    campaigns count failures rather than crash)."""
    out: list[SimulationResult | None] = []
    for result in ParallelExecutor(jobs).map(_run_task_guarded, list(tasks)):
        out.append(None if isinstance(result, tuple) else result)
    return out
