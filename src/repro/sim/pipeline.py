"""One-call pipeline: schedule a workload online, then execute it.

The full loop a library user wants for a scenario: pick a protocol, let
the simulator produce a committed history, replay that history against
the workload's data with its semantics, and (optionally) verify the
history against the offline theory.  Bundles the three subsystems the
examples wire together by hand.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.rsg import is_relatively_serializable
from repro.core.serializability import is_conflict_serializable
from repro.engine.executor import ExecutionTrace, ScheduleExecutor
from repro.protocols.base import Scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.runner import simulate_bundle
from repro.workloads.base import WorkloadBundle

__all__ = ["WorkloadRun", "run_workload"]


@dataclass
class WorkloadRun:
    """Everything one scheduled-and-executed workload run produced.

    Attributes:
        simulation: the online scheduling outcome (history + metrics).
        trace: the data-level execution of the committed history.
        verified: the offline correctness verdict — relative
            serializability when the scheduler carries a spec
            (``scheduler.spec``), conflict serializability otherwise.
    """

    simulation: SimulationResult
    trace: ExecutionTrace
    verified: bool


def run_workload(
    bundle: WorkloadBundle,
    scheduler: Scheduler,
    arrivals: Mapping[int, int] | None = None,
    backoff: int = 2,
    max_ticks: int = 100_000,
) -> WorkloadRun:
    """Schedule ``bundle`` with ``scheduler``, execute, and verify.

    Args:
        bundle: a scenario workload (transactions, spec, data,
            semantics).
        scheduler: any online protocol instance.
        arrivals: optional per-transaction arrival ticks.
        backoff: restart backoff passed to the simulator.
        max_ticks: livelock guard.
    """
    simulation = simulate_bundle(
        bundle,
        scheduler,
        arrivals=arrivals,
        backoff=backoff,
        max_ticks=max_ticks,
    )
    trace = ScheduleExecutor(bundle.initial_state, bundle.semantics).run(
        simulation.schedule
    )
    if hasattr(scheduler, "spec"):
        verified = is_relatively_serializable(
            simulation.schedule, scheduler.spec
        )
    else:
        verified = is_conflict_serializable(simulation.schedule)
    return WorkloadRun(simulation=simulation, trace=trace, verified=verified)
