"""Discrete-event transaction simulator.

Drives a :class:`~repro.protocols.base.Scheduler` with a transaction set
and measures the outcome: the committed history (a real
:class:`~repro.core.schedules.Schedule` the theory tools can re-verify),
throughput, response times, waits, and restarts.

* :mod:`~repro.sim.runner` — the tick loop;
* :mod:`~repro.sim.metrics` — the result/metric dataclasses;
* :mod:`~repro.sim.arrivals` — arrival processes for open-system runs;
* :mod:`~repro.sim.batch` — batched (optionally multi-process) runs;
* :mod:`~repro.sim.pipeline` — schedule-execute-verify in one call.
"""

from repro.sim.arrivals import (
    burst_arrivals,
    role_delayed_arrivals,
    uniform_arrivals,
)
from repro.sim.batch import SimulationTask, run_batch, simulate_batch
from repro.sim.metrics import SimulationResult, TransactionOutcome
from repro.sim.pipeline import WorkloadRun, run_workload
from repro.sim.runner import simulate, simulate_bundle

__all__ = [
    "simulate",
    "simulate_bundle",
    "SimulationTask",
    "run_batch",
    "simulate_batch",
    "SimulationResult",
    "TransactionOutcome",
    "uniform_arrivals",
    "burst_arrivals",
    "role_delayed_arrivals",
    "WorkloadRun",
    "run_workload",
]
