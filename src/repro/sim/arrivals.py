"""Arrival processes for the simulator.

The closed-system experiments start every transaction at tick 0; these
helpers build staggered arrival maps so protocols can also be compared
under open-system load — where a long transaction is already mid-flight
when short ones arrive, which is precisely the regime the paper's
Section 5 discussion targets.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.transactions import Transaction

__all__ = ["uniform_arrivals", "burst_arrivals", "role_delayed_arrivals"]


def uniform_arrivals(
    transactions: Sequence[Transaction],
    interarrival: int,
) -> dict[int, int]:
    """Transactions arrive one every ``interarrival`` ticks, in id order."""
    if interarrival < 0:
        raise ValueError("interarrival must be non-negative")
    ordered = sorted(tx.tx_id for tx in transactions)
    return {
        tx_id: index * interarrival for index, tx_id in enumerate(ordered)
    }


def burst_arrivals(
    transactions: Sequence[Transaction],
    mean_gap: float,
    seed: int | random.Random = 0,
) -> dict[int, int]:
    """Geometric (memoryless) inter-arrival gaps with the given mean.

    The discrete analogue of Poisson arrivals; deterministic per seed.
    """
    if mean_gap < 0:
        raise ValueError("mean_gap must be non-negative")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    ordered = sorted(tx.tx_id for tx in transactions)
    arrivals: dict[int, int] = {}
    tick = 0
    p = 1.0 / (mean_gap + 1.0)
    for tx_id in ordered:
        arrivals[tx_id] = tick
        gap = 0
        while rng.random() > p:
            gap += 1
        tick += gap
    return arrivals


def role_delayed_arrivals(
    transactions: Sequence[Transaction],
    roles: dict[int, str],
    delays: dict[str, int],
) -> dict[int, int]:
    """Per-role arrival delays (e.g. the long scanner first, shorts later).

    Roles missing from ``delays`` arrive at tick 0.
    """
    return {
        tx.tx_id: delays.get(roles.get(tx.tx_id, ""), 0)
        for tx in transactions
    }
