"""Long-lived transactions with early visibility (Section 5, [SGMA87]).

The paper argues relative atomicity naturally generalizes altruistic
locking: a long-lived transaction "does not need to be atomic for its
entire duration with respect to all other transactions" — it can expose
breakpoints after finishing with each object, letting short transactions
run in its wake.

This workload builds exactly that mix:

* one (or a few) **long** transaction scanning a range of objects
  (read+update each), exposing a breakpoint to everyone after each object
  is finished (the donate point of altruistic locking);
* many **short** transactions touching one or two objects, atomic with
  respect to everything.

Under the absolute spec, the long transaction serializes against every
short one (2PL makes the shorts queue behind it).  Under the relative
spec, shorts slip between the long transaction's units — the concurrency
gain the benchmark (E10) measures.
"""

from __future__ import annotations

import random

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation, read, write
from repro.core.transactions import Transaction
from repro.engine.executor import Semantics
from repro.workloads.base import WorkloadBundle

__all__ = ["LongLivedWorkload"]


class LongLivedWorkload:
    """Builder for the long-lived transaction scenario.

    Args:
        n_objects: size of the object pool the long transactions scan.
        n_long: number of long transactions (each scans all objects).
        n_short: number of short transactions.
        short_ops: objects each short transaction touches (read+write
            pairs).
        relative: when ``True`` long transactions expose per-object
            breakpoints; when ``False`` the spec is fully absolute (the
            2PL-style baseline configuration).
        seed: RNG seed for the short transactions' object choices.
    """

    def __init__(
        self,
        n_objects: int = 6,
        n_long: int = 1,
        n_short: int = 4,
        short_ops: int = 1,
        relative: bool = True,
        seed: int = 0,
    ) -> None:
        if n_objects < 1 or n_long < 0 or n_short < 0:
            raise ValueError("workload sizes must be non-negative")
        if n_long + n_short == 0:
            raise ValueError("workload needs at least one transaction")
        if short_ops < 1:
            raise ValueError("short transactions need at least one object")
        self._n_objects = n_objects
        self._n_long = n_long
        self._n_short = n_short
        self._short_ops = short_ops
        self._relative = relative
        self._seed = seed

    def build(self) -> WorkloadBundle:
        """Construct the transaction set, spec, semantics, and state."""
        rng = random.Random(self._seed)
        objects = [f"x{i}" for i in range(self._n_objects)]
        transactions: list[Transaction] = []
        roles: dict[int, str] = {}
        semantics = Semantics()
        next_id = 1

        for _ in range(self._n_long):
            ops: list[Operation] = []
            for obj in objects:
                ops.extend([read(obj), write(obj)])
            transactions.append(Transaction(next_id, ops))
            roles[next_id] = "long"
            for position in range(1, len(ops), 2):
                semantics.set_effect(next_id, position, _bump)
            next_id += 1

        for _ in range(self._n_short):
            chosen = rng.sample(objects, min(self._short_ops, len(objects)))
            ops = []
            for obj in chosen:
                ops.extend([read(obj), write(obj)])
            transactions.append(Transaction(next_id, ops))
            roles[next_id] = "short"
            for position in range(1, len(ops), 2):
                semantics.set_effect(next_id, position, _bump)
            next_id += 1

        views: dict[tuple[int, int], object] = {}
        if self._relative:
            for tx in transactions:
                if roles[tx.tx_id] != "long":
                    continue
                # Donate point after each object's read+write pair.
                cuts = list(range(2, len(tx), 2))
                for observer in transactions:
                    if observer.tx_id != tx.tx_id:
                        views[(tx.tx_id, observer.tx_id)] = cuts
        spec = RelativeAtomicitySpec(transactions, views)

        return WorkloadBundle(
            name="long-lived",
            transactions=transactions,
            spec=spec,
            initial_state={obj: 0 for obj in objects},
            semantics=semantics,
            roles=roles,
            metadata={
                "objects": objects,
                "relative": self._relative,
            },
        )


def _bump(current, _reads):
    """Write effect: increment the object's counter."""
    return (current or 0) + 1
