"""Seeded random generators for transactions and schedules.

Used by the acceptance-rate experiment (E9), the randomized agreement
tests (Theorem 1 / Lemma 1 on instances too large to enumerate), and the
hypothesis-based property tests as a fallback strategy.

Everything takes an explicit seed (or a pre-seeded ``random.Random``) so
experiments are reproducible run to run.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.operations import Operation, read, write
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction

__all__ = ["random_transactions", "random_interleaving", "random_schedules"]


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_transactions(
    n_transactions: int,
    ops_per_transaction: int | tuple[int, int],
    n_objects: int,
    write_probability: float = 0.5,
    seed: int | random.Random = 0,
) -> list[Transaction]:
    """Generate a random transaction set.

    Args:
        n_transactions: how many transactions (ids ``1..n``).
        ops_per_transaction: a fixed length, or an inclusive ``(lo, hi)``
            range sampled per transaction.
        n_objects: size of the object pool (objects named ``x0..``).
        write_probability: probability each operation is a write.
        seed: an ``int`` or a pre-seeded ``random.Random``.
    """
    if n_transactions < 1:
        raise ValueError("need at least one transaction")
    if n_objects < 1:
        raise ValueError("need at least one object")
    if not 0.0 <= write_probability <= 1.0:
        raise ValueError("write_probability must be in [0, 1]")
    rng = _rng(seed)
    objects = [f"x{i}" for i in range(n_objects)]
    transactions = []
    for tx_id in range(1, n_transactions + 1):
        if isinstance(ops_per_transaction, tuple):
            lo, hi = ops_per_transaction
            length = rng.randint(lo, hi)
        else:
            length = ops_per_transaction
        if length < 1:
            raise ValueError("transactions need at least one operation")
        ops: list[Operation] = []
        for _ in range(length):
            obj = rng.choice(objects)
            if rng.random() < write_probability:
                ops.append(write(obj))
            else:
                ops.append(read(obj))
        transactions.append(Transaction(tx_id, ops))
    return transactions


def random_interleaving(
    transactions: Sequence[Transaction],
    seed: int | random.Random = 0,
) -> Schedule:
    """A uniformly random schedule over ``transactions``.

    Sampling is uniform over all interleavings: at each step the next
    transaction is chosen with probability proportional to its remaining
    operation count (the standard riffle-shuffle argument).
    """
    rng = _rng(seed)
    remaining = {tx.tx_id: list(tx.operations) for tx in transactions}
    order: list[Operation] = []
    while any(remaining.values()):
        population = [
            tx_id for tx_id, ops in remaining.items() for _ in ops
        ]
        tx_id = rng.choice(population)
        order.append(remaining[tx_id].pop(0))
    return Schedule(list(transactions), order)


def random_schedules(
    transactions: Sequence[Transaction],
    count: int,
    seed: int | random.Random = 0,
) -> list[Schedule]:
    """``count`` independent uniform random schedules (may repeat)."""
    rng = _rng(seed)
    return [random_interleaving(transactions, rng) for _ in range(count)]
