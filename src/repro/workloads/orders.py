"""An order-processing scenario (TPC-C-flavoured, scaled down).

The classic OLTP shape where relaxed atomicity earns its keep:

* **new-order** transactions (short, hot): bump one district's pending
  order count, decrement stock for one item, add revenue;
* **payment** transactions (short): add revenue to one district;
* **delivery** transactions (long): sweep *every* district, clearing
  its pending orders — the notorious TPC-C long transaction that, under
  strict 2PL, stalls every new-order behind the sweep;
* **stock-scan** transactions (read-only): read a range of stock
  levels for reporting.

Relative atomicity assignments:

* delivery exposes a breakpoint after each district it clears — the
  per-district donate point ([SGMA87] applied to the textbook case);
* the stock-scan exposes breakpoints between its reads relative to the
  short transactions (an approximate report tolerates a moving target)
  but stays atomic relative to delivery (a report straddling a
  half-done sweep would be misleading);
* new-order and payment transactions are atomic to everyone.

Semantics are counter-based, so the bookkeeping invariants
(orders placed = orders pending + orders delivered; stock conservation;
revenue conservation) hold in every execution the engine replays, and
the tests check them on simulated histories.
"""

from __future__ import annotations

import random

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation, read, write
from repro.core.transactions import Transaction
from repro.engine.executor import Semantics
from repro.workloads.base import WorkloadBundle

__all__ = ["OrderProcessingWorkload"]


class OrderProcessingWorkload:
    """Builder for the order-processing scenario.

    Args:
        n_districts: districts the delivery sweep covers.
        n_items: distinct stock items.
        n_new_orders: new-order transactions.
        n_payments: payment transactions.
        include_delivery: one full-sweep delivery transaction.
        include_stock_scan: one read-only stock report.
        initial_stock: starting stock per item.
        seed: RNG seed for item/district choices.
    """

    def __init__(
        self,
        n_districts: int = 2,
        n_items: int = 3,
        n_new_orders: int = 3,
        n_payments: int = 1,
        include_delivery: bool = True,
        include_stock_scan: bool = True,
        initial_stock: int = 50,
        seed: int = 0,
    ) -> None:
        if n_districts < 1 or n_items < 1:
            raise ValueError("need at least one district and one item")
        if n_new_orders < 0 or n_payments < 0:
            raise ValueError("transaction counts must be non-negative")
        self._n_districts = n_districts
        self._n_items = n_items
        self._n_new_orders = n_new_orders
        self._n_payments = n_payments
        self._include_delivery = include_delivery
        self._include_stock_scan = include_stock_scan
        self._initial_stock = initial_stock
        self._seed = seed

    @staticmethod
    def pending(district: int) -> str:
        """Pending-order counter of one district."""
        return f"d{district}_pending"

    @staticmethod
    def delivered(district: int) -> str:
        """Delivered-order counter of one district."""
        return f"d{district}_delivered"

    @staticmethod
    def revenue(district: int) -> str:
        """Revenue accumulator of one district."""
        return f"d{district}_rev"

    @staticmethod
    def stock(item: int) -> str:
        """Stock level of one item."""
        return f"s{item}"

    def build(self) -> WorkloadBundle:
        """Construct the transaction set, spec, semantics, and state."""
        rng = random.Random(self._seed)
        transactions: list[Transaction] = []
        roles: dict[int, str] = {}
        semantics = Semantics()
        next_id = 1

        def add(tx_role: str, ops: list[Operation]) -> int:
            nonlocal next_id
            transactions.append(Transaction(next_id, ops))
            roles[next_id] = tx_role
            tx_id = next_id
            next_id += 1
            return tx_id

        # New orders: read+bump pending, read+decrement stock,
        # read+add revenue.
        for _ in range(self._n_new_orders):
            district = rng.randrange(self._n_districts)
            item = rng.randrange(self._n_items)
            amount = rng.randint(1, 5)
            ops = [
                read(self.pending(district)),
                write(self.pending(district)),
                read(self.stock(item)),
                write(self.stock(item)),
                read(self.revenue(district)),
                write(self.revenue(district)),
            ]
            tx_id = add("new-order", ops)
            semantics.set_effect(tx_id, 1, _delta(+1))
            semantics.set_effect(tx_id, 3, _delta(-1))
            semantics.set_effect(tx_id, 5, _delta(+amount))

        # Payments: read+add revenue.
        for _ in range(self._n_payments):
            district = rng.randrange(self._n_districts)
            amount = rng.randint(1, 10)
            ops = [
                read(self.revenue(district)),
                write(self.revenue(district)),
            ]
            tx_id = add("payment", ops)
            semantics.set_effect(tx_id, 1, _delta(+amount))

        # Delivery: sweep all districts, moving pending -> delivered.
        delivery_id = None
        if self._include_delivery:
            ops = []
            for district in range(self._n_districts):
                ops.extend(
                    [
                        read(self.pending(district)),
                        write(self.pending(district)),
                        read(self.delivered(district)),
                        write(self.delivered(district)),
                    ]
                )
            delivery_id = add("delivery", ops)
            for district in range(self._n_districts):
                base = district * 4
                semantics.set_effect(
                    delivery_id, base + 1, _clear_pending
                )
                semantics.set_effect(
                    delivery_id,
                    base + 3,
                    _absorb_pending(self.pending(district)),
                )

        # Stock scan: read every stock level.
        scan_id = None
        if self._include_stock_scan:
            ops = [read(self.stock(item)) for item in range(self._n_items)]
            scan_id = add("stock-scan", ops)

        spec = self._build_spec(transactions, roles, delivery_id, scan_id)
        initial_state: dict[str, int] = {}
        for district in range(self._n_districts):
            initial_state[self.pending(district)] = 0
            initial_state[self.delivered(district)] = 0
            initial_state[self.revenue(district)] = 0
        for item in range(self._n_items):
            initial_state[self.stock(item)] = self._initial_stock
        return WorkloadBundle(
            name="order-processing",
            transactions=transactions,
            spec=spec,
            initial_state=initial_state,
            semantics=semantics,
            roles=roles,
            metadata={
                "n_districts": self._n_districts,
                "n_items": self._n_items,
                "initial_stock": self._initial_stock,
                "delivery_id": delivery_id,
                "scan_id": scan_id,
            },
        )

    def _build_spec(
        self,
        transactions: list[Transaction],
        roles: dict[int, str],
        delivery_id: int | None,
        scan_id: int | None,
    ) -> RelativeAtomicitySpec:
        views: dict[tuple[int, int], object] = {}
        for tx in transactions:
            for observer in transactions:
                if tx.tx_id == observer.tx_id:
                    continue
                if tx.tx_id == delivery_id:
                    # Donate point after each district's clear+absorb.
                    views[(tx.tx_id, observer.tx_id)] = list(
                        range(4, len(tx), 4)
                    )
                elif tx.tx_id == scan_id and roles[observer.tx_id] in (
                    "new-order",
                    "payment",
                ):
                    # Approximate report: shorts may slip between reads.
                    views[(tx.tx_id, observer.tx_id)] = list(
                        range(1, len(tx))
                    )
                # Everything else stays absolute (the default).
        return RelativeAtomicitySpec(transactions, views)


def _delta(amount: int):
    """Write effect: add ``amount`` to the counter (atomic increment)."""

    def effect(current, _reads):
        return (current or 0) + amount

    return effect


def _clear_pending(_current, _reads):
    """Write effect: reset a district's pending counter."""
    return 0


def _absorb_pending(pending_object: str):
    """Write effect: add the pending count just read to ``delivered``."""

    def effect(current, reads):
        return (current or 0) + reads[pending_object]

    return effect
