"""Shared shape for the scenario workloads.

Each scenario (banking, CAD, long-lived) builds a :class:`WorkloadBundle`:
the transaction set, the relative atomicity specification expressing the
scenario's collaboration structure, the initial database state, write
semantics for the execution engine, and a role label per transaction so
results can be reported per transaction kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.transactions import Transaction
from repro.engine.executor import Semantics

__all__ = ["WorkloadBundle"]


@dataclass
class WorkloadBundle:
    """Everything a scenario produces.

    Attributes:
        name: scenario name.
        transactions: the transaction set.
        spec: the scenario's relative atomicity specification.
        initial_state: database contents before any execution.
        semantics: write effects for the execution engine.
        roles: transaction id -> role label (``"customer"``,
            ``"bank-audit"``, ``"designer"``, ...).
        metadata: scenario-specific extras (family membership, team
            membership, expected invariant values, ...).
    """

    name: str
    transactions: list[Transaction]
    spec: RelativeAtomicitySpec
    initial_state: dict[str, Any]
    semantics: Semantics
    roles: dict[int, str] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def transactions_with_role(self, role: str) -> list[Transaction]:
        """The transactions whose role label equals ``role``."""
        return [
            tx for tx in self.transactions if self.roles.get(tx.tx_id) == role
        ]

    def __repr__(self) -> str:
        return (
            f"WorkloadBundle({self.name!r}, "
            f"{len(self.transactions)} transactions)"
        )
