"""Workload generators.

* :mod:`~repro.workloads.enumerate` — exhaustive enumeration of all
  interleavings of a transaction set (the ground set for the Figure 5
  class-counting experiment);
* :mod:`~repro.workloads.random_schedules` — seeded random transaction
  sets, schedules, and interleavings;
* :mod:`~repro.workloads.banking` — Lynch's motivating banking scenario
  (families of accounts, customer transactions, credit and bank audits);
* :mod:`~repro.workloads.cad` — the CAD/CAM collaborative-teams scenario;
* :mod:`~repro.workloads.longlived` — long-lived transactions mixed with
  short ones (the altruistic-locking discussion of Section 5);
* :mod:`~repro.workloads.orders` — a TPC-C-flavoured order-processing
  mix with a delivery sweep as the long transaction.
"""

from repro.workloads.banking import BankingWorkload
from repro.workloads.cad import CadWorkload
from repro.workloads.enumerate import all_interleavings, count_interleavings
from repro.workloads.longlived import LongLivedWorkload
from repro.workloads.orders import OrderProcessingWorkload
from repro.workloads.random_schedules import (
    random_interleaving,
    random_transactions,
)

__all__ = [
    "all_interleavings",
    "count_interleavings",
    "random_transactions",
    "random_interleaving",
    "BankingWorkload",
    "CadWorkload",
    "LongLivedWorkload",
    "OrderProcessingWorkload",
]
