"""Exhaustive enumeration of schedules over a transaction set.

The number of schedules over transactions of lengths ``n1 .. nk`` is the
multinomial coefficient ``(n1 + ... + nk)! / (n1! ... nk!)``; these
functions enumerate all of them (program order is forced, so choosing a
schedule is choosing which transaction emits next).  Only sensible at
small sizes — which is exactly what the Figure 5 class-census experiment
and the exhaustive Lemma 1 / Theorem 1 agreement tests need.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.rsg import IncrementalRsg, RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.errors import InvalidTransactionError

__all__ = [
    "all_interleavings",
    "count_interleavings",
    "interleaving_blocks",
    "interleavings_block",
    "rank_interleaving",
    "rsg_interleavings",
    "shared_prefix_rsgs",
    "unrank_interleaving",
]


def _checked_programs(
    transactions: Sequence[Transaction],
) -> dict[int, tuple[Operation, ...]]:
    """Programs by id, rejecting duplicate ids and skipping empty ones."""
    programs: dict[int, tuple[Operation, ...]] = {}
    for tx in transactions:
        if tx.tx_id in programs:
            raise InvalidTransactionError(
                f"duplicate transaction id T{tx.tx_id}: interleavings are "
                "only defined over a set of distinct transactions"
            )
        programs[tx.tx_id] = tuple(tx.operations)
    return {tx_id: ops for tx_id, ops in programs.items() if ops}


def _multinomial(remaining: Sequence[int]) -> int:
    """Schedules over transactions with ``remaining[i]`` ops left each."""
    count = math.factorial(sum(remaining))
    for length in remaining:
        count //= math.factorial(length)
    return count


def count_interleavings(transactions: Sequence[Transaction]) -> int:
    """The exact number of schedules over ``transactions``.

    An empty transaction sequence has exactly one (empty) schedule;
    transactions with no operations contribute a factor of one.
    Duplicate transaction ids are rejected.
    """
    programs = _checked_programs(transactions)
    return _multinomial([len(ops) for ops in programs.values()])


def all_interleavings(
    transactions: Sequence[Transaction],
) -> Iterator[Schedule]:
    """Yield every schedule over ``transactions``, in a deterministic
    (lexicographic-by-transaction-id) order.

    The generator is lazy; combine with ``itertools.islice`` for sampling
    a prefix, or iterate fully for a census.  See
    :func:`count_interleavings` before iterating fully.
    """
    return interleavings_block(transactions, 0, None)


def rank_interleaving(schedule: Schedule) -> int:
    """The lexicographic index of ``schedule`` among all interleavings.

    The inverse of :func:`unrank_interleaving`: at each position, count
    the subtrees of smaller-id choices (each a multinomial over the
    remaining operation counts) that the enumeration would have visited
    first.
    """
    programs = _checked_programs(schedule.transaction_list)
    tx_ids = sorted(programs)
    remaining = {tx_id: len(programs[tx_id]) for tx_id in tx_ids}
    rank = 0
    for op in schedule.operations:
        for tx_id in tx_ids:
            if tx_id == op.tx:
                break
            if remaining[tx_id] == 0:
                continue
            remaining[tx_id] -= 1
            rank += _multinomial(list(remaining.values()))
            remaining[tx_id] += 1
        remaining[op.tx] -= 1
    return rank


def unrank_interleaving(
    transactions: Sequence[Transaction], index: int
) -> Schedule:
    """The schedule at lexicographic ``index`` (0-based), directly.

    Cost is O(total ops x transactions) multinomial evaluations — no
    enumeration of the preceding schedules.  ``unrank(rank(s)) == s``
    for every schedule ``s``, and ``unrank(i)`` is the ``i``-th element
    of :func:`all_interleavings`.
    """
    programs = _checked_programs(transactions)
    total = count_interleavings(transactions)
    if not 0 <= index < total:
        raise IndexError(
            f"interleaving index {index} out of range [0, {total})"
        )
    tx_ids = sorted(programs)
    remaining = {tx_id: len(programs[tx_id]) for tx_id in tx_ids}
    cursor = {tx_id: 0 for tx_id in tx_ids}
    order: list[Operation] = []
    for _ in range(sum(remaining.values())):
        for tx_id in tx_ids:
            if remaining[tx_id] == 0:
                continue
            remaining[tx_id] -= 1
            subtree = _multinomial(list(remaining.values()))
            if index < subtree:
                order.append(programs[tx_id][cursor[tx_id]])
                cursor[tx_id] += 1
                break
            index -= subtree
            remaining[tx_id] += 1
    return Schedule(list(transactions), order)


def interleavings_block(
    transactions: Sequence[Transaction],
    start: int = 0,
    stop: int | None = None,
) -> Iterator[Schedule]:
    """Yield the schedules with lexicographic ranks in ``[start, stop)``.

    Equivalent to islicing :func:`all_interleavings` but *skips* the
    preceding schedules outright: the choice tree is walked with the
    subtree sizes (multinomials over remaining operation counts), and
    subtrees entirely outside the window are pruned without being
    entered.  Concatenating the blocks of a partition of ``[0, total)``
    reproduces the full enumeration exactly — the property the parallel
    sweep engine is built on.
    """
    programs = _checked_programs(transactions)
    tx_ids = sorted(programs)
    total = sum(len(ops) for ops in programs.values())
    count = _multinomial([len(programs[tx_id]) for tx_id in tx_ids])
    if stop is None or stop > count:
        stop = count
    if start < 0:
        raise IndexError(f"block start {start} must be non-negative")
    transactions = list(transactions)
    if start >= stop:
        return
    if total == 0:
        yield Schedule(transactions, [])
        return
    cursor = {tx_id: 0 for tx_id in tx_ids}
    remaining = {tx_id: len(programs[tx_id]) for tx_id in tx_ids}
    prefix: list[Operation] = []

    def descend_all() -> Iterator[list[Operation]]:
        # Fast path for subtrees entirely inside the window: plain
        # lexicographic enumeration, no subtree-size arithmetic.
        if len(prefix) == total:
            yield list(prefix)
            return
        for tx_id in tx_ids:
            if remaining[tx_id] == 0:
                continue
            prefix.append(programs[tx_id][cursor[tx_id]])
            cursor[tx_id] += 1
            remaining[tx_id] -= 1
            yield from descend_all()
            remaining[tx_id] += 1
            cursor[tx_id] -= 1
            prefix.pop()

    def extend(offset: int) -> Iterator[list[Operation]]:
        # ``offset`` is the rank of the first leaf under this node; only
        # nodes straddling a window boundary pay for subtree counting.
        if len(prefix) == total:
            yield list(prefix)
            return
        for tx_id in tx_ids:
            if remaining[tx_id] == 0:
                continue
            remaining[tx_id] -= 1
            subtree = _multinomial(list(remaining.values()))
            if offset + subtree <= start or offset >= stop:
                remaining[tx_id] += 1
                offset += subtree
                continue
            prefix.append(programs[tx_id][cursor[tx_id]])
            cursor[tx_id] += 1
            if start <= offset and offset + subtree <= stop:
                yield from descend_all()
            else:
                yield from extend(offset)
            cursor[tx_id] -= 1
            remaining[tx_id] += 1
            prefix.pop()
            offset += subtree

    for order in extend(0):
        yield Schedule(transactions, order)


def interleaving_blocks(
    transactions: Sequence[Transaction], blocks: int
) -> list[tuple[int, int]]:
    """Split ``[0, count_interleavings())`` into ``blocks`` contiguous
    near-equal ``(start, stop)`` windows (empty windows omitted).
    """
    if blocks < 1:
        raise ValueError("need at least one block")
    total = count_interleavings(transactions)
    base, extra = divmod(total, blocks)
    bounds = []
    start = 0
    for i in range(blocks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        bounds.append((start, start + size))
        start += size
    return bounds


def shared_prefix_rsgs(
    spec: RelativeAtomicitySpec,
    schedules: Iterable[Schedule],
    *,
    engine: IncrementalRsg | None = None,
) -> Iterator[tuple[Schedule, RelativeSerializationGraph]]:
    """Yield ``(schedule, RSG(schedule))`` pairs, sharing prefix work.

    One :class:`~repro.core.rsg.IncrementalRsg` is kept alive across the
    whole stream: between consecutive schedules the engine pops back to
    the longest common prefix and pushes only the delta, so the cost of
    classifying a schedule is proportional to how much it *differs* from
    its predecessor rather than to its length squared.  The payoff is
    large exactly when the stream is sorted — lexicographic enumeration
    (:func:`rsg_interleavings`) or a sorted random population — and the
    semantics are unchanged (each pair is a faithful RSG) for any order.

    ``engine`` lets warm workers reuse one engine across many streams:
    it must have been built for ``spec`` with ``maintain_reach=True``
    and have the spec's transactions declared; it is reset (history
    popped, declarations and allocated buffers kept) before streaming.

    The yielded RSG *borrows* the engine's live graph: its ``graph``
    (and anything derived from it) is only valid until the next
    iteration step, which is exactly the census/containment access
    pattern.  ``is_acyclic``, ``cycle``, and ``dependency`` stay valid
    because they are materialized per yield.  For cyclic schedules the
    borrowed graph omits arcs of operations past the first
    cycle-closing one; the reported witness is still a genuine cycle of
    the full RSG (monotonicity: arcs only accumulate along a prefix).
    """
    if engine is None:
        engine = IncrementalRsg(spec, maintain_reach=True)
        for transaction in spec.transaction_list:
            engine.add_transaction(transaction)
    else:
        engine.reset()
    current: list[Operation] = []
    for schedule in schedules:
        ops = schedule.operations
        keep = 0
        limit = min(len(current), len(ops))
        while keep < limit and current[keep] == ops[keep]:
            keep += 1
        while len(current) > keep:
            engine.pop()
            current.pop()
        for op in ops[keep:]:
            if engine.acyclic:
                if not engine.try_push(op):
                    engine.push_uncertified(op)
            else:
                engine.push_uncertified(op)
            current.append(op)
        yield schedule, engine.materialize(schedule, copy_graph=False)


def rsg_interleavings(
    transactions: Sequence[Transaction],
    spec: RelativeAtomicitySpec,
) -> Iterator[tuple[Schedule, RelativeSerializationGraph]]:
    """Yield every schedule together with its RSG, sharing prefixes.

    Consecutive schedules from :func:`all_interleavings` differ only in
    a suffix, so running them through :func:`shared_prefix_rsgs` turns
    the census's per-schedule O(n^2) closure-and-arcs rebuild into a
    push/pop delta — the workhorse behind
    :func:`~repro.analysis.classes.census_exhaustive`.
    """
    return shared_prefix_rsgs(spec, all_interleavings(transactions))
