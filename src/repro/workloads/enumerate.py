"""Exhaustive enumeration of schedules over a transaction set.

The number of schedules over transactions of lengths ``n1 .. nk`` is the
multinomial coefficient ``(n1 + ... + nk)! / (n1! ... nk!)``; these
functions enumerate all of them (program order is forced, so choosing a
schedule is choosing which transaction emits next).  Only sensible at
small sizes — which is exactly what the Figure 5 class-census experiment
and the exhaustive Lemma 1 / Theorem 1 agreement tests need.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation
from repro.core.rsg import IncrementalRsg, RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction

__all__ = [
    "all_interleavings",
    "count_interleavings",
    "rsg_interleavings",
    "shared_prefix_rsgs",
]


def count_interleavings(transactions: Sequence[Transaction]) -> int:
    """The exact number of schedules over ``transactions``."""
    total = sum(len(tx) for tx in transactions)
    count = math.factorial(total)
    for tx in transactions:
        count //= math.factorial(len(tx))
    return count


def all_interleavings(
    transactions: Sequence[Transaction],
) -> Iterator[Schedule]:
    """Yield every schedule over ``transactions``, in a deterministic
    (lexicographic-by-transaction-id) order.

    The generator is lazy; combine with ``itertools.islice`` for sampling
    a prefix, or iterate fully for a census.  See
    :func:`count_interleavings` before iterating fully.
    """
    programs = {tx.tx_id: tx.operations for tx in transactions}
    tx_ids = sorted(programs)
    total = sum(len(ops) for ops in programs.values())
    cursor = {tx_id: 0 for tx_id in tx_ids}
    prefix: list[Operation] = []

    def extend() -> Iterator[list[Operation]]:
        if len(prefix) == total:
            yield list(prefix)
            return
        for tx_id in tx_ids:
            index = cursor[tx_id]
            if index >= len(programs[tx_id]):
                continue
            prefix.append(programs[tx_id][index])
            cursor[tx_id] += 1
            yield from extend()
            cursor[tx_id] -= 1
            prefix.pop()

    transactions = list(transactions)
    for order in extend():
        yield Schedule(transactions, order)


def shared_prefix_rsgs(
    spec: RelativeAtomicitySpec,
    schedules: Iterable[Schedule],
) -> Iterator[tuple[Schedule, RelativeSerializationGraph]]:
    """Yield ``(schedule, RSG(schedule))`` pairs, sharing prefix work.

    One :class:`~repro.core.rsg.IncrementalRsg` is kept alive across the
    whole stream: between consecutive schedules the engine pops back to
    the longest common prefix and pushes only the delta, so the cost of
    classifying a schedule is proportional to how much it *differs* from
    its predecessor rather than to its length squared.  The payoff is
    large exactly when the stream is sorted — lexicographic enumeration
    (:func:`rsg_interleavings`) or a sorted random population — and the
    semantics are unchanged (each pair is a faithful RSG) for any order.

    The yielded RSG *borrows* the engine's live graph: its ``graph``
    (and anything derived from it) is only valid until the next
    iteration step, which is exactly the census/containment access
    pattern.  ``is_acyclic``, ``cycle``, and ``dependency`` stay valid
    because they are materialized per yield.  For cyclic schedules the
    borrowed graph omits arcs of operations past the first
    cycle-closing one; the reported witness is still a genuine cycle of
    the full RSG (monotonicity: arcs only accumulate along a prefix).
    """
    transactions = list(spec.transaction_list)
    engine = IncrementalRsg(spec, maintain_reach=True)
    for transaction in transactions:
        engine.add_transaction(transaction)
    current: list[Operation] = []
    for schedule in schedules:
        ops = schedule.operations
        keep = 0
        limit = min(len(current), len(ops))
        while keep < limit and current[keep] == ops[keep]:
            keep += 1
        while len(current) > keep:
            engine.pop()
            current.pop()
        for op in ops[keep:]:
            if engine.acyclic:
                if not engine.try_push(op):
                    engine.push_uncertified(op)
            else:
                engine.push_uncertified(op)
            current.append(op)
        yield schedule, engine.materialize(schedule, copy_graph=False)


def rsg_interleavings(
    transactions: Sequence[Transaction],
    spec: RelativeAtomicitySpec,
) -> Iterator[tuple[Schedule, RelativeSerializationGraph]]:
    """Yield every schedule together with its RSG, sharing prefixes.

    Consecutive schedules from :func:`all_interleavings` differ only in
    a suffix, so running them through :func:`shared_prefix_rsgs` turns
    the census's per-schedule O(n^2) closure-and-arcs rebuild into a
    push/pop delta — the workhorse behind
    :func:`~repro.analysis.classes.census_exhaustive`.
    """
    return shared_prefix_rsgs(spec, all_interleavings(transactions))
