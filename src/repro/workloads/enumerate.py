"""Exhaustive enumeration of schedules over a transaction set.

The number of schedules over transactions of lengths ``n1 .. nk`` is the
multinomial coefficient ``(n1 + ... + nk)! / (n1! ... nk!)``; these
functions enumerate all of them (program order is forced, so choosing a
schedule is choosing which transaction emits next).  Only sensible at
small sizes — which is exactly what the Figure 5 class-census experiment
and the exhaustive Lemma 1 / Theorem 1 agreement tests need.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from repro.core.operations import Operation
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction

__all__ = ["all_interleavings", "count_interleavings"]


def count_interleavings(transactions: Sequence[Transaction]) -> int:
    """The exact number of schedules over ``transactions``."""
    total = sum(len(tx) for tx in transactions)
    count = math.factorial(total)
    for tx in transactions:
        count //= math.factorial(len(tx))
    return count


def all_interleavings(
    transactions: Sequence[Transaction],
) -> Iterator[Schedule]:
    """Yield every schedule over ``transactions``, in a deterministic
    (lexicographic-by-transaction-id) order.

    The generator is lazy; combine with ``itertools.islice`` for sampling
    a prefix, or iterate fully for a census.  See
    :func:`count_interleavings` before iterating fully.
    """
    programs = {tx.tx_id: tx.operations for tx in transactions}
    tx_ids = sorted(programs)
    total = sum(len(ops) for ops in programs.values())
    cursor = {tx_id: 0 for tx_id in tx_ids}
    prefix: list[Operation] = []

    def extend() -> Iterator[list[Operation]]:
        if len(prefix) == total:
            yield list(prefix)
            return
        for tx_id in tx_ids:
            index = cursor[tx_id]
            if index >= len(programs[tx_id]):
                continue
            prefix.append(programs[tx_id][index])
            cursor[tx_id] += 1
            yield from extend()
            cursor[tx_id] -= 1
            prefix.pop()

    transactions = list(transactions)
    for order in extend():
        yield Schedule(transactions, order)
