"""The CAD/CAM collaborative-design scenario (Sections 1 and 5).

Users are partitioned into *teams* of specialized experts.  Each designer
transaction edits a sequence of parts owned by its team (read the part,
write the part) and finally reads the shared *interface* object that
connects the subsystems.  The collaboration structure maps directly onto
Lynch-style multilevel atomicity, which this workload builds through
:func:`repro.specs.multilevel.multilevel_spec`:

* designers on the same team interleave freely (finest, depth-1 cuts at
  every position);
* across teams, a designer exposes breakpoints only at *part boundaries*
  (a part edit is the unit of consistency other teams may observe);
* the root level exposes the same part-boundary cuts, so the hierarchy is
  trivially nested.

Semantics: each edit bumps a part's revision counter, and the final
interface read lets examples check which revisions each designer observed.
"""

from __future__ import annotations

import random

from repro.core.operations import Operation, read, write
from repro.core.transactions import Transaction
from repro.engine.executor import Semantics
from repro.specs.multilevel import MultilevelHierarchy, multilevel_spec
from repro.workloads.base import WorkloadBundle

__all__ = ["CadWorkload"]


class CadWorkload:
    """Builder for the CAD teams scenario.

    Args:
        n_teams: number of design teams.
        designers_per_team: designer transactions per team.
        parts_per_team: parts owned by each team.
        edits_per_designer: part edits (read+write pairs) per designer.
        seed: RNG seed for part choices.
    """

    def __init__(
        self,
        n_teams: int = 2,
        designers_per_team: int = 2,
        parts_per_team: int = 2,
        edits_per_designer: int = 2,
        seed: int = 0,
    ) -> None:
        if n_teams < 1 or designers_per_team < 1 or parts_per_team < 1:
            raise ValueError("teams, designers, and parts must be positive")
        if edits_per_designer < 1:
            raise ValueError("designers must edit at least one part")
        self._n_teams = n_teams
        self._designers_per_team = designers_per_team
        self._parts_per_team = parts_per_team
        self._edits_per_designer = edits_per_designer
        self._seed = seed

    def part(self, team: int, index: int) -> str:
        """Name of part ``index`` of ``team`` (``t0p1`` style)."""
        return f"t{team}p{index}"

    def team_parts(self, team: int) -> list[str]:
        """All part names of one team."""
        return [
            self.part(team, index) for index in range(self._parts_per_team)
        ]

    def build(self) -> WorkloadBundle:
        """Construct the transaction set, multilevel spec, and semantics."""
        rng = random.Random(self._seed)
        transactions: list[Transaction] = []
        roles: dict[int, str] = {}
        team_of: dict[int, int] = {}
        semantics = Semantics()
        hierarchy_groups: list[list[int]] = []
        level_cuts: dict[int, list[list[int]]] = {}
        next_id = 1

        for team in range(self._n_teams):
            members: list[int] = []
            for _ in range(self._designers_per_team):
                ops: list[Operation] = []
                for _ in range(self._edits_per_designer):
                    part = rng.choice(self.team_parts(team))
                    ops.extend([read(part), write(part)])
                ops.append(read("interface"))
                tx = Transaction(next_id, ops)
                transactions.append(tx)
                roles[next_id] = "designer"
                team_of[next_id] = team
                members.append(next_id)
                # Each edit's write bumps the part revision.
                for edit in range(self._edits_per_designer):
                    semantics.set_effect(
                        next_id, edit * 2 + 1, _bump_revision
                    )
                # Cuts: at part boundaries for outsiders (depth 0, the
                # root level), everywhere for teammates (depth 1).
                part_boundaries = [
                    edit * 2 for edit in range(1, self._edits_per_designer)
                ]
                # The trailing interface read is its own unit for everyone.
                part_boundaries.append(self._edits_per_designer * 2)
                level_cuts[next_id] = [
                    part_boundaries,
                    list(range(1, len(tx))),
                ]
                next_id += 1
            hierarchy_groups.append(members)

        hierarchy = MultilevelHierarchy(hierarchy_groups)
        spec = multilevel_spec(transactions, hierarchy, level_cuts)

        initial_state: dict[str, int] = {"interface": 0}
        for team in range(self._n_teams):
            for part in self.team_parts(team):
                initial_state[part] = 0
        return WorkloadBundle(
            name="cad",
            transactions=transactions,
            spec=spec,
            initial_state=initial_state,
            semantics=semantics,
            roles=roles,
            metadata={
                "team_of": team_of,
                "hierarchy": hierarchy,
                "n_teams": self._n_teams,
            },
        )


def _bump_revision(current, _reads):
    """Write effect: increment the part's revision counter."""
    return (current or 0) + 1
