"""Lynch's banking scenario (cited by the paper's introduction).

Customers are grouped into *families*, each sharing a set of accounts.
Three transaction kinds:

* **customer** transactions move money inside one family (transfers:
  read both accounts, then write both);
* **credit audits** read every account of one family;
* the **bank audit** reads every account of every family.

The relative atomicity structure from the paper's summary of [Lyn83]:

* the bank audit is atomic with respect to everything and vice versa;
* customer transactions in the same family interleave freely with each
  other (finest mutual views);
* a credit audit must see same-family customer transactions atomically
  (and itself appears atomic to them), but is "much less severe" towards
  other families — it exposes a breakpoint after each account read to
  transactions of other families, and sees them at finest granularity.

Semantics: transfers preserve the bank's total balance, so an audit that
reads a *consistent* cut observes exactly the expected total — the
examples use this to show a relatively serializable schedule keeping the
audit correct while a rejected schedule breaks it.
"""

from __future__ import annotations

import random

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import Operation, read, write
from repro.core.transactions import Transaction
from repro.engine.executor import Semantics
from repro.workloads.base import WorkloadBundle

__all__ = ["BankingWorkload"]


class BankingWorkload:
    """Builder for the banking scenario.

    Args:
        n_families: number of account families.
        accounts_per_family: accounts in each family.
        customers_per_family: customer transactions per family.
        transfers_per_customer: transfers inside each customer
            transaction.
        include_credit_audits: one credit audit per family.
        include_bank_audit: one global bank audit.
        initial_balance: starting balance of every account.
        seed: RNG seed for account choices and amounts.
    """

    def __init__(
        self,
        n_families: int = 2,
        accounts_per_family: int = 2,
        customers_per_family: int = 2,
        transfers_per_customer: int = 1,
        include_credit_audits: bool = True,
        include_bank_audit: bool = True,
        initial_balance: int = 100,
        seed: int = 0,
    ) -> None:
        if n_families < 1 or accounts_per_family < 1:
            raise ValueError("need at least one family with one account")
        if accounts_per_family < 2 and transfers_per_customer > 0:
            raise ValueError("transfers need at least two accounts per family")
        self._n_families = n_families
        self._accounts_per_family = accounts_per_family
        self._customers_per_family = customers_per_family
        self._transfers_per_customer = transfers_per_customer
        self._include_credit_audits = include_credit_audits
        self._include_bank_audit = include_bank_audit
        self._initial_balance = initial_balance
        self._seed = seed

    def account(self, family: int, index: int) -> str:
        """Name of account ``index`` of ``family`` (``f0a1`` style)."""
        return f"f{family}a{index}"

    def family_accounts(self, family: int) -> list[str]:
        """All account names of one family."""
        return [
            self.account(family, index)
            for index in range(self._accounts_per_family)
        ]

    def build(self) -> WorkloadBundle:
        """Construct the transaction set, spec, semantics, and state."""
        rng = random.Random(self._seed)
        transactions: list[Transaction] = []
        roles: dict[int, str] = {}
        family_of: dict[int, int | None] = {}
        semantics = Semantics()
        next_id = 1

        # Customer transactions: each transfer reads source and target,
        # then writes both (debit, credit) with a random amount.
        for family in range(self._n_families):
            for _ in range(self._customers_per_family):
                ops: list[Operation] = []
                plan: list[tuple[str, str, int]] = []
                for _ in range(self._transfers_per_customer):
                    src, dst = rng.sample(self.family_accounts(family), 2)
                    amount = rng.randint(1, 10)
                    plan.append((src, dst, amount))
                    ops.extend([read(src), read(dst), write(src), write(dst)])
                tx = Transaction(next_id, ops)
                transactions.append(tx)
                roles[next_id] = "customer"
                family_of[next_id] = family
                for transfer_index, (src, dst, amount) in enumerate(plan):
                    base = transfer_index * 4
                    semantics.set_effect(
                        next_id,
                        base + 2,
                        _debit(src, amount),
                    )
                    semantics.set_effect(
                        next_id,
                        base + 3,
                        _credit(dst, amount),
                    )
                next_id += 1

        # Credit audits: read every account of one family.
        if self._include_credit_audits:
            for family in range(self._n_families):
                ops = [read(account) for account in self.family_accounts(family)]
                transactions.append(Transaction(next_id, ops))
                roles[next_id] = "credit-audit"
                family_of[next_id] = family
                next_id += 1

        # Bank audit: read everything.
        if self._include_bank_audit:
            ops = [
                read(account)
                for family in range(self._n_families)
                for account in self.family_accounts(family)
            ]
            transactions.append(Transaction(next_id, ops))
            roles[next_id] = "bank-audit"
            family_of[next_id] = None
            next_id += 1

        spec = self._build_spec(transactions, roles, family_of)
        initial_state = {
            account: self._initial_balance
            for family in range(self._n_families)
            for account in self.family_accounts(family)
        }
        expected_total = self._initial_balance * len(initial_state)
        return WorkloadBundle(
            name="banking",
            transactions=transactions,
            spec=spec,
            initial_state=initial_state,
            semantics=semantics,
            roles=roles,
            metadata={
                "family_of": family_of,
                "expected_total": expected_total,
                "accounts_per_family": self._accounts_per_family,
                "n_families": self._n_families,
            },
        )

    def _build_spec(
        self,
        transactions: list[Transaction],
        roles: dict[int, str],
        family_of: dict[int, int | None],
    ) -> RelativeAtomicitySpec:
        views: dict[tuple[int, int], object] = {}
        for tx in transactions:
            for observer in transactions:
                if tx.tx_id == observer.tx_id:
                    continue
                views[(tx.tx_id, observer.tx_id)] = self._view(
                    tx, observer, roles, family_of
                )
        return RelativeAtomicitySpec(transactions, views)

    def _view(
        self,
        tx: Transaction,
        observer: Transaction,
        roles: dict[int, str],
        family_of: dict[int, int | None],
    ) -> range | tuple[int, ...]:
        role = roles[tx.tx_id]
        observer_role = roles[observer.tx_id]
        absolute: tuple[int, ...] = ()
        finest = range(1, len(tx))

        # The bank audit is atomic with respect to everything and vice
        # versa.
        if "bank-audit" in (role, observer_role):
            return absolute
        same_family = family_of[tx.tx_id] == family_of[observer.tx_id]
        if role == "customer":
            if observer_role == "customer":
                # Same family: interleave freely.  Different families:
                # no shared accounts, finest is still safe and matches
                # "customer transactions ... can be arbitrarily
                # interleaved".
                return finest
            # Customer as seen by a credit audit: atomic for the audited
            # family, free for other families.
            return absolute if same_family else finest
        # role == "credit-audit"
        if observer_role == "customer":
            # A same-family customer must not slip inside the audit's
            # account scan; other families may interleave between reads.
            return absolute if same_family else finest
        # Two credit audits: different families never conflict, and the
        # read-only scans may interleave freely.
        return finest

def _debit(account: str, amount: int):
    """Write effect: subtract ``amount`` from the account.

    Applied to the store's *current* value (an atomic decrement): customer
    transfers commute with each other, which is the semantic knowledge that
    justifies letting same-family customers interleave freely.  The
    ``account`` name is kept for introspection in traces.
    """

    def effect(current, _reads, _account=account):
        return current - amount

    return effect


def _credit(account: str, amount: int):
    """Write effect: add ``amount`` to the account (atomic increment)."""

    def effect(current, _reads, _account=account):
        return current + amount

    return effect
