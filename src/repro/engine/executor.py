"""Execute a schedule against a :class:`~repro.engine.kvstore.KVStore`.

The theory layer decides *whether* an order is acceptable; the executor
shows *what happens* when it runs.  Each write operation is given a
semantic effect — a function from the object's current value (and the
values the transaction has read so far) to the new value — so realistic
programs (transfers, audits, design edits) can be replayed under any
schedule and their observable results compared across schedule classes.

The default semantics (no :class:`Semantics` supplied) tags each write
with ``"T{tx}.{index}"`` so traces are still informative for purely
structural experiments.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.core.operations import Operation
from repro.core.schedules import Schedule
from repro.engine.kvstore import KVStore
from repro.errors import EngineError

__all__ = ["Semantics", "ExecutionTrace", "ScheduleExecutor"]

#: A write effect: ``(current value, values read so far by the tx) -> new``.
WriteEffect = Callable[[Any, dict[str, Any]], Any]


class Semantics:
    """Per-operation write effects for a transaction set.

    Args:
        effects: mapping from ``(tx_id, op_index)`` to the write effect
            applied at that operation.  Read operations need no entry.
            Writes without an entry fall back to the structural default
            (tagging the object with the writer's identity).
    """

    def __init__(
        self, effects: Mapping[tuple[int, int], WriteEffect] | None = None
    ) -> None:
        self._effects = dict(effects or {})

    def set_effect(self, tx_id: int, op_index: int, effect: WriteEffect) -> None:
        """Register/replace the effect of one write operation."""
        self._effects[(tx_id, op_index)] = effect

    def effect_for(self, op: Operation) -> WriteEffect:
        """The effect to apply at ``op`` (default tags the writer)."""
        try:
            return self._effects[(op.tx, op.index)]
        except KeyError:
            return lambda _current, _reads, op=op: f"T{op.tx}.{op.index}"


@dataclass
class ExecutionTrace:
    """Everything observed while executing one schedule.

    Attributes:
        schedule: the executed schedule.
        reads: value observed by each read operation.
        writes: value produced by each write operation.
        final_state: store contents after all commits.
        reads_by_tx: per transaction, object -> last value read.
    """

    schedule: Schedule
    reads: dict[Operation, Any] = field(default_factory=dict)
    writes: dict[Operation, Any] = field(default_factory=dict)
    final_state: dict[str, Any] = field(default_factory=dict)
    reads_by_tx: dict[int, dict[str, Any]] = field(default_factory=dict)

    def read_value(self, op: Operation) -> Any:
        """The value a given read operation observed."""
        try:
            return self.reads[op]
        except KeyError:
            raise EngineError(f"{op!r} is not a read of this trace") from None

    def transaction_view(self, tx_id: int) -> dict[str, Any]:
        """Object -> last value read by ``T{tx_id}`` during execution."""
        return dict(self.reads_by_tx.get(tx_id, {}))


class ScheduleExecutor:
    """Run schedules against a store under given write semantics.

    Args:
        initial_state: the database contents before execution.  Objects a
            schedule reads must exist here (writes may create objects).
        semantics: write effects; defaults to structural tagging.
    """

    def __init__(
        self,
        initial_state: Mapping[str, Any],
        semantics: Semantics | None = None,
    ) -> None:
        self._initial_state = dict(initial_state)
        self._semantics = semantics or Semantics()

    def run(self, schedule: Schedule) -> ExecutionTrace:
        """Execute ``schedule`` operation by operation; commit everything.

        Every transaction begins at its first operation and commits at its
        last; the trace records each read's observed value and each
        write's produced value.
        """
        store = KVStore(self._initial_state)
        trace = ExecutionTrace(schedule=schedule)
        remaining = {
            tx_id: len(tx) for tx_id, tx in schedule.transactions.items()
        }
        for op in schedule:
            if op.index == 0:
                store.begin(op.tx)
            reads_so_far = trace.reads_by_tx.setdefault(op.tx, {})
            if op.is_read:
                value = store.read(op.tx, op.obj)
                trace.reads[op] = value
                reads_so_far[op.obj] = value
            else:
                current = store.peek(op.obj)
                effect = self._semantics.effect_for(op)
                value = effect(current, dict(reads_so_far))
                store.write(op.tx, op.obj, value)
                trace.writes[op] = value
            remaining[op.tx] -= 1
            if remaining[op.tx] == 0:
                store.commit(op.tx)
        trace.final_state = store.snapshot()
        return trace
