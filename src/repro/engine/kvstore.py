"""An in-memory key-value store with transactional undo and crash recovery.

Minimal but honest: reads and writes are routed through open transactions,
each write appends a before-image record to a write-ahead undo log (WAL),
commit discards the transaction's records and abort splices them back out.
Per-object version counters let callers observe "who wrote last" without
inspecting values.  There is no internal concurrency control — ordering
decisions belong to the schedulers in :mod:`repro.protocols`; the store
just applies whatever order it is handed (which is exactly the separation
the paper's theory assumes).

Two failure paths are supported:

* **Single-transaction abort** (:meth:`KVStore.abort`) splices the
  transaction's writes out of each object's undo chain.  A write that is
  still the live value is rolled back to its before-image; a write that a
  *later open transaction* has already overwritten is removed by patching
  the overwriter's before-image instead (the dirty value it saved never
  legitimately existed).  This keeps abort correct even for the non-strict
  histories the relaxed protocols (altruistic donation, RSGT) can emit.
* **Whole-store crash** (:meth:`KVStore.crash` / :meth:`KVStore.recover`).
  A crash freezes the store — the in-memory image stands in for a durable
  state written under a steal buffer policy, so it may contain dirty
  pages.  Recovery replays the WAL backwards, restoring the before-image
  of every in-flight write; every open transaction is rolled back and
  closed, and only committed effects survive.  (Commit removes a
  transaction's records from the WAL, so committed writes are never
  undone: undo-only recovery with a logical log truncation at commit.)
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.errors import CrashedStoreError, EngineError

__all__ = ["KVStore", "UndoRecord"]

_MISSING = object()


class UndoRecord:
    """One WAL entry: a before-image for a single write.

    Attributes:
        seq: global log sequence number (monotone across the store).
        tx_id: the writing transaction.
        obj: the object written.
        before: the object's value before the write (a private sentinel
            when the write created the object; see :attr:`created`).
    """

    __slots__ = ("seq", "tx_id", "obj", "before")

    def __init__(self, seq: int, tx_id: int, obj: str, before: Any) -> None:
        self.seq = seq
        self.tx_id = tx_id
        self.obj = obj
        self.before = before

    @property
    def created(self) -> bool:
        """Whether the logged write brought the object into existence."""
        return self.before is _MISSING

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        before = "<created>" if self.created else repr(self.before)
        return f"UndoRecord(#{self.seq} T{self.tx_id} {self.obj}<-{before})"


class KVStore:
    """A dictionary of database objects with a write-ahead undo log.

    Args:
        initial: initial object values (copied).
    """

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = dict(initial or {})
        self._versions: dict[str, int] = {obj: 0 for obj in self._data}
        # tx id -> that transaction's WAL records, in write order (the
        # same record objects the global WAL holds).
        self._undo: dict[int, list[UndoRecord]] = {}
        # Global write-ahead undo log: records of *open* transactions in
        # write order.  Commit truncates a transaction's records out.
        self._wal: list[UndoRecord] = []
        self._next_seq = 0
        self._crashed = False

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, tx_id: int) -> None:
        """Open a transaction (idempotent begin is an error)."""
        self._require_up()
        if tx_id in self._undo:
            raise EngineError(f"transaction T{tx_id} already open")
        self._undo[tx_id] = []

    def commit(self, tx_id: int) -> None:
        """Commit: discard the undo records, making writes permanent.

        A committed write also *supersedes* any earlier still-open write
        to the same object: once the commit lands, rolling the earlier
        writer back must not resurface a pre-commit value.  Those stale
        undo records are dropped from the WAL (and from their owners'
        logs) here — without this, a non-strict history in which T2
        overwrites T1's dirty value and commits first would see T1's
        later abort (or a crash recovery) clobber T2's committed write.
        """
        self._require_up()
        log = self._require_open(tx_id)
        if log:
            drop = set(id(record) for record in log)
            # Newest committed write per object; anything older on the
            # same object (whoever wrote it) is superseded.
            newest = {record.obj: record.seq for record in log}
            for earlier in self._wal:
                cutoff = newest.get(earlier.obj)
                if cutoff is not None and earlier.seq < cutoff:
                    drop.add(id(earlier))
            for other_log in self._undo.values():
                if other_log is not log:
                    other_log[:] = [
                        r for r in other_log if id(r) not in drop
                    ]
            self._wal = [r for r in self._wal if id(r) not in drop]
        del self._undo[tx_id]

    def abort(self, tx_id: int) -> None:
        """Abort: splice the transaction's writes out, newest first.

        Each undone write either restores its before-image (when it is
        still the object's live value) or, when a later open transaction
        has overwritten it, patches that overwriter's before-image — the
        dirty intermediate value must not resurface if the overwriter
        aborts afterwards.
        """
        self._require_up()
        log = self._require_open(tx_id)
        if log:
            by_obj: dict[str, list[UndoRecord]] = {}
            for record in self._wal:
                by_obj.setdefault(record.obj, []).append(record)
            dropped: set[int] = set()
            for record in reversed(log):
                chain = by_obj[record.obj]
                position = len(chain) - 1
                while chain[position] is not record:
                    position -= 1
                successor = (
                    chain[position + 1]
                    if position + 1 < len(chain)
                    else None
                )
                if successor is None:
                    if record.created:
                        self._data.pop(record.obj, None)
                        self._versions.pop(record.obj, None)
                    else:
                        self._data[record.obj] = record.before
                        self._versions[record.obj] -= 1
                else:
                    successor.before = record.before
                    self._versions[record.obj] -= 1
                del chain[position]
                dropped.add(id(record))
            self._wal = [r for r in self._wal if id(r) not in dropped]
        del self._undo[tx_id]

    @property
    def open_transactions(self) -> frozenset[int]:
        """Ids of transactions currently open."""
        return frozenset(self._undo)

    # ------------------------------------------------------------------
    # Crash and recovery
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the store is down (crashed and not yet recovered)."""
        return self._crashed

    def crash(self) -> None:
        """Simulate a crash: freeze the store until :meth:`recover`.

        The in-memory image is kept as-is — it plays the role of the
        durable state under a steal policy, dirty pages included.  Every
        transactional entry point raises :class:`~repro.errors.
        CrashedStoreError` until recovery runs; :meth:`peek` and
        :meth:`snapshot` stay available for diagnostics.
        """
        self._crashed = True

    def recover(self) -> frozenset[int]:
        """Roll back every in-flight transaction from the WAL.

        Replays the write-ahead undo log backwards, restoring each
        record's before-image in reverse global write order (correct even
        when open transactions interleaved writes to the same object),
        closes all open transactions, and brings the store back up.

        Returns:
            The ids of the transactions that were rolled back.

        Idempotent and also callable on a healthy store (restart
        recovery): with an empty WAL it is a no-op.
        """
        rolled_back = frozenset(self._undo)
        for record in reversed(self._wal):
            if record.created:
                self._data.pop(record.obj, None)
                self._versions.pop(record.obj, None)
            else:
                self._data[record.obj] = record.before
                self._versions[record.obj] -= 1
        self._wal.clear()
        self._undo.clear()
        self._crashed = False
        return rolled_back

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def read(self, tx_id: int, obj: str) -> Any:
        """Read ``obj`` on behalf of transaction ``tx_id``.

        Raises :class:`~repro.errors.EngineError` if the object does not
        exist or the transaction is not open.
        """
        self._require_up()
        self._require_open(tx_id)
        if obj not in self._data:
            raise EngineError(f"object {obj!r} does not exist")
        return self._data[obj]

    def write(self, tx_id: int, obj: str, value: Any) -> None:
        """Write ``value`` to ``obj`` on behalf of transaction ``tx_id``.

        The before-image is appended to the write-ahead undo log before
        the in-place update, so abort and crash recovery can always roll
        the write back.
        """
        self._require_up()
        log = self._require_open(tx_id)
        record = UndoRecord(
            self._next_seq, tx_id, obj, self._data.get(obj, _MISSING)
        )
        self._next_seq += 1
        log.append(record)
        self._wal.append(record)
        self._data[obj] = value
        self._versions[obj] = self._versions.get(obj, -1) + 1

    def peek(self, obj: str, default: Any = None) -> Any:
        """Non-transactional read (diagnostics and assertions only)."""
        return self._data.get(obj, default)

    def version(self, obj: str) -> int:
        """How many committed-or-pending writes ``obj`` has received."""
        return self._versions.get(obj, 0)

    def snapshot(self) -> dict[str, Any]:
        """A copy of the entire current state."""
        return dict(self._data)

    def objects(self) -> frozenset[str]:
        """All existing object names."""
        return frozenset(self._data)

    def wal_records(self) -> tuple[UndoRecord, ...]:
        """The live write-ahead undo log, oldest first (open txs only)."""
        return tuple(self._wal)

    def _require_open(self, tx_id: int) -> list[UndoRecord]:
        try:
            return self._undo[tx_id]
        except KeyError:
            raise EngineError(f"transaction T{tx_id} is not open") from None

    def _require_up(self) -> None:
        if self._crashed:
            raise CrashedStoreError(
                "the store has crashed; call recover() before using it"
            )

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, obj: str) -> bool:
        return obj in self._data

    def __repr__(self) -> str:
        state = "crashed, " if self._crashed else ""
        return (
            f"KVStore({state}{len(self._data)} objects, "
            f"{len(self._undo)} open transactions, "
            f"{len(self._wal)} WAL records)"
        )
