"""An in-memory key-value store with transactional undo.

Minimal but honest: reads and writes are routed through open transactions,
each write appends to the transaction's undo log, commit discards the log
and abort replays it backwards.  Per-object version counters let callers
observe "who wrote last" without inspecting values.  There is no
durability and no internal concurrency control — ordering decisions belong
to the schedulers in :mod:`repro.protocols`; the store just applies
whatever order it is handed (which is exactly the separation the paper's
theory assumes).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.errors import EngineError

__all__ = ["KVStore"]

_MISSING = object()


class KVStore:
    """A dictionary of database objects with transactional undo logs.

    Args:
        initial: initial object values (copied).
    """

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = dict(initial or {})
        self._versions: dict[str, int] = {obj: 0 for obj in self._data}
        # tx id -> list of (object, previous value or _MISSING) pairs, in
        # write order; replayed backwards on abort.
        self._undo: dict[int, list[tuple[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, tx_id: int) -> None:
        """Open a transaction (idempotent begin is an error)."""
        if tx_id in self._undo:
            raise EngineError(f"transaction T{tx_id} already open")
        self._undo[tx_id] = []

    def commit(self, tx_id: int) -> None:
        """Commit: discard the undo log, making writes permanent."""
        self._require_open(tx_id)
        del self._undo[tx_id]

    def abort(self, tx_id: int) -> None:
        """Abort: undo the transaction's writes in reverse order."""
        log = self._require_open(tx_id)
        for obj, previous in reversed(log):
            if previous is _MISSING:
                self._data.pop(obj, None)
                self._versions.pop(obj, None)
            else:
                self._data[obj] = previous
                self._versions[obj] -= 1
        del self._undo[tx_id]

    @property
    def open_transactions(self) -> frozenset[int]:
        """Ids of transactions currently open."""
        return frozenset(self._undo)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def read(self, tx_id: int, obj: str) -> Any:
        """Read ``obj`` on behalf of transaction ``tx_id``.

        Raises :class:`~repro.errors.EngineError` if the object does not
        exist or the transaction is not open.
        """
        self._require_open(tx_id)
        if obj not in self._data:
            raise EngineError(f"object {obj!r} does not exist")
        return self._data[obj]

    def write(self, tx_id: int, obj: str, value: Any) -> None:
        """Write ``value`` to ``obj`` on behalf of transaction ``tx_id``."""
        log = self._require_open(tx_id)
        previous = self._data.get(obj, _MISSING)
        log.append((obj, previous))
        self._data[obj] = value
        self._versions[obj] = self._versions.get(obj, -1) + 1

    def peek(self, obj: str, default: Any = None) -> Any:
        """Non-transactional read (diagnostics and assertions only)."""
        return self._data.get(obj, default)

    def version(self, obj: str) -> int:
        """How many committed-or-pending writes ``obj`` has received."""
        return self._versions.get(obj, 0)

    def snapshot(self) -> dict[str, Any]:
        """A copy of the entire current state."""
        return dict(self._data)

    def objects(self) -> frozenset[str]:
        """All existing object names."""
        return frozenset(self._data)

    def _require_open(self, tx_id: int) -> list[tuple[str, Any]]:
        try:
            return self._undo[tx_id]
        except KeyError:
            raise EngineError(f"transaction T{tx_id} is not open") from None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, obj: str) -> bool:
        return obj in self._data

    def __repr__(self) -> str:
        return (
            f"KVStore({len(self._data)} objects, "
            f"{len(self._undo)} open transactions)"
        )
