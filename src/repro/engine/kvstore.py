"""An in-memory key-value store with transactional undo and crash recovery.

Minimal but honest: reads and writes are routed through open transactions,
each write buffers a before-image record into its transaction's undo log
(the write-ahead log is the union of the open transactions' buffers),
commit discards the transaction's records and abort splices them back out.
Per-object version counters let callers observe "who wrote last" without
inspecting values.  There is no internal concurrency control — ordering
decisions belong to the schedulers in :mod:`repro.protocols`; the store
just applies whatever order it is handed (which is exactly the separation
the paper's theory assumes).

The hot path is :meth:`KVStore.write`: one plain tuple ``(seq, obj,
before)`` appended to the writer's own buffer — no record objects, no
second global-log append, no per-write encoding.  Global WAL views
(:meth:`KVStore.wal_records`, recovery order) are derived on demand by
merging the per-transaction buffers on the globally monotone sequence
number, so batching the bookkeeping per transaction changes none of the
observable semantics.

Two failure paths are supported:

* **Single-transaction abort** (:meth:`KVStore.abort`) splices the
  transaction's writes out of each object's undo chain.  A write that is
  still the live value is rolled back to its before-image; a write that a
  *later open transaction* has already overwritten is removed by patching
  the overwriter's before-image instead (the dirty value it saved never
  legitimately existed).  This keeps abort correct even for the non-strict
  histories the relaxed protocols (altruistic donation, RSGT) can emit.
* **Whole-store crash** (:meth:`KVStore.crash` / :meth:`KVStore.recover`).
  A crash freezes the store — the in-memory image stands in for a durable
  state written under a steal buffer policy, so it may contain dirty
  pages.  Recovery replays the WAL backwards, restoring the before-image
  of every in-flight write; every open transaction is rolled back and
  closed, and only committed effects survive.  (Commit removes a
  transaction's records from the WAL, so committed writes are never
  undone: undo-only recovery with a logical log truncation at commit.)
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import count
from typing import Any

from repro.errors import CrashedStoreError, EngineError

__all__ = ["KVStore", "UndoRecord"]

_MISSING = object()


class UndoRecord:
    """One WAL entry: a before-image for a single write.

    The store's internal logs hold plain ``(seq, obj, before)`` tuples;
    this object view is assembled on demand by :meth:`KVStore.
    wal_records` for diagnostics and tests.

    Attributes:
        seq: global log sequence number (monotone across the store).
        tx_id: the writing transaction.
        obj: the object written.
        before: the object's value before the write (a private sentinel
            when the write created the object; see :attr:`created`).
    """

    __slots__ = ("seq", "tx_id", "obj", "before")

    def __init__(self, seq: int, tx_id: int, obj: str, before: Any) -> None:
        self.seq = seq
        self.tx_id = tx_id
        self.obj = obj
        self.before = before

    @property
    def created(self) -> bool:
        """Whether the logged write brought the object into existence."""
        return self.before is _MISSING

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        before = "<created>" if self.created else repr(self.before)
        return f"UndoRecord(#{self.seq} T{self.tx_id} {self.obj}<-{before})"


class KVStore:
    """A dictionary of database objects with a write-ahead undo log.

    Args:
        initial: initial object values (copied).
    """

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = dict(initial or {})
        self._versions: dict[str, int] = {obj: 0 for obj in self._data}
        # tx id -> that transaction's undo buffer: (seq, obj, before)
        # tuples in write order.  The global WAL is the seq-ordered
        # merge of these buffers (sequence numbers are globally
        # monotone), derived only when a failure path needs it.
        self._undo: dict[int, list[tuple[int, str, Any]]] = {}
        # Globally monotone sequence numbers (an iterator: one C-level
        # ``next`` on the write path instead of a load-add-store).
        self._seq = count()
        self._crashed = False

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, tx_id: int) -> None:
        """Open a transaction (idempotent begin is an error)."""
        self._require_up()
        if tx_id in self._undo:
            raise EngineError(f"transaction T{tx_id} already open")
        self._undo[tx_id] = []

    def commit(self, tx_id: int) -> None:
        """Commit: discard the undo records, making writes permanent.

        A committed write also *supersedes* any earlier still-open write
        to the same object: once the commit lands, rolling the earlier
        writer back must not resurface a pre-commit value.  Those stale
        undo records are dropped from their owners' buffers here —
        without this, a non-strict history in which T2 overwrites T1's
        dirty value and commits first would see T1's later abort (or a
        crash recovery) clobber T2's committed write.

        With no other transaction open this is O(1): the whole buffer
        is discarded in one step.
        """
        self._require_up()
        undo = self._undo
        log = undo.get(tx_id)
        if log is None:
            raise EngineError(f"transaction T{tx_id} is not open")
        if log and len(undo) > 1:
            # Newest committed write per object; anything older on the
            # same object (whoever wrote it) is superseded.
            newest: dict[str, int] = {}
            for seq, obj, _before in log:
                newest[obj] = seq
            get_cutoff = newest.get
            for other_id, other_log in undo.items():
                if other_id == tx_id:
                    continue
                kept = [
                    rec
                    for rec in other_log
                    if (cutoff := get_cutoff(rec[1])) is None
                    or rec[0] > cutoff
                ]
                if len(kept) != len(other_log):
                    other_log[:] = kept
        del undo[tx_id]

    def abort(self, tx_id: int) -> None:
        """Abort: splice the transaction's writes out, newest first.

        Each undone write either restores its before-image (when it is
        still the object's live value) or, when a later open transaction
        has overwritten it, patches that overwriter's before-image — the
        dirty intermediate value must not resurface if the overwriter
        aborts afterwards.

        With no other transaction open there is nothing to splice: the
        buffer is replayed backwards directly.
        """
        self._require_up()
        undo = self._undo
        log = undo.get(tx_id)
        if log is None:
            raise EngineError(f"transaction T{tx_id} is not open")
        if log:
            if len(undo) == 1:
                self._replay_backwards(log)
            else:
                self._abort_splice(tx_id, log)
        del undo[tx_id]

    def _abort_splice(
        self, tx_id: int, log: list[tuple[int, str, Any]]
    ) -> None:
        """The general abort path with concurrent open writers.

        Builds each written object's undo chain across *all* open
        buffers (seq-ordered, remembering the owning buffer and the
        record's position in it, so a successor's before-image can be
        patched in place) and walks the victim's records newest first.
        """
        undo = self._undo
        chains: dict[str, list[tuple[int, int, int]]] = {}
        for owner, other_log in undo.items():
            for position, rec in enumerate(other_log):
                chains.setdefault(rec[1], []).append(
                    (rec[0], owner, position)
                )
        for chain in chains.values():
            chain.sort()
        data = self._data
        versions = self._versions
        for seq, obj, before in reversed(log):
            chain = chains[obj]
            position = len(chain) - 1
            while chain[position][0] != seq:
                position -= 1
            if position + 1 < len(chain):
                # A later open write buried this one: its saved
                # before-image is our dirty value, patch it to ours.
                _s_seq, s_owner, s_position = chain[position + 1]
                s_log = undo[s_owner]
                s_rec = s_log[s_position]
                s_log[s_position] = (s_rec[0], s_rec[1], before)
                versions[obj] -= 1
            elif before is _MISSING:
                data.pop(obj, None)
                versions.pop(obj, None)
            else:
                data[obj] = before
                versions[obj] -= 1
            del chain[position]

    def _replay_backwards(
        self, records: list[tuple[int, str, Any]]
    ) -> None:
        """Undo ``records`` (seq-ordered) newest first."""
        data = self._data
        versions = self._versions
        for _seq, obj, before in reversed(records):
            if before is _MISSING:
                data.pop(obj, None)
                versions.pop(obj, None)
            else:
                data[obj] = before
                versions[obj] -= 1

    @property
    def open_transactions(self) -> frozenset[int]:
        """Ids of transactions currently open."""
        return frozenset(self._undo)

    # ------------------------------------------------------------------
    # Crash and recovery
    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the store is down (crashed and not yet recovered)."""
        return self._crashed

    def crash(self) -> None:
        """Simulate a crash: freeze the store until :meth:`recover`.

        The in-memory image is kept as-is — it plays the role of the
        durable state under a steal policy, dirty pages included.  Every
        transactional entry point raises :class:`~repro.errors.
        CrashedStoreError` until recovery runs; :meth:`peek` and
        :meth:`snapshot` stay available for diagnostics.
        """
        self._crashed = True

    def recover(self) -> frozenset[int]:
        """Roll back every in-flight transaction from the WAL.

        Merges the open transactions' undo buffers into global sequence
        order and replays them backwards, restoring each record's
        before-image in reverse global write order (correct even when
        open transactions interleaved writes to the same object),
        closes all open transactions, and brings the store back up.

        Returns:
            The ids of the transactions that were rolled back.

        Idempotent and also callable on a healthy store (restart
        recovery): with an empty WAL it is a no-op.
        """
        undo = self._undo
        rolled_back = frozenset(undo)
        records = [rec for log in undo.values() for rec in log]
        # Sequence numbers are unique, so tuple sort never compares the
        # (arbitrary) before-image values.
        records.sort()
        self._replay_backwards(records)
        undo.clear()
        self._crashed = False
        return rolled_back

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def read(self, tx_id: int, obj: str) -> Any:
        """Read ``obj`` on behalf of transaction ``tx_id``.

        Raises :class:`~repro.errors.EngineError` if the object does not
        exist or the transaction is not open.
        """
        self._require_up()
        self._require_open(tx_id)
        if obj not in self._data:
            raise EngineError(f"object {obj!r} does not exist")
        return self._data[obj]

    def write(self, tx_id: int, obj: str, value: Any) -> None:
        """Write ``value`` to ``obj`` on behalf of transaction ``tx_id``.

        The before-image is buffered into the transaction's undo log
        before the in-place update, so abort and crash recovery can
        always roll the write back.  One tuple append — commit and
        abort amortize all remaining bookkeeping per transaction.
        """
        if self._crashed:
            self._require_up()
        log = self._undo.get(tx_id)
        if log is None:
            raise EngineError(f"transaction T{tx_id} is not open")
        data = self._data
        log.append((next(self._seq), obj, data.get(obj, _MISSING)))
        data[obj] = value
        versions = self._versions
        versions[obj] = versions.get(obj, -1) + 1

    def peek(self, obj: str, default: Any = None) -> Any:
        """Non-transactional read (diagnostics and assertions only)."""
        return self._data.get(obj, default)

    def version(self, obj: str) -> int:
        """How many committed-or-pending writes ``obj`` has received."""
        return self._versions.get(obj, 0)

    def snapshot(self) -> dict[str, Any]:
        """A copy of the entire current state."""
        return dict(self._data)

    def objects(self) -> frozenset[str]:
        """All existing object names."""
        return frozenset(self._data)

    def wal_size(self) -> int:
        """Number of live WAL records across all open transactions.

        O(open transactions); cheap enough for a health endpoint to poll
        without assembling the record objects :meth:`wal_records` builds.
        """
        return sum(len(log) for log in self._undo.values())

    def wal_records(self) -> tuple[UndoRecord, ...]:
        """The live write-ahead undo log, oldest first (open txs only).

        Assembled on demand from the per-transaction buffers.
        """
        entries = [
            (seq, obj, before, owner)
            for owner, log in self._undo.items()
            for seq, obj, before in log
        ]
        entries.sort(key=lambda entry: entry[0])
        return tuple(
            UndoRecord(seq, owner, obj, before)
            for seq, obj, before, owner in entries
        )

    def _require_open(self, tx_id: int) -> list[tuple[int, str, Any]]:
        try:
            return self._undo[tx_id]
        except KeyError:
            raise EngineError(f"transaction T{tx_id} is not open") from None

    def _require_up(self) -> None:
        if self._crashed:
            raise CrashedStoreError(
                "the store has crashed; call recover() before using it"
            )

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, obj: str) -> bool:
        return obj in self._data

    def __repr__(self) -> str:
        state = "crashed, " if self._crashed else ""
        wal = self.wal_size()
        return (
            f"KVStore({state}{len(self._data)} objects, "
            f"{len(self._undo)} open transactions, "
            f"{wal} WAL records)"
        )
