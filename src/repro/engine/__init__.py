"""Execution engine: an in-memory versioned store and schedule executor.

The paper's theory is about *orders* of operations; the engine makes those
orders runnable against real data so the examples and the protocol
simulator can demonstrate semantic consequences (e.g. a banking audit
observing a consistent or inconsistent total depending on the schedule's
class).

* :mod:`~repro.engine.kvstore` — a key-value store with per-transaction
  undo logs (abort support) and per-object version counters;
* :mod:`~repro.engine.executor` — runs a schedule against the store,
  mapping each operation to a semantic effect and recording a full trace.
"""

from repro.engine.executor import ExecutionTrace, ScheduleExecutor, Semantics
from repro.engine.kvstore import KVStore

__all__ = ["KVStore", "ScheduleExecutor", "Semantics", "ExecutionTrace"]
