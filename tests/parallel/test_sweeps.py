"""Parallel sweeps must be indistinguishable from the serial sweeps."""

import dataclasses
import pickle
import random

from repro.analysis.acceptance import acceptance_for_spec, acceptance_sweep
from repro.analysis.classes import census, census_exhaustive
from repro.analysis.containment import check_containments
from repro.core.transactions import Transaction
from repro.parallel.executor import CRASH_ONCE_ENV, shutdown_pools
from repro.parallel.sweeps import (
    census_exhaustive_parallel,
    census_schedules,
    check_containments_parallel,
)
from repro.specs.builders import uniform_spec
from repro.workloads.random_schedules import random_schedules


def _txs():
    return [
        Transaction.from_notation(1, "r[x] w[x] r[y]"),
        Transaction.from_notation(2, "w[x] r[y] w[y]"),
        Transaction.from_notation(3, "r[y] w[z]"),
    ]


def _census_fields(result):
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name != "witnesses"
    }


class TestCensusParallel:
    def test_exhaustive_census_identical_across_job_counts(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        serial = census_exhaustive(txs, spec)
        for jobs in (2, 3):
            parallel = census_exhaustive(txs, spec, jobs=jobs)
            assert _census_fields(parallel) == _census_fields(serial)
            assert parallel.witnesses == serial.witnesses

    def test_population_census_matches_shared_prefix_serial(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        population = random_schedules(txs, 50, random.Random(11))
        serial = census(population, spec, shared_prefixes=True)
        parallel = census(population, spec, jobs=2)
        assert _census_fields(parallel) == _census_fields(serial)
        assert parallel.witnesses == serial.witnesses

    def test_more_jobs_than_schedules(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        population = random_schedules(txs, 3, random.Random(5))
        serial = census(population, spec, shared_prefixes=True)
        parallel = census(population, spec, jobs=16)
        assert _census_fields(parallel) == _census_fields(serial)


class TestByteEquality:
    """jobs=4 output must be byte-for-byte the jobs=1 output.

    ``min_block=1`` forces these small populations through the real
    warm pool (the default floors would run them inline); pickled
    bytes compare everything — counts, witness schedules, dict
    insertion order — at once.
    """

    def test_exhaustive_census_bytes(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        serial = census_exhaustive_parallel(txs, spec, jobs=1)
        parallel = census_exhaustive_parallel(
            txs, spec, jobs=4, min_block=1
        )
        assert pickle.dumps(parallel) == pickle.dumps(serial)

    def test_population_census_bytes(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        population = random_schedules(txs, 40, random.Random(3))
        serial = census(population, spec, shared_prefixes=True)
        parallel = census_schedules(
            population, spec, jobs=4, min_block=1
        )
        assert pickle.dumps(parallel) == pickle.dumps(serial)

    def test_containment_report_bytes(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        population = random_schedules(txs, 40, random.Random(9))
        serial = check_containments(population, spec, shared_prefixes=True)
        parallel = check_containments_parallel(
            population, spec, jobs=4, min_block=1
        )
        assert pickle.dumps(parallel) == pickle.dumps(serial)

    def test_census_bytes_survive_one_worker_crash(
        self, tmp_path, monkeypatch
    ):
        # Inject one real worker death mid-sweep: the executor discards
        # the broken pool, reruns on a fresh one, and the merged census
        # must still be byte-identical to serial.
        txs = _txs()
        spec = uniform_spec(txs, 1)
        serial = census_exhaustive_parallel(txs, spec, jobs=1)
        shutdown_pools()
        monkeypatch.setenv(
            CRASH_ONCE_ENV, str(tmp_path / "sweep-crash-once")
        )
        try:
            parallel = census_exhaustive_parallel(
                txs, spec, jobs=4, min_block=1
            )
        finally:
            shutdown_pools()
        assert (tmp_path / "sweep-crash-once").exists()
        assert pickle.dumps(parallel) == pickle.dumps(serial)


class TestContainmentParallel:
    def test_report_identical_to_serial(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        population = random_schedules(txs, 60, random.Random(7))
        serial = check_containments(population, spec, shared_prefixes=True)
        parallel = check_containments(population, spec, jobs=2)
        assert parallel.checked == serial.checked
        assert parallel.undecided == serial.undecided
        assert parallel.violations == serial.violations
        assert parallel.proper_witnesses == serial.proper_witnesses


class TestAcceptanceParallel:
    def test_spec_census_identical_to_serial(self):
        txs = _txs()
        spec = uniform_spec(txs, 1)
        serial = acceptance_for_spec(txs, spec, samples=40, seed=2)
        parallel = acceptance_for_spec(txs, spec, samples=40, seed=2, jobs=2)
        assert _census_fields(parallel) == _census_fields(serial)
        assert parallel.witnesses == serial.witnesses

    def test_sweep_rows_identical_to_serial(self):
        assert acceptance_sweep(samples=20, jobs=2) == acceptance_sweep(
            samples=20
        )
