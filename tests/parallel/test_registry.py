"""Tests for the process-local context registry."""

import pickle

import pytest

from repro.parallel import registry


@pytest.fixture(autouse=True)
def _clean_registry():
    registry.clear()
    yield
    registry.clear()


class TestRegister:
    def test_returns_distinct_ids_for_distinct_payloads(self):
        a = registry.register(("spec", 1))
        b = registry.register(("spec", 2))
        assert a != b

    def test_content_addressed_dedup(self):
        # Equal-pickling payloads share one id and ship one blob.
        a = registry.register(("txs", "spec", 200))
        b = registry.register(("txs", "spec", 200))
        assert a == b

    def test_dedup_does_not_bump_version(self):
        registry.register(("txs", "spec", 200))
        before = registry.version()
        registry.register(("txs", "spec", 200))
        assert registry.version() == before

    def test_new_context_bumps_version(self):
        before = registry.version()
        registry.register(("fresh", before))
        assert registry.version() == before + 1

    def test_ids_never_reused_after_clear(self):
        a = registry.register("one")
        registry.clear()
        b = registry.register("one")
        assert b > a

    def test_eviction_keeps_at_most_max_contexts(self):
        first = registry.register(("ctx", -1))
        for i in range(registry.MAX_CONTEXTS):
            registry.register(("ctx", i))
        with pytest.raises(KeyError):
            registry.payload_size(first)


class TestResolve:
    def test_parent_resolve_is_the_registered_object(self):
        payload = (("tx",), "spec", 200)
        ctx_id = registry.register(payload)
        # The inline path hands back the object itself — zero pickling.
        assert registry.resolve(ctx_id) is payload

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            registry.resolve(999_999)

    def test_install_round_trip(self):
        payload = {"population": list(range(10))}
        ctx_id = registry.register(payload)
        blob = registry.snapshot()
        registry.clear()  # simulate a fresh worker: parent side empty
        registry.install(blob)
        resolved = registry.resolve(ctx_id)
        assert resolved == payload
        # Lazy unpickle caches: same object on the second resolve.
        assert registry.resolve(ctx_id) is resolved


class TestPayloadSize:
    def test_matches_pickle_length(self):
        payload = ("txs",) * 50
        ctx_id = registry.register(payload)
        assert registry.payload_size(ctx_id) == len(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )


class TestCached:
    def test_factory_runs_once_per_key(self):
        ctx_id = registry.register("ctx")
        calls = []

        def build():
            calls.append(1)
            return object()

        first = registry.cached(ctx_id, "engine", build)
        second = registry.cached(ctx_id, "engine", build)
        assert first is second
        assert len(calls) == 1

    def test_tags_are_independent(self):
        ctx_id = registry.register("ctx")
        a = registry.cached(ctx_id, "rsg", object)
        b = registry.cached(ctx_id, "certifier", object)
        assert a is not b

    def test_clear_drops_cached_objects(self):
        ctx_id = registry.register("ctx")
        stale = registry.cached(ctx_id, "engine", object)
        registry.clear()
        fresh_ctx = registry.register("ctx")
        assert registry.cached(fresh_ctx, "engine", object) is not stale
