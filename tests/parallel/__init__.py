"""Tests for the parallel sweep engine."""
