"""Tests for the ordered process-pool executor."""

import os

import pytest

from repro.errors import ParallelExecutionError
from repro.parallel import registry
from repro.parallel.executor import (
    CRASH_ONCE_ENV,
    MIN_RANK_BLOCK,
    ParallelExecutor,
    _POOLS,
    plan_block_count,
    resolve_jobs,
    shutdown_pools,
)


# Workers must be module-level so they pickle across process boundaries.
def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _die_on_three(value):
    if value == 3:
        os._exit(17)  # hard crash: no exception crosses the pipe
    return value


class TestResolveJobs:
    def test_one_is_one(self):
        assert resolve_jobs(1) == 1

    def test_none_and_zero_mean_all_cpus(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestPlanBlockCount:
    def test_empty_population_plans_nothing(self):
        assert plan_block_count(0, 4) == 0

    def test_large_population_caps_at_chunks_per_worker(self):
        assert plan_block_count(1_000_000, 4, chunks_per_worker=4) == 16

    def test_small_population_collapses_to_one_block(self):
        # Below one minimum block: the caller should run inline.
        assert plan_block_count(MIN_RANK_BLOCK - 1, 8) == 1
        assert plan_block_count(MIN_RANK_BLOCK, 8) == 1

    def test_min_block_floor_bounds_block_count(self):
        # 1000 tasks at a 256 floor supports at most ceil(1000/256)=4
        # blocks, however many workers are available.
        assert plan_block_count(1000, 16) == 4

    def test_min_block_override(self):
        assert plan_block_count(10, 2, min_block=1, chunks_per_worker=4) == 8
        assert plan_block_count(10, 2, min_block=5) == 2

    def test_bad_min_block_rejected(self):
        with pytest.raises(ValueError):
            plan_block_count(10, 2, min_block=0)


class TestWarmPool:
    def test_pool_persists_across_maps(self):
        executor = ParallelExecutor(2)
        executor.map(_square, list(range(8)))
        pool, version = _POOLS[2]
        executor.map(_square, list(range(8)))
        assert _POOLS[2] == (pool, version)

    def test_pool_rebuilt_when_registry_changes(self):
        executor = ParallelExecutor(2)
        executor.map(_square, list(range(8)))
        stale, _ = _POOLS[2]
        registry.register(("new-context", object()))
        try:
            executor.map(_square, list(range(8)))
            assert _POOLS[2][0] is not stale
        finally:
            registry.clear()

    def test_shutdown_pools_empties_the_cache(self):
        ParallelExecutor(2).map(_square, list(range(8)))
        assert _POOLS
        shutdown_pools()
        assert not _POOLS

    def test_injected_crash_is_retried_through_a_real_pool(
        self, tmp_path, monkeypatch
    ):
        # The CRASH_ONCE_ENV hook kills the first worker process that
        # starts after the marker path is set; the executor must
        # discard the broken pool and rerun the map bit-identically.
        shutdown_pools()
        marker = tmp_path / "crash-once"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
        try:
            result = ParallelExecutor(2).map(_square, list(range(12)))
        finally:
            shutdown_pools()
        assert result == [value * value for value in range(12)]
        assert marker.exists()


class TestMap:
    def test_serial_results_in_task_order(self):
        assert ParallelExecutor(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_results_in_task_order(self):
        tasks = list(range(23))
        assert ParallelExecutor(2).map(_square, tasks) == [
            t * t for t in tasks
        ]

    def test_parallel_matches_serial(self):
        tasks = list(range(17))
        serial = ParallelExecutor(1).map(_square, tasks)
        assert ParallelExecutor(3).map(_square, tasks) == serial

    def test_empty_task_list(self):
        assert ParallelExecutor(4).map(_square, []) == []

    def test_single_task_runs_inline(self):
        # One task never needs a pool, whatever the job count says.
        assert ParallelExecutor(8).map(_square, [5]) == [25]

    def test_worker_exception_propagates_unchanged_serial(self):
        with pytest.raises(ValueError, match="three is right out"):
            ParallelExecutor(1).map(_fail_on_three, [1, 2, 3, 4])

    def test_worker_exception_propagates_unchanged_parallel(self):
        with pytest.raises(ValueError, match="three is right out"):
            ParallelExecutor(2).map(_fail_on_three, list(range(8)))

    def test_worker_crash_surfaces_as_parallel_error(self):
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(2).map(_die_on_three, list(range(8)))

    def test_bad_chunks_per_worker_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1, chunks_per_worker=0)


class TestMapReduce:
    def test_folds_in_task_order(self):
        # Subtraction is order-sensitive: any reordering changes it.
        tasks = list(range(1, 9))
        expected = 0
        for value in tasks:
            expected -= value * value
        merged = ParallelExecutor(2).map_reduce(
            _square, tasks, lambda acc, r: acc - r, 0
        )
        assert merged == expected

    def test_matches_serial_fold(self):
        tasks = list(range(11))
        serial = ParallelExecutor(1).map_reduce(
            _square, tasks, lambda acc, r: acc + [r], []
        )
        parallel = ParallelExecutor(3).map_reduce(
            _square, tasks, lambda acc, r: acc + [r], []
        )
        assert parallel == serial == [t * t for t in tasks]


# A crash counter shared through the filesystem: each attempt's worker
# reads how many times it has crashed so far and dies only the first
# ``n`` times, letting the retry loop eventually succeed.
def _die_first_time(task):
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(17)
    return value * value


class TestBoundedCrashRetry:
    def test_transient_crash_is_retried_to_success(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        tasks = [(marker, value) for value in range(8)]
        result = ParallelExecutor(2, max_retries=2).map(
            _die_first_time, tasks
        )
        assert result == [value * value for value in range(8)]

    def test_deterministic_crash_exhausts_the_budget(self):
        with pytest.raises(ParallelExecutionError) as info:
            ParallelExecutor(2, max_retries=1).map(
                _die_on_three, list(range(8))
            )
        assert "2 consecutive attempts" in str(info.value)

    def test_zero_budget_fails_fast(self):
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(2, max_retries=0).map(
                _die_on_three, list(range(8))
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1, max_retries=-1)


class TestShutdownPools:
    def test_repeated_shutdown_is_idempotent(self):
        ParallelExecutor(2).map(_square, list(range(8)))
        assert _POOLS
        shutdown_pools()
        shutdown_pools()  # second call sees an empty cache
        assert not _POOLS

    def test_shutdown_on_a_cold_cache_is_a_noop(self):
        shutdown_pools()
        assert not _POOLS
        shutdown_pools()
        assert not _POOLS

    def test_pools_rebuild_after_shutdown(self):
        executor = ParallelExecutor(2)
        assert executor.map(_square, list(range(8))) == [
            v * v for v in range(8)
        ]
        shutdown_pools()
        # Next map transparently warms a fresh pool.
        assert executor.map(_square, list(range(8))) == [
            v * v for v in range(8)
        ]
        assert _POOLS

    def test_reentrant_shutdown_from_within_shutdown(self):
        # A signal handler firing mid-drain re-enters shutdown_pools;
        # popitem-before-shutdown means the inner call sees a disjoint
        # remainder and both return cleanly.
        ParallelExecutor(2).map(_square, list(range(4)))
        ParallelExecutor(3).map(_square, list(range(4)))
        assert len(_POOLS) == 2

        real_shutdown = type(next(iter(_POOLS.values()))[0]).shutdown
        calls = []

        class _Reenter:
            def __init__(self, pool):
                self._pool = pool

            def __call__(self, **kwargs):
                calls.append(kwargs)
                shutdown_pools()  # reentrant: must not double-shutdown
                real_shutdown(self._pool, **kwargs)

        for pool, _version in list(_POOLS.values()):
            pool.shutdown = _Reenter(pool)
        shutdown_pools()
        assert not _POOLS
        assert len(calls) == 2  # each pool shut down exactly once
