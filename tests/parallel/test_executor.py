"""Tests for the ordered process-pool executor."""

import os

import pytest

from repro.errors import ParallelExecutionError
from repro.parallel.executor import ParallelExecutor, resolve_jobs


# Workers must be module-level so they pickle across process boundaries.
def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _die_on_three(value):
    if value == 3:
        os._exit(17)  # hard crash: no exception crosses the pipe
    return value


class TestResolveJobs:
    def test_one_is_one(self):
        assert resolve_jobs(1) == 1

    def test_none_and_zero_mean_all_cpus(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestMap:
    def test_serial_results_in_task_order(self):
        assert ParallelExecutor(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_results_in_task_order(self):
        tasks = list(range(23))
        assert ParallelExecutor(2).map(_square, tasks) == [
            t * t for t in tasks
        ]

    def test_parallel_matches_serial(self):
        tasks = list(range(17))
        serial = ParallelExecutor(1).map(_square, tasks)
        assert ParallelExecutor(3).map(_square, tasks) == serial

    def test_empty_task_list(self):
        assert ParallelExecutor(4).map(_square, []) == []

    def test_single_task_runs_inline(self):
        # One task never needs a pool, whatever the job count says.
        assert ParallelExecutor(8).map(_square, [5]) == [25]

    def test_worker_exception_propagates_unchanged_serial(self):
        with pytest.raises(ValueError, match="three is right out"):
            ParallelExecutor(1).map(_fail_on_three, [1, 2, 3, 4])

    def test_worker_exception_propagates_unchanged_parallel(self):
        with pytest.raises(ValueError, match="three is right out"):
            ParallelExecutor(2).map(_fail_on_three, list(range(8)))

    def test_worker_crash_surfaces_as_parallel_error(self):
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(2).map(_die_on_three, list(range(8)))

    def test_bad_chunks_per_worker_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1, chunks_per_worker=0)


class TestMapReduce:
    def test_folds_in_task_order(self):
        # Subtraction is order-sensitive: any reordering changes it.
        tasks = list(range(1, 9))
        expected = 0
        for value in tasks:
            expected -= value * value
        merged = ParallelExecutor(2).map_reduce(
            _square, tasks, lambda acc, r: acc - r, 0
        )
        assert merged == expected

    def test_matches_serial_fold(self):
        tasks = list(range(11))
        serial = ParallelExecutor(1).map_reduce(
            _square, tasks, lambda acc, r: acc + [r], []
        )
        parallel = ParallelExecutor(3).map_reduce(
            _square, tasks, lambda acc, r: acc + [r], []
        )
        assert parallel == serial == [t * t for t in tasks]


# A crash counter shared through the filesystem: each attempt's worker
# reads how many times it has crashed so far and dies only the first
# ``n`` times, letting the retry loop eventually succeed.
def _die_first_time(task):
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(17)
    return value * value


class TestBoundedCrashRetry:
    def test_transient_crash_is_retried_to_success(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        tasks = [(marker, value) for value in range(8)]
        result = ParallelExecutor(2, max_retries=2).map(
            _die_first_time, tasks
        )
        assert result == [value * value for value in range(8)]

    def test_deterministic_crash_exhausts_the_budget(self):
        with pytest.raises(ParallelExecutionError) as info:
            ParallelExecutor(2, max_retries=1).map(
                _die_on_three, list(range(8))
            )
        assert "2 consecutive attempts" in str(info.value)

    def test_zero_budget_fails_fast(self):
        with pytest.raises(ParallelExecutionError):
            ParallelExecutor(2, max_retries=0).map(
                _die_on_three, list(range(8))
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1, max_retries=-1)
