"""Shared fixtures: the paper's figures and a few small instances."""

from __future__ import annotations

import pytest

from repro.core.transactions import Transaction
from repro.paper import figure1, figure2, figure3, figure4


@pytest.fixture(scope="session")
def fig1():
    return figure1()


@pytest.fixture(scope="session")
def fig2():
    return figure2()


@pytest.fixture(scope="session")
def fig3():
    return figure3()


@pytest.fixture(scope="session")
def fig4():
    return figure4()


@pytest.fixture()
def two_small_transactions() -> list[Transaction]:
    """Two 2-op transactions sharing one object — the smallest instance
    with interesting conflicts."""
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] r[y]"),
    ]


@pytest.fixture()
def three_small_transactions() -> list[Transaction]:
    """Three short transactions over two objects."""
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] w[y]"),
        Transaction.from_notation(3, "r[y] w[y]"),
    ]
