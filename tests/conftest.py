"""Shared fixtures: the paper's figures and a few small instances.

Also installs a global per-test wall-clock timeout (SIGALRM based, no
external plugin): the service tests drive a live asyncio server, and a
hung drain or a lost wakeup must fail the test with a traceback at the
blocking line instead of wedging the whole suite.  Override with
``REPRO_TEST_TIMEOUT`` (seconds; ``0`` disables).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core.transactions import Transaction
from repro.paper import figure1, figure2, figure3, figure4

_TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if (
        _TEST_TIMEOUT_S <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the global {_TEST_TIMEOUT_S:g}s "
            "test timeout (REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def fig1():
    return figure1()


@pytest.fixture(scope="session")
def fig2():
    return figure2()


@pytest.fixture(scope="session")
def fig3():
    return figure3()


@pytest.fixture(scope="session")
def fig4():
    return figure4()


@pytest.fixture()
def two_small_transactions() -> list[Transaction]:
    """Two 2-op transactions sharing one object — the smallest instance
    with interesting conflicts."""
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] r[y]"),
    ]


@pytest.fixture()
def three_small_transactions() -> list[Transaction]:
    """Three short transactions over two objects."""
    return [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "w[x] w[y]"),
        Transaction.from_notation(3, "r[y] w[y]"),
    ]
