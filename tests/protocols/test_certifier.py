"""Unit tests for the shared incremental RSG certifier."""

from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.paper import figure1
from repro.protocols.certifier import RsgCertifier
from repro.specs.builders import absolute_spec


def _lost_update():
    txs = [
        Transaction.from_notation(1, "r[x] w[x]"),
        Transaction.from_notation(2, "r[x] w[x]"),
    ]
    return txs, absolute_spec(txs)


class TestCertification:
    def test_certifies_acceptable_prefixes(self):
        fig = figure1()
        certifier = RsgCertifier(fig.spec)
        for tx in fig.transactions:
            certifier.declare(tx)
        for op in fig.schedule("Sra"):
            assert certifier.try_certify(op)
        assert len(certifier.history) == 10

    def test_rejects_cycle_closing_operation(self):
        txs, spec = _lost_update()
        certifier = RsgCertifier(spec)
        for tx in txs:
            certifier.declare(tx)
        for op in (txs[0][0], txs[1][0], txs[0][1]):
            assert certifier.try_certify(op)
        assert not certifier.try_certify(txs[1][1])
        # Rejection leaves the graph and history untouched.
        assert len(certifier.history) == 3

    def test_rejection_is_final_monotone(self):
        txs, spec = _lost_update()
        certifier = RsgCertifier(spec)
        for tx in txs:
            certifier.declare(tx)
        for op in (txs[0][0], txs[1][0], txs[0][1]):
            certifier.try_certify(op)
        assert not certifier.try_certify(txs[1][1])
        assert not certifier.try_certify(txs[1][1])

    def test_incremental_graph_matches_offline_rsg(self):
        fig = figure1()
        certifier = RsgCertifier(fig.spec)
        for tx in fig.transactions:
            certifier.declare(tx)
        for op in fig.schedule("Srs"):
            assert certifier.try_certify(op)
        offline = RelativeSerializationGraph(fig.schedule("Srs"), fig.spec)
        online_edges = {
            (a, b, labels)
            for a, b, labels in certifier.graph.labelled_edges()
        }
        offline_edges = {
            (a, b, labels)
            for a, b, labels in offline.graph.labelled_edges()
        }
        assert online_edges == offline_edges


class TestForgetAndRebuild:
    def test_forget_drops_only_victim_history(self):
        txs, spec = _lost_update()
        certifier = RsgCertifier(spec)
        for tx in txs:
            certifier.declare(tx)
        certifier.try_certify(txs[0][0])
        certifier.try_certify(txs[1][0])
        certifier.forget(2)
        assert certifier.history == (txs[0][0],)

    def test_restart_after_forget_certifies_clean(self):
        txs, spec = _lost_update()
        certifier = RsgCertifier(spec)
        for tx in txs:
            certifier.declare(tx)
        for op in (txs[0][0], txs[1][0], txs[0][1]):
            certifier.try_certify(op)
        assert not certifier.try_certify(txs[1][1])
        certifier.forget(2)
        assert certifier.try_certify(txs[1][0])
        assert certifier.try_certify(txs[1][1])
        schedule = Schedule(txs, certifier.history)
        offline = RelativeSerializationGraph(schedule, spec)
        assert offline.is_acyclic

    def test_rebuild_reproduces_state(self):
        fig = figure1()
        certifier = RsgCertifier(fig.spec)
        for tx in fig.transactions:
            certifier.declare(tx)
        ops = list(fig.schedule("Sra"))
        for op in ops[:6]:
            certifier.try_certify(op)
        snapshot_edges = set(certifier.graph.edges())
        certifier.rebuild(fig.transactions, ops[:6])
        assert set(certifier.graph.edges()) == snapshot_edges
        assert certifier.history == tuple(ops[:6])
