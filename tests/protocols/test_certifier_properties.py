"""Hypothesis equivalence: incremental certifier vs from-scratch RSG.

Drives :class:`~repro.protocols.certifier.RsgCertifier` through random
admit/grant/restart sequences (including the abort-and-retry path that
exercises ``forget``'s suffix replay) and checks, after every event,
that the certifier's state is exactly what rebuilding the relative
serialization graph from scratch over the granted prefix would give:

* same labelled arc set,
* grant/reject decisions match offline RSG acyclicity (Theorem 1),
* ``forget`` drops exactly the victim's operations, preserving order.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.atomicity import RelativeAtomicitySpec
from repro.core.operations import read, write
from repro.core.rsg import RelativeSerializationGraph
from repro.core.schedules import Schedule
from repro.core.transactions import Transaction
from repro.protocols.certifier import RsgCertifier

OBJECTS = ("x", "y")

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scenarios(draw):
    """A workload plus a random schedule-and-restart driver script."""
    n = draw(st.integers(2, 3))
    transactions = []
    for tx_id in range(1, n + 1):
        length = draw(st.integers(1, 3))
        ops = []
        for _ in range(length):
            obj = draw(st.sampled_from(OBJECTS))
            ops.append(write(obj) if draw(st.booleans()) else read(obj))
        transactions.append(Transaction(tx_id, ops))
    views = {}
    for tx in transactions:
        for other in transactions:
            if tx.tx_id == other.tx_id:
                continue
            cuts = [
                position
                for position in range(1, len(tx))
                if draw(st.booleans())
            ]
            views[(tx.tx_id, other.tx_id)] = cuts
    spec = RelativeAtomicitySpec(transactions, views)
    actions = draw(st.lists(st.integers(0, 20), min_size=5, max_size=40))
    return transactions, spec, actions


def _edge_set(graph):
    return {
        (source, target, labels)
        for source, target, labels in graph.labelled_edges()
    }


def _assert_matches_oracle(certifier, transactions, spec):
    """The certifier state must equal the from-scratch RSG."""
    schedule = Schedule.prefix(transactions, certifier.history)
    oracle = RelativeSerializationGraph(schedule, spec)
    assert oracle.is_acyclic
    assert _edge_set(certifier.graph) == _edge_set(oracle.graph)


@given(scenarios())
@_SETTINGS
def test_certifier_agrees_with_offline_rsg(scenario):
    transactions, spec, actions = scenario
    certifier = RsgCertifier(spec)
    for transaction in transactions:
        certifier.declare(transaction)
    cursor = {tx.tx_id: 0 for tx in transactions}
    programs = {tx.tx_id: tx.operations for tx in transactions}
    tx_ids = sorted(programs)

    for action in actions:
        tx_id = tx_ids[action % len(tx_ids)]
        if action % 7 == 0 and cursor[tx_id] > 0:
            # Voluntary restart: exercises forget's suffix replay on a
            # victim with granted operations anywhere in the history.
            history_before = certifier.history
            victim_ops = set(programs[tx_id])
            certifier.forget(tx_id)
            expected = tuple(
                op for op in history_before if op not in victim_ops
            )
            assert certifier.history == expected
            cursor[tx_id] = 0
            _assert_matches_oracle(certifier, transactions, spec)
            continue
        if cursor[tx_id] >= len(programs[tx_id]):
            continue
        op = programs[tx_id][cursor[tx_id]]
        tentative = Schedule.prefix(
            transactions, list(certifier.history) + [op]
        )
        should_grant = RelativeSerializationGraph(tentative, spec).is_acyclic
        granted = certifier.try_certify(op)
        assert granted == should_grant
        if granted:
            cursor[tx_id] += 1
        else:
            # Protocol behaviour: rejection is final, the requester
            # aborts and restarts from its first operation.
            assert certifier.last_rejected_cycle is not None
            certifier.forget(tx_id)
            cursor[tx_id] = 0
        _assert_matches_oracle(certifier, transactions, spec)

    # The defensive rebuild path must never have fired: forget-replay
    # is provably infallible.
    assert certifier.stats.fallback_rebuilds == 0


@given(scenarios())
@_SETTINGS
def test_forget_equals_fresh_certifier(scenario):
    """After any forget, state equals a fresh certifier fed the survivors."""
    transactions, spec, actions = scenario
    certifier = RsgCertifier(spec)
    for transaction in transactions:
        certifier.declare(transaction)
    cursor = {tx.tx_id: 0 for tx in transactions}
    programs = {tx.tx_id: tx.operations for tx in transactions}
    tx_ids = sorted(programs)
    for action in actions:
        tx_id = tx_ids[action % len(tx_ids)]
        if cursor[tx_id] >= len(programs[tx_id]):
            continue
        if not certifier.try_certify(programs[tx_id][cursor[tx_id]]):
            break
        cursor[tx_id] += 1
    victim = tx_ids[actions[0] % len(tx_ids)]
    certifier.forget(victim)
    fresh = RsgCertifier(spec)
    for transaction in transactions:
        fresh.declare(transaction)
    for op in certifier.history:
        assert fresh.try_certify(op)
    assert _edge_set(certifier.graph) == _edge_set(fresh.graph)


@given(scenarios())
@_SETTINGS
def test_churn_reuses_node_ids_and_matches_oracle(scenario):
    """Forget/undeclare/redeclare churn reuses freelisted node ids.

    The flat engine's boundedness claim: ``node_capacity`` is pinned by
    the peak live declaration set, not the cumulative number of
    declarations — and a certifier whose victim cycled through released
    and re-acquired ids still agrees with the from-scratch RSG.
    """
    transactions, spec, actions = scenario
    certifier = RsgCertifier(spec)
    for transaction in transactions:
        certifier.declare(transaction)
    peak_capacity = certifier.node_capacity
    assert peak_capacity == sum(len(tx) for tx in transactions)

    by_id = {tx.tx_id: tx for tx in transactions}
    cursor = {tx.tx_id: 0 for tx in transactions}
    tx_ids = sorted(by_id)
    for action in actions:
        tx_id = tx_ids[action % len(tx_ids)]
        if action % 5 == 0:
            # Full retirement round-trip: the victim's node ids go to
            # the freelist and the redeclare must get them back.
            certifier.forget(tx_id)
            certifier.undeclare(tx_id)
            cursor[tx_id] = 0
            assert all(op.tx != tx_id for op in certifier.history)
            certifier.declare(by_id[tx_id])
            assert certifier.node_capacity == peak_capacity
            _assert_matches_oracle(certifier, transactions, spec)
            continue
        if cursor[tx_id] >= len(by_id[tx_id]):
            continue
        op = by_id[tx_id].operations[cursor[tx_id]]
        tentative = Schedule.prefix(
            transactions, list(certifier.history) + [op]
        )
        should_grant = RelativeSerializationGraph(
            tentative, spec
        ).is_acyclic
        granted = certifier.try_certify(op)
        assert granted == should_grant
        if granted:
            cursor[tx_id] += 1
        else:
            certifier.forget(tx_id)
            cursor[tx_id] = 0
        _assert_matches_oracle(certifier, transactions, spec)

    # Churn never grew the id arrays past the initial declaration set.
    assert certifier.node_capacity == peak_capacity
