"""Unit tests for the lock table."""

import pytest

from repro.errors import ProtocolError
from repro.protocols.locks import LockMode, LockTable


class TestCompatibility:
    def test_shared_locks_coexist(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.SHARED)
        assert table.blockers("x", 2, LockMode.SHARED) == set()

    def test_exclusive_blocks_shared(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.EXCLUSIVE)
        assert table.blockers("x", 2, LockMode.SHARED) == {1}

    def test_shared_blocks_exclusive(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.SHARED)
        assert table.blockers("x", 2, LockMode.EXCLUSIVE) == {1}

    def test_own_lock_never_blocks(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.EXCLUSIVE)
        assert table.blockers("x", 1, LockMode.EXCLUSIVE) == set()

    def test_multiple_blockers_reported(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.SHARED)
        table.acquire("x", 2, LockMode.SHARED)
        assert table.blockers("x", 3, LockMode.EXCLUSIVE) == {1, 2}


class TestUpgrade:
    def test_shared_then_exclusive_upgrades(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.SHARED)
        table.acquire("x", 1, LockMode.EXCLUSIVE)
        assert table.mode_of("x", 1) is LockMode.EXCLUSIVE

    def test_exclusive_not_downgraded_by_shared(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.EXCLUSIVE)
        table.acquire("x", 1, LockMode.SHARED)
        assert table.mode_of("x", 1) is LockMode.EXCLUSIVE


class TestDonation:
    def test_donated_lock_ignored_for_listed_donors(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.EXCLUSIVE)
        table.donate("x", 1)
        assert table.blockers("x", 2, LockMode.EXCLUSIVE) == {1}
        assert (
            table.blockers(
                "x", 2, LockMode.EXCLUSIVE, ignore_donated_of=frozenset({1})
            )
            == set()
        )

    def test_donate_requires_held_lock(self):
        with pytest.raises(ProtocolError):
            LockTable().donate("x", 1)

    def test_has_donated(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.SHARED)
        assert not table.has_donated("x", 1)
        table.donate("x", 1)
        assert table.has_donated("x", 1)


class TestRelease:
    def test_release_all_drops_locks_and_donations(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.EXCLUSIVE)
        table.acquire("y", 1, LockMode.SHARED)
        table.donate("x", 1)
        table.release_all(1)
        assert table.mode_of("x", 1) is None
        assert table.mode_of("y", 1) is None
        assert not table.has_donated("x", 1)
        assert table.blockers("x", 2, LockMode.EXCLUSIVE) == set()

    def test_release_leaves_other_holders(self):
        table = LockTable()
        table.acquire("x", 1, LockMode.SHARED)
        table.acquire("x", 2, LockMode.SHARED)
        table.release_all(1)
        assert table.mode_of("x", 2) is LockMode.SHARED
