"""Randomized end-to-end correctness of every protocol.

Each protocol is driven by the simulator over many random workloads and
its final committed history re-verified with the offline theory: locking
and SGT protocols must emit conflict-serializable histories, RSGT must
emit relatively serializable ones (Theorem 1 applied online).
"""

import pytest

from repro.core.rsg import is_relatively_serializable
from repro.core.serializability import is_conflict_serializable
from repro.protocols import (
    AltruisticLockingScheduler,
    RSGTScheduler,
    SGTScheduler,
    TwoPhaseLockingScheduler,
)
from repro.sim.runner import simulate
from repro.specs.builders import random_spec, uniform_spec
from repro.workloads.random_schedules import random_transactions

SEEDS = list(range(12))


def _workload(seed):
    return random_transactions(
        n_transactions=4,
        ops_per_transaction=(2, 5),
        n_objects=3,
        write_probability=0.6,
        seed=seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_2pl_histories_are_conflict_serializable(seed):
    transactions = _workload(seed)
    result = simulate(transactions, TwoPhaseLockingScheduler())
    assert is_conflict_serializable(result.schedule)


@pytest.mark.parametrize("seed", SEEDS)
def test_sgt_histories_are_conflict_serializable(seed):
    transactions = _workload(seed)
    result = simulate(transactions, SGTScheduler())
    assert is_conflict_serializable(result.schedule)


@pytest.mark.parametrize("seed", SEEDS)
def test_altruistic_histories_are_conflict_serializable(seed):
    transactions = _workload(seed)
    result = simulate(transactions, AltruisticLockingScheduler())
    assert is_conflict_serializable(result.schedule)


@pytest.mark.parametrize("seed", SEEDS)
def test_rsgt_histories_are_relatively_serializable(seed):
    transactions = _workload(seed)
    spec = random_spec(transactions, cut_probability=0.5, seed=seed)
    result = simulate(transactions, RSGTScheduler(spec))
    assert is_relatively_serializable(result.schedule, spec)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_rsgt_under_absolute_spec_matches_csr(seed):
    # Lemma 1 applied online: with absolute specs RSGT enforces exactly
    # conflict serializability.
    transactions = _workload(seed)
    spec = uniform_spec(transactions, unit_size=10_000)
    result = simulate(transactions, RSGTScheduler(spec))
    assert is_conflict_serializable(result.schedule)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_all_transactions_commit_exactly_once(seed):
    transactions = _workload(seed)
    result = simulate(transactions, TwoPhaseLockingScheduler())
    assert set(result.outcomes) == {tx.tx_id for tx in transactions}
    assert len(result.schedule) == sum(len(tx) for tx in transactions)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_rsgt_with_finer_spec_never_restarts_more(seed):
    # Looser atomicity admits more prefixes, so restarts cannot increase
    # when the spec gets strictly finer on the same workload and policy.
    transactions = _workload(seed)
    absolute = uniform_spec(transactions, unit_size=10_000)
    finest = uniform_spec(transactions, unit_size=1)
    restarts_absolute = simulate(
        transactions, RSGTScheduler(absolute)
    ).total_restarts
    restarts_finest = simulate(
        transactions, RSGTScheduler(finest)
    ).total_restarts
    assert restarts_finest <= restarts_absolute
