"""Unit tests for the RSGT protocol (the paper's Section 3 sketch)."""

import pytest

from repro.core.schedules import Schedule
from repro.core.rsg import is_relatively_serializable
from repro.core.transactions import Transaction
from repro.errors import ProtocolError
from repro.protocols.base import Decision
from repro.protocols.rsgt import RSGTScheduler
from repro.specs.builders import absolute_spec, finest_spec
from repro.paper import figure1


def _drive(scheduler, ops):
    """Request each op in order; return the list of decisions."""
    return [scheduler.request(op).decision for op in ops]


class TestAdmission:
    def test_rejects_transaction_missing_from_spec(self):
        t1 = Transaction.from_notation(1, "r[x]")
        t2 = Transaction.from_notation(2, "w[x]")
        scheduler = RSGTScheduler(absolute_spec([t1]))
        with pytest.raises(ProtocolError):
            scheduler.admit(t2)

    def test_rejects_program_mismatch_with_spec(self):
        t1 = Transaction.from_notation(1, "r[x]")
        other_t1 = Transaction.from_notation(1, "w[x]")
        scheduler = RSGTScheduler(absolute_spec([t1]))
        with pytest.raises(ProtocolError):
            scheduler.admit(other_t1)


class TestAbsoluteSpecBehavesLikeSGT:
    def test_lost_update_rejected(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = RSGTScheduler(absolute_spec([t1, t2]))
        scheduler.admit(t1)
        scheduler.admit(t2)
        decisions = _drive(scheduler, [t1[0], t2[0], t1[1]])
        assert decisions == [Decision.GRANT] * 3
        assert scheduler.request(t2[1]).decision is Decision.ABORT

    def test_clean_order_accepted(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = RSGTScheduler(absolute_spec([t1, t2]))
        scheduler.admit(t1)
        scheduler.admit(t2)
        decisions = _drive(scheduler, [t1[0], t1[1], t2[0], t2[1]])
        assert decisions == [Decision.GRANT] * 4


class TestRelativeSpecAdmitsMore:
    def test_paper_sra_accepted_online(self):
        # The paper's flagship interleaving Sra is granted operation by
        # operation under the Figure 1 spec, even though SGT/2PL would
        # reject it (it is not conflict serializable).
        fig = figure1()
        scheduler = RSGTScheduler(fig.spec)
        for tx in fig.transactions:
            scheduler.admit(tx)
        decisions = _drive(scheduler, list(fig.schedule("Sra")))
        assert decisions == [Decision.GRANT] * 10

    def test_spec_violating_interleaving_rejected(self):
        # Under the same spec, an interleaving that breaks an atomic
        # unit with a dependency is aborted at the closing operation.
        fig = figure1()
        scheduler = RSGTScheduler(fig.spec)
        for tx in fig.transactions:
            scheduler.admit(tx)
        s2 = list(fig.schedule("S2"))
        decisions = _drive(scheduler, s2[:-1])
        last = scheduler.request(s2[-1])
        # The whole prefix is fine (S2 is relatively serializable!), so
        # everything including the last op is granted.
        assert decisions == [Decision.GRANT] * 9
        assert last.decision is Decision.GRANT

    def test_finest_spec_accepts_arbitrary_interleavings(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = RSGTScheduler(finest_spec([t1, t2]))
        scheduler.admit(t1)
        scheduler.admit(t2)
        decisions = _drive(scheduler, [t1[0], t2[0], t1[1], t2[1]])
        assert decisions == [Decision.GRANT] * 4


class TestOnlineMatchesOfflineTheorem:
    def test_granted_prefixes_always_relatively_serializable(self):
        fig = figure1()
        scheduler = RSGTScheduler(fig.spec)
        for tx in fig.transactions:
            scheduler.admit(tx)
        for op in fig.schedule("Srs"):
            assert scheduler.request(op).decision is Decision.GRANT
        schedule = Schedule(list(fig.transactions), scheduler.history)
        assert is_relatively_serializable(schedule, fig.spec)

    def test_restart_after_abort_clears_graph(self):
        t1 = Transaction.from_notation(1, "r[x] w[x]")
        t2 = Transaction.from_notation(2, "r[x] w[x]")
        scheduler = RSGTScheduler(absolute_spec([t1, t2]))
        scheduler.admit(t1)
        scheduler.admit(t2)
        _drive(scheduler, [t1[0], t2[0], t1[1]])
        assert scheduler.request(t2[1]).decision is Decision.ABORT
        scheduler.remove(2)
        scheduler.finish(1)
        decisions = _drive(scheduler, [t2[0], t2[1]])
        assert decisions == [Decision.GRANT] * 2
        schedule = Schedule([t1, t2], scheduler.history)
        assert is_relatively_serializable(schedule, absolute_spec([t1, t2]))
